"""Extending the platform: custom engine queries and plug-ins.

The paper's headline contribution is an *extensible* exploratory
platform — Spark queries over crawled HDFS data plus external plug-ins.
This example shows both extension points:

1. an ad-hoc engine query (which markets raise most successfully?)
   written directly against the crawled DFS datasets;
2. a custom analytics plug-in registered next to the built-ins, using
   the DataFrame layer.

    python examples/custom_pipeline.py
"""

from repro import DataFrame, ExploratoryPlatform, WorldConfig


def market_success(platform) -> list:
    """Plug-in: fundraising success rate per market, via DataFrames."""
    startups = DataFrame(platform.sc.json_dataset(
        platform.dfs, "/crawl/angellist/startups"))
    raised_ids = set(
        platform.sc.json_dataset(platform.dfs,
                                 "/crawl/crunchbase/organizations")
        .filter(lambda org: org.get("num_funding_rounds", 0) > 0)
        .map(lambda org: int(org["angellist_id"]))
        .collect())
    return (startups
            .with_column("raised", lambda r: int(r["id"]) in raised_ids)
            .group_by("market")
            .agg(companies=("id", "count"),
                 raised=("raised", "sum"))
            .with_column("success_pct",
                         lambda r: 100.0 * r["raised"] / r["companies"])
            .order_by("success_pct", ascending=False)
            .collect())


def main() -> None:
    with ExploratoryPlatform.over_new_world(
            WorldConfig.tiny(seed=3)) as platform:
        platform.run_full_crawl()

        # Extension point 1: raw engine query over crawled datasets.
        follower_p90 = (platform.sc
                        .json_dataset(platform.dfs,
                                      "/crawl/angellist/startups")
                        .map(lambda s: s["follower_count"])
                        .sort_by(lambda x: x)
                        .collect())
        p90 = follower_p90[int(0.9 * len(follower_p90))]
        print(f"90th-percentile AngelList follower count: {p90}")

        # Extension point 2: register and run a custom plug-in.
        platform.plugins.register(
            "market_success", lambda p: market_success(p),
            "success rate per market")
        rows = platform.run_plugin("market_success")
        print("\nfundraising success by market:")
        for row in rows:
            print(f"  {row['market']:<12} {row['companies']:>6,} companies  "
                  f"{row['success_pct']:5.2f}% raised")

        print(f"\nregistered plug-ins: "
              f"{', '.join(platform.plugins.names())}")


if __name__ == "__main__":
    main()
