"""The §5 herd-mentality study: communities, metrics, Figure 7 SVGs.

Builds the bipartite investor graph, runs CoDA, evaluates both §5.3
strength metrics, prints Figure 4/5-shaped terminal charts, and writes
the strong/weak community visualizations as SVG files.

    python examples/herd_mentality.py          # writes examples/out/*.svg
"""

import os

from repro import ExploratoryPlatform, WorldConfig
from repro.analysis.strength import community_figure_svg
from repro.viz.ascii import ascii_cdf, ascii_histogram

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def main() -> None:
    scale = float(os.environ.get("REPRO_SCALE", "0.0125"))
    with ExploratoryPlatform.over_new_world(
            WorldConfig(scale=scale, seed=42)) as platform:
        platform.run_full_crawl()
        graph = platform.investor_graph()
        print(f"bipartite graph: {graph.num_investors:,} investors, "
              f"{graph.num_companies:,} companies, "
              f"{graph.num_edges:,} edges")

        study = platform.run_plugin("community_study",
                                    global_pairs=50_000, seed=42)
        coda = study.coda
        print(f"CoDA: {coda.num_communities} communities, "
              f"average size {coda.average_community_size:.1f} "
              "(paper: 96 communities, avg 190.2 at full scale)")

        ranked = sorted(study.strengths, key=lambda s: -s.avg_shared_size)
        print("\nstrongest communities (avg shared size | ≥2-investor %):")
        for strength in ranked[:5]:
            print(f"  community {strength.community_id:>3}  "
                  f"size={strength.size:<4} "
                  f"shared={strength.avg_shared_size:>5.2f}  "
                  f"pct={strength.shared_investor_pct:>5.1f}%")

        strong_cdf = next(iter(study.strong_cdfs.values()))
        print("\nFigure 4 — strongest community's shared-size CDF:")
        print(ascii_cdf(list(strong_cdf._sorted),
                        label="shared investment size"))
        print(f"global i.i.d.-pair baseline mean: "
              f"{study.global_cdf.mean:.4f} over "
              f"{study.global_pairs_sampled:,} pairs "
              f"(sup-norm ≤ {study.dkw_bound:.4f} w.p. 99%)")

        print("\nFigure 5 — per-community ≥2-shared-investor percentage:")
        print(ascii_histogram(study.shared_pcts, bins=10,
                              label="% companies"))
        print(f"community average: {study.mean_shared_pct:.1f}% "
              f"vs randomized control {study.randomized_mean_shared_pct:.1f}% "
              "(paper: 23.1% vs 5.8%)")

        os.makedirs(OUT_DIR, exist_ok=True)
        for cid, name in ((study.strong_community_id, "strong"),
                          (study.weak_community_id, "weak")):
            svg = community_figure_svg(study, graph, cid,
                                       title=f"{name} community")
            path = os.path.join(OUT_DIR, f"fig7_{name}.svg")
            with open(path, "w") as handle:
                handle.write(svg)
            print(f"wrote {path}")


if __name__ == "__main__":
    main()
