"""The social-scientist workflow: declarative theories + exports.

§3 of the paper promises "familiar interfaces to social scientists, so
that they can directly validate theories" with "a translation layer
[that] will map the theories to Spark queries". This example is that
workflow end to end:

1. crawl the world;
2. state theories in the ``outcome ~ predictor`` mini-language and get
   effect sizes with significance;
3. export the underlying fact table, the Figure 6 table (with CIs),
   and the investment graph for R / pandas / Gephi.

    python examples/social_science_workbench.py   # writes examples/out/
"""

import os

from repro import ExploratoryPlatform, TheoryEngine, WorldConfig
from repro.export import (dataframe_to_csv, edges_to_csv,
                          engagement_table_to_csv, graph_to_graphml)
from repro.analysis.facts import build_company_facts

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

THEORIES = [
    "raised ~ has_facebook",
    "raised ~ has_twitter",
    "raised ~ has_video",
    "raised ~ fb_likes > median",
    "raised ~ follower_count > median",
    "total_funding_usd ~ has_video",
    "tw_followers ~ raised",            # the reverse direction!
]


def main() -> None:
    scale = float(os.environ.get("REPRO_SCALE", "0.0125"))
    with ExploratoryPlatform.over_new_world(
            WorldConfig(scale=scale, seed=99)) as platform:
        platform.run_full_crawl()

        print("=== theory validation ===")
        engine = TheoryEngine.over_platform(platform)
        for result in engine.test_all(THEORIES):
            print(result.render())
            print()

        print("=== exports ===")
        os.makedirs(OUT_DIR, exist_ok=True)
        facts = build_company_facts(platform.sc, platform.dfs)
        n = dataframe_to_csv(facts, os.path.join(OUT_DIR, "companies.csv"))
        print(f"companies.csv       — {n:,} rows (one per company)")

        table = platform.run_plugin("engagement_table")
        engagement_table_to_csv(table, os.path.join(OUT_DIR, "fig6.csv"))
        print("fig6.csv            — the engagement table with Wilson CIs")

        graph = platform.investor_graph()
        edges = edges_to_csv(graph, os.path.join(OUT_DIR, "edges.csv"))
        graph_to_graphml(graph, os.path.join(OUT_DIR, "investments.graphml"))
        print(f"edges.csv           — {edges:,} investment edges")
        print("investments.graphml — bipartite graph for Gephi/igraph")


if __name__ == "__main__":
    main()
