"""§7 future work: daily snapshots and a causality panel.

The paper warns its Figure 6 correlations could run either direction —
maybe funded companies simply have the staff to tweet. This example
runs the proposed fix: track fundraising startups daily, then ask
whether engagement bursts *precede* closed rounds (they do, by
construction of the world's dynamics) and whether funding also *causes*
followers (it does — the confound is planted too).

    python examples/longitudinal_study.py
"""

from repro import MiniDfs, WorldConfig, analyze_snapshots, generate_world
from repro.crawl.snapshots import SnapshotScheduler
from repro.sources.hub import SourceHub
from repro.world.dynamics import WorldDynamics

DAYS = 40


def main() -> None:
    world = generate_world(WorldConfig.tiny(seed=13))
    hub = SourceHub.from_world(world)
    dynamics = WorldDynamics(world, seed=13, base_close_hazard=0.02,
                             engagement_to_funding_lift=4.0)
    dfs = MiniDfs()
    scheduler = SnapshotScheduler(hub, dynamics, dfs)

    print(f"capturing {DAYS} daily snapshots of fundraising startups...")
    history = scheduler.run(days=DAYS)
    total_closed = sum(s.rounds_closed for s in history)
    print(f"  tracked {history[-1].tracked} startups; "
          f"{total_closed} rounds closed during the study")

    result = analyze_snapshots(dfs, window=3)
    print("\npanel analysis:")
    print(f"  close events observed in panel: {result.close_events}")
    print(f"  engagement growth in the 3 days before a close: "
          f"{result.pre_event_engagement_mean:.2f}")
    print(f"  engagement growth in control windows:           "
          f"{result.control_engagement_mean:.2f}")
    print(f"  → pre-event lift: {result.pre_event_lift:.2f}x "
          "(engagement precedes funding)")
    print(f"  follower bump on the close day: "
          f"+{result.post_event_follower_bump:.0f} "
          "(funding also attracts followers — the confound)")
    print("\nconclusion: a snapshot study would conflate the two effects; "
          "the panel separates them, as §7 of the paper proposes.")


if __name__ == "__main__":
    main()
