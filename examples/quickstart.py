"""Quickstart: crawl a synthetic crowdfunding world and analyze it.

Runs the paper's entire pipeline in under a minute at small scale:

    python examples/quickstart.py

Scale up with REPRO_SCALE (1.0 = the paper's 744k-company crawl):

    REPRO_SCALE=0.0625 python examples/quickstart.py
"""

import os

from repro import ExploratoryPlatform, WorldConfig


def main() -> None:
    scale = float(os.environ.get("REPRO_SCALE", "0.0125"))
    config = WorldConfig(scale=scale, seed=20160626)
    print(f"Generating world at scale {scale} "
          f"({config.num_companies:,} companies)...")

    with ExploratoryPlatform.over_new_world(config) as platform:
        print("Running the full §3 crawl "
              "(BFS → CrunchBase → Facebook → Twitter)...")
        summary = platform.run_full_crawl()
        print(f"  crawled {summary.angellist.startups:,} startups, "
              f"{summary.angellist.users:,} users "
              f"in {len(summary.angellist.rounds)} BFS rounds")
        print(f"  {summary.crunchbase.records:,} CrunchBase orgs, "
              f"{summary.facebook.fetched:,} Facebook pages, "
              f"{summary.twitter.fetched:,} Twitter profiles")
        print(f"  {summary.total_requests:,} API requests; AngelList BFS "
              f"took {summary.angellist.sim_duration / 3600:.1f} "
              "simulated hours under rate limits")

        print("\nFigure 6 — engagement vs fundraising success:")
        table = platform.run_plugin("engagement_table")
        print(table.render())
        print(f"\nSocial-media lift: a company with a Facebook page is "
              f"{table.success_lift('Facebook only'):.0f}x likelier to "
              "raise than one with no social presence "
              "(paper: ≈30x).")

        print("\n§5.1 — investor graph:")
        print(platform.run_plugin("concentration").render())

        activity = platform.run_plugin("investor_activity")
        print(f"\nFigure 3 — investors average "
              f"{activity.mean_investments:.1f} investments "
              f"(median {activity.median_investments:.0f}, "
              f"max {activity.max_investments}) while following "
              f"{activity.mean_follows_per_investor:.0f} companies.")


if __name__ == "__main__":
    main()
