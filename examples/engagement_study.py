"""The Figure 6 engagement study, end to end, with paper comparison.

Reproduces §4 of the paper: categorize companies by social-media
presence and engagement level, compute fundraising success per
category from CrunchBase-augmented data, and print the lifts the paper
highlights (30x social, 11.5x video, diminishing returns of multiple
platforms).

    python examples/engagement_study.py
"""

import os

from repro import ExploratoryPlatform, WorldConfig

PAPER_SUCCESS = {
    "No social media presence": 0.4,
    "Facebook only": 12.2,
    "Twitter only": 10.2,
    "Facebook and Twitter": 13.2,
    "Presence of demo video": 10.4,
    "No demo video": 0.9,
}


def main() -> None:
    scale = float(os.environ.get("REPRO_SCALE", "0.0125"))
    with ExploratoryPlatform.over_new_world(
            WorldConfig(scale=scale, seed=7)) as platform:
        platform.run_full_crawl()
        table = platform.run_plugin("engagement_table")

        print(table.render())
        print(f"\nmedians recomputed from the crawl: "
              f"{table.median_likes:.0f} likes (paper 652), "
              f"{table.median_tweets:.0f} tweets (paper 343), "
              f"{table.median_tw_followers:.0f} followers (paper 339)")

        print("\npaper vs measured success rates:")
        for label, paper_pct in PAPER_SUCCESS.items():
            measured = table.row(label).success_pct
            print(f"  {label:<28} paper={paper_pct:>5.1f}%   "
                  f"measured={measured:>5.1f}%")

        fb_lift = table.success_lift("Facebook only")
        tw_lift = table.success_lift("Twitter only")
        video = table.row("Presence of demo video").success_pct
        no_video = table.row("No demo video").success_pct
        both = table.row("Facebook and Twitter").success_pct
        fb = table.row("Facebook only").success_pct

        print("\nheadline claims:")
        print(f"  Facebook lift: {fb_lift:.0f}x (paper ≈30x)")
        print(f"  Twitter lift:  {tw_lift:.0f}x (paper ≈26x)")
        print(f"  demo video:    {video / max(1e-9, no_video):.1f}x "
              "(paper ≥11.5x)")
        print(f"  both platforms add only "
              f"{100 * (both - fb) / fb:+.0f}% over Facebook alone "
              "— the diminishing returns the paper notes")

        print("\ncaveat (paper §4): this is correlation from a snapshot, "
              "not causality — see examples/longitudinal_study.py")


if __name__ == "__main__":
    main()
