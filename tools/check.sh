#!/usr/bin/env bash
# Tier-1 gate: byte-compile everything, then run the full test suite.
# This is what CI runs; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== compileall =="
python -m compileall -q src benchmarks tools examples

echo "== pytest (tier 1) =="
python -m pytest -x -q "$@"

echo "== pytest (chaos suite) =="
# the deterministic fault-injection harness, on its default seed matrix
python -m pytest -x -q -m chaos

echo "== benchmark smoke (engine fast path) =="
# small-scale A4 run: proves the combine reduction holds and leaves the
# BENCH_engine.json perf-trajectory artifact for the PR
python benchmarks/bench_a4_shuffle_combine.py \
    --smoke --json benchmarks/out/BENCH_engine.json
