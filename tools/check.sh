#!/usr/bin/env bash
# Tier-1 gate: byte-compile everything, then run the full test suite.
# This is what CI runs; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== compileall =="
python -m compileall -q src benchmarks tools examples

echo "== pytest (tier 1) =="
python -m pytest -x -q "$@"

echo "== pytest (chaos suite) =="
# the deterministic fault-injection harness, on its default seed matrix
python -m pytest -x -q -m chaos
