#!/usr/bin/env bash
# Tier-1 gate: byte-compile everything, then run the full test suite.
# This is what CI runs; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
# dump all thread stacks if any single test exceeds this budget — a
# wedged pool/supervisor should fail loudly, not hang the gate
export REPRO_FAULTHANDLER_TIMEOUT="${REPRO_FAULTHANDLER_TIMEOUT:-300}"

# hard wall-clock ceiling on the chaos suite (it kills real worker
# processes; a supervisor bug could otherwise wedge the whole gate)
with_timeout() {
    if command -v timeout >/dev/null 2>&1; then
        timeout --kill-after=30 "${CHAOS_TIMEOUT:-1200}" "$@"
    else
        "$@"
    fi
}

echo "== compileall =="
python -m compileall -q src benchmarks tools examples

echo "== pytest (tier 1) =="
python -m pytest -x -q "$@"

echo "== pytest (chaos suite) =="
# the deterministic fault-injection harness, on its default seed matrix
with_timeout python -m pytest -x -q -m chaos

echo "== benchmark smoke (engine fast path) =="
# small-scale A4 run: proves the combine reduction holds and leaves the
# BENCH_engine.json perf-trajectory artifact for the PR
python benchmarks/bench_a4_shuffle_combine.py \
    --smoke --json benchmarks/out/BENCH_engine.json

echo "== benchmark smoke (partition recovery) =="
# small-scale A5 run: proves losing an executor recomputes strictly
# fewer partitions than a full stage rerun, on every backend
with_timeout python benchmarks/bench_a5_recovery.py \
    --smoke --json benchmarks/out/BENCH_recovery.json

echo "== benchmark smoke (serving overload) =="
# A6: 10x overload with a forced mid-run brownout and chaos faults —
# queue stays bounded, per-class p99 under deadline, >= 99% of admitted
# answered, same-seed reruns byte-identical
with_timeout python benchmarks/bench_a6_serving.py \
    --smoke --json benchmarks/out/BENCH_serving.json

echo "== benchmark smoke (columnar core) =="
# A7: row vs columnar engine on reduce/join/sort — byte-identical
# output, shm exchange accounting, zero leaked segments; the >= 2x
# process-vs-serial gate arms itself only on 4+-core hosts
with_timeout python benchmarks/bench_a7_columnar.py \
    --smoke --json benchmarks/out/BENCH_columnar.json

echo "== benchmark smoke (ingest kill-anywhere resume) =="
# A8: SIGKILL the continuous-ingest scheduler at every ledger state,
# resume from the write-ahead ledger — eventual datasets byte-identical
# to an uninterrupted run, zero duplicate lands, all leases reclaimed,
# incremental recompute bounded (each source record scanned once)
with_timeout python benchmarks/bench_a8_ingest.py \
    --smoke --json benchmarks/out/BENCH_ingest.json

echo "== benchmark smoke (adaptive planner) =="
# A9: adaptive planning vs the naive plans — the skewed join must move
# >= 2x fewer shuffled bytes on all three backends, skew split /
# coalesce / scan pushdown must fire, every arm byte-identical
with_timeout python benchmarks/bench_a9_planner.py \
    --smoke --json benchmarks/out/BENCH_planner.json

echo "== benchmark smoke (sharded serving) =="
# A10: serve_shard_chaos kills one shard of four mid-run — >= 99% of
# admitted queries still answer inside their deadline, every partial
# result's coverage accounting is exact vs the unsharded oracle, an
# abusive tenant at 10x its fair share starves nobody, and the whole
# run (autoscaler decisions included) is byte-identical on a same-seed
# rerun
with_timeout python benchmarks/bench_a10_sharding.py \
    --smoke --json benchmarks/out/BENCH_sharding.json

echo "== benchmark smoke (standing-query alerting) =="
# A11: alert-chaos (kill_subscriber / drop_ack / dup_deliver plus a
# forced mid-run ingest kill) — every matched event delivered
# at-least-once with zero observable duplicates after dedupe vs the
# offline full-rescan oracle, 100x subscriber load leaves interactive
# p99 inside its deadline with zero cross-tenant starvation, poison
# subscribers quarantine without stalling the outbox, and same-seed
# reruns (delivery log included) are byte-identical
with_timeout python benchmarks/bench_a11_alerting.py \
    --smoke --json benchmarks/out/BENCH_alerting.json

echo "== verify benchmark artifacts =="
# a bench that silently wrote nothing must fail the gate here, not
# vanish from the merged summary
expected_artifacts=(
    BENCH_engine.json BENCH_recovery.json BENCH_serving.json
    BENCH_columnar.json BENCH_ingest.json BENCH_planner.json
    BENCH_sharding.json BENCH_alerting.json
)
missing=0
for artifact in "${expected_artifacts[@]}"; do
    if [ ! -s "benchmarks/out/$artifact" ]; then
        echo "MISSING benchmark artifact: benchmarks/out/$artifact" >&2
        missing=1
    fi
done
if [ "$missing" -ne 0 ]; then
    echo "refusing to merge an incomplete artifact set" >&2
    exit 1
fi

echo "== merge benchmark artifacts =="
# fold every BENCH_*.json into the single BENCH_summary.json artifact
python tools/merge_bench.py --out benchmarks/out/BENCH_summary.json
