"""Offline tuner for the Figure 6 logistic parameters.

Replicates the company-level generative math of
``repro.world.generator._generate_companies`` / ``_generate_social_accounts``
with pure numpy at large n, scores candidate parameter vectors against the
paper's Figure 6 targets, and random-searches around the current defaults.
Run manually during development; the winning constants are baked into
``CalibrationParams``.
"""

import numpy as np

TARGETS = {
    "no_social": 0.4, "fb": 12.2, "tw": 10.2, "both": 13.2,
    "video": 10.4, "no_video": 0.9,
    "fb_hi": 18.0, "tw_tweets_hi": 14.7, "tw_fol_hi": 15.2,
    "both_hi_fol": 22.2, "both_hi_tweets": 22.1,
}


def simulate(params, n=400_000, seed=3):
    rng = np.random.default_rng(seed)
    (base, c_fb, c_tw, pen, c_video, c_eng, coupling) = params
    e = rng.standard_normal(n)
    has_fb = rng.random(n) < 0.0507
    p_tw = np.where(has_fb, 0.8620, 0.0538)
    has_tw = rng.random(n) < p_tw
    anysoc = has_fb | has_tw
    p_video = np.where(anysoc, 0.35, 0.0148)
    has_video = rng.random(n) < p_video
    logit = (base + c_fb * has_fb + c_tw * has_tw + pen * (has_fb & has_tw)
             + c_video * has_video + c_eng * e * anysoc)
    succ = rng.random(n) < 1 / (1 + np.exp(-logit))
    res = float(np.sqrt(max(0.0, 1 - coupling ** 2)))
    likes = np.exp(6.48 + 1.7 * (coupling * e + res * rng.standard_normal(n)))
    tweets = np.exp(5.84 + 1.6 * (coupling * e + res * rng.standard_normal(n)))
    tfol = np.exp(5.83 + 1.8 * (coupling * e + res * rng.standard_normal(n)))

    def rate(mask):
        return 100.0 * succ[mask].mean() if mask.any() else 0.0

    med_likes = np.median(likes[has_fb])
    med_tweets = np.median(tweets[has_tw])
    med_tfol = np.median(tfol[has_tw])
    return {
        "no_social": rate(~anysoc),
        "fb": rate(has_fb),
        "tw": rate(has_tw),
        "both": rate(has_fb & has_tw),
        "video": rate(has_video),
        "no_video": rate(~has_video),
        "fb_hi": rate(has_fb & (likes > med_likes)),
        "tw_tweets_hi": rate(has_tw & (tweets > med_tweets)),
        "tw_fol_hi": rate(has_tw & (tfol > med_tfol)),
        "both_hi_fol": rate(has_fb & has_tw & (likes > med_likes)
                            & (tfol > med_tfol)),
        "both_hi_tweets": rate(has_fb & has_tw & (likes > med_likes)
                               & (tweets > med_tweets)),
    }


def score(rates):
    return sum(((rates[k] - v) / v) ** 2 for k, v in TARGETS.items())


def main():
    rng = np.random.default_rng(0)
    best = np.array([-5.60, 2.45, 2.22, -1.95, 2.35, 0.52, 0.85])
    best_score = score(simulate(best))
    print("start", best_score)
    sigma = np.array([0.15, 0.2, 0.2, 0.25, 0.25, 0.1, 0.05])
    for it in range(120):
        cand = best + rng.standard_normal(7) * sigma
        cand[6] = np.clip(cand[6], 0.4, 0.98)
        s = score(simulate(cand, seed=3))
        if s < best_score:
            best, best_score = cand, s
            print(it, round(s, 4), np.round(best, 3))
        if it in (40, 80):
            sigma *= 0.5
    print("FINAL", np.round(best, 4), best_score)
    rates = simulate(best, n=1_500_000, seed=11)
    for k, v in rates.items():
        print(f"  {k}: {v:.2f} (target {TARGETS[k]})")


if __name__ == "__main__":
    main()
