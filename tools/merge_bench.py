"""Merge the per-benchmark ``BENCH_*.json`` artifacts into one summary.

``tools/check.sh`` (and CI) runs every A-series benchmark in smoke mode,
each writing its own ``benchmarks/out/BENCH_<name>.json``. This tool
folds them into a single ``BENCH_summary.json`` keyed by benchmark name,
so a PR carries one machine-readable perf-trajectory artifact instead of
a loose pile::

    python tools/merge_bench.py \
        --out benchmarks/out/BENCH_summary.json [benchmarks/out]

Files that fail to parse are reported and skipped (exit stays 0 unless
*nothing* merged — a missing directory or an all-corrupt set is a CI
wiring bug worth failing on). The summary itself is excluded from its
own inputs, so reruns are idempotent.
"""

import argparse
import json
import os
import sys

DEFAULT_DIR = os.path.join("benchmarks", "out")
SUMMARY_NAME = "BENCH_summary.json"


def merge_bench_dir(directory: str) -> dict:
    """Fold every ``BENCH_*.json`` under ``directory`` into one dict.

    Returns ``{"benchmarks": {<name>: payload}, "skipped": [...]}``
    where ``<name>`` is the filename between ``BENCH_`` and ``.json``.
    """
    merged = {}
    skipped = []
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        names = []
    for name in names:
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        if name == SUMMARY_NAME:
            continue
        path = os.path.join(directory, name)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            skipped.append({"file": name, "error": str(exc)})
            continue
        merged[name[len("BENCH_"):-len(".json")]] = payload
    return {"benchmarks": merged, "skipped": skipped}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Merge per-bench BENCH_*.json files into one "
                    "BENCH_summary.json artifact.")
    parser.add_argument("directory", nargs="?", default=DEFAULT_DIR,
                        help="directory holding the BENCH_*.json files")
    parser.add_argument("--out", metavar="FILE",
                        help="summary path (default: <directory>/"
                             f"{SUMMARY_NAME})")
    args = parser.parse_args(argv)
    out = args.out or os.path.join(args.directory, SUMMARY_NAME)

    summary = merge_bench_dir(args.directory)
    for skip in summary["skipped"]:
        print(f"skipping {skip['file']}: {skip['error']}",
              file=sys.stderr)
    if not summary["benchmarks"]:
        print(f"no BENCH_*.json files under {args.directory}",
              file=sys.stderr)
        return 1

    os.makedirs(os.path.dirname(out) or ".", exist_ok=True)
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
    names = ", ".join(sorted(summary["benchmarks"]))
    print(f"merged {len(summary['benchmarks'])} benchmarks ({names}) "
          f"into {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
