"""A single-process HDFS-style distributed file system simulator.

The paper lands crawled JSON in HDFS and reads it with Spark. This
package preserves the pieces of that model the rest of the system
depends on: a namenode with a path hierarchy, fixed-size blocks placed
with a replication factor across simulated datanodes, failure injection
(kill a datanode, reads fail over to surviving replicas,
re-replication restores the factor), and JSON-lines datasets partitioned
into part files that the engine maps one-to-one onto RDD partitions.
"""

from repro.dfs.filesystem import BlockInfo, DataNode, FileStatus, MiniDfs
from repro.dfs.jsonlines import (
    JsonLinesWriter,
    iter_json_dataset,
    read_json_dataset,
    list_partitions,
    write_json_dataset,
)

__all__ = [
    "BlockInfo",
    "DataNode",
    "FileStatus",
    "MiniDfs",
    "JsonLinesWriter",
    "iter_json_dataset",
    "read_json_dataset",
    "list_partitions",
    "write_json_dataset",
]
