"""JSON-lines datasets on the DFS, partitioned into part files.

Crawlers write records through :class:`JsonLinesWriter`; the engine reads
datasets partition-by-partition so each part file becomes one RDD
partition (exactly how Spark maps HDFS splits to partitions).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Iterator, List, Sequence

from repro.dfs.filesystem import MiniDfs
from repro.util.errors import StorageError


def _part_path(directory: str, index: int) -> str:
    return f"{directory.rstrip('/')}/part-{index:05d}.jsonl"


class JsonLinesWriter:
    """Buffers records and flushes them as numbered part files.

    Use as a context manager::

        with JsonLinesWriter(dfs, "/crawl/startups", records_per_part=5000) as w:
            for record in crawl():
                w.write(record)
    """

    def __init__(self, dfs: MiniDfs, directory: str,
                 records_per_part: int = 10_000,
                 start_part_index: int = 0):
        if records_per_part < 1:
            raise StorageError("records_per_part must be >= 1")
        if start_part_index < 0:
            raise StorageError("start_part_index must be >= 0")
        self._dfs = dfs
        self._directory = directory.rstrip("/")
        self._records_per_part = records_per_part
        self._buffer: List[str] = []
        self._part_index = start_part_index
        self.records_written = 0
        self._closed = False

    @property
    def next_part_index(self) -> int:
        """The index the next flushed part file will get (for resume)."""
        return self._part_index

    def write(self, record: Dict) -> None:
        if self._closed:
            raise StorageError("writer is closed")
        self._buffer.append(json.dumps(record, separators=(",", ":"),
                                       sort_keys=True))
        self.records_written += 1
        if len(self._buffer) >= self._records_per_part:
            self._flush()

    def write_all(self, records: Iterable[Dict]) -> None:
        for record in records:
            self.write(record)

    def _flush(self) -> None:
        if not self._buffer:
            return
        path = _part_path(self._directory, self._part_index)
        # temp-write + rename: a crash mid-flush never leaves a torn (or
        # half-visible) part file, and a resumed crawl that re-flushes
        # the same index atomically replaces the stale part.
        self._dfs.write_atomic_text(path, "\n".join(self._buffer) + "\n")
        self._part_index += 1
        self._buffer = []

    def flush(self) -> None:
        """Force buffered records onto the DFS (checkpoint boundary)."""
        self._flush()

    def close(self) -> None:
        if not self._closed:
            self._flush()
            self._closed = True

    def __enter__(self) -> "JsonLinesWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def write_json_dataset(dfs: MiniDfs, directory: str,
                       records: Sequence[Dict],
                       partitions: int = 4) -> int:
    """Write ``records`` split evenly into ``partitions`` part files."""
    if partitions < 1:
        raise StorageError("partitions must be >= 1")
    per_part = max(1, -(-len(records) // partitions))
    with JsonLinesWriter(dfs, directory, records_per_part=per_part) as writer:
        writer.write_all(records)
    return writer.records_written


def list_partitions(dfs: MiniDfs, directory: str) -> List[str]:
    """Part-file paths of a dataset directory (the engine's input splits)."""
    return dfs.glob_parts(directory)


def iter_json_dataset(dfs: MiniDfs, directory: str) -> Iterator[Dict]:
    """Stream every record of a dataset in partition order."""
    for path in list_partitions(dfs, directory):
        text = dfs.read_text(path)
        for line in text.splitlines():
            if line:
                yield json.loads(line)


def read_json_dataset(dfs: MiniDfs, directory: str) -> List[Dict]:
    """Materialize a dataset as a list of records."""
    return list(iter_json_dataset(dfs, directory))


# --------------------------------------------------------- pushdown scans
class ScanCounters:
    """Mutable accounting for a pushed-down scan (one part file)."""

    __slots__ = ("bytes_skipped", "fields_pruned", "rows_read", "rows_kept")

    def __init__(self):
        self.bytes_skipped = 0
        self.fields_pruned = 0
        self.rows_read = 0
        self.rows_kept = 0


def read_part_pushdown(dfs: MiniDfs, path: str,
                       ops: Sequence) -> tuple:
    """One part file with filter/map ops evaluated per decoded line.

    ``ops`` is the fused chain in lineage order: ``("filter", fn)``
    drops a record (and counts the line's on-disk bytes, newline
    included, as skipped) the moment ``fn`` rejects it — later ops never
    see it, exactly like the unfused narrow stages; ``("map", fn)``
    rewrites the record in place, counting dict fields a projection
    removed. Returns ``(records, bytes_skipped, fields_pruned)`` with
    ``records`` byte-identical to running the unfused chain over a full
    :meth:`~repro.engine.context.SparkLiteContext.json_dataset` scan.
    """
    out: List = []
    bytes_skipped = 0
    fields_pruned = 0
    for line in dfs.read_text(path).splitlines():
        if not line:
            continue
        record = json.loads(line)
        dropped = False
        for kind, fn in ops:
            if kind == "filter":
                if not fn(record):
                    dropped = True
                    bytes_skipped += len(line) + 1
                    break
            else:
                new = fn(record)
                if isinstance(record, dict) and isinstance(new, dict):
                    fields_pruned += max(0, len(record) - len(new))
                record = new
        if not dropped:
            out.append(record)
    return out, bytes_skipped, fields_pruned


# ----------------------------------------------------- batch-native scans
def read_part_batches(dfs: MiniDfs, path: str, batch_rows: int,
                      predicate=None, projection=None,
                      counters: ScanCounters = None) -> List:
    """One part file as :class:`~repro.engine.columnar.RecordBatch`es.

    Records decode straight into batches of at most ``batch_rows`` rows
    — the columnar engine's scan entry point
    (``SparkLiteContext.json_batches``). Imported lazily so the storage
    layer stays importable without the engine package.

    Explicit pushdown: ``predicate`` filters records during the read
    (dropped lines never reach a batch; their on-disk bytes count into
    ``counters.bytes_skipped``); ``projection`` is either a per-record
    callable applied pre-batch or a sequence of field names pruned
    *columnarly* — whole columns dropped from each built batch via
    :func:`~repro.engine.columnar.project_batch`, with the cut cells
    counted into ``counters.fields_pruned``.
    """
    from repro.engine.columnar import RecordBatch, project_batch
    if batch_rows < 1:
        raise StorageError("batch_rows must be >= 1")
    records = []
    for line in dfs.read_text(path).splitlines():
        if not line:
            continue
        record = json.loads(line)
        if counters is not None:
            counters.rows_read += 1
        if predicate is not None and not predicate(record):
            if counters is not None:
                counters.bytes_skipped += len(line) + 1
            continue
        if projection is not None and callable(projection):
            new = projection(record)
            if (counters is not None and isinstance(record, dict)
                    and isinstance(new, dict)):
                counters.fields_pruned += max(0, len(record) - len(new))
            record = new
        if counters is not None:
            counters.rows_kept += 1
        records.append(record)
    batches = [RecordBatch.from_records(records[start:start + batch_rows])
               for start in range(0, len(records), batch_rows)] or \
        [RecordBatch.from_records([])]
    if projection is not None and not callable(projection):
        keys = tuple(projection)
        projected = []
        for batch in batches:
            pruned_batch, cells_cut = project_batch(batch, keys)
            projected.append(pruned_batch)
            if counters is not None:
                counters.fields_pruned += cells_cut
        batches = projected
    return batches


def iter_json_batches(dfs: MiniDfs, directory: str,
                      batch_rows: int = 4096) -> Iterator:
    """Stream a dataset as record batches, partition order preserved."""
    for path in list_partitions(dfs, directory):
        for batch in read_part_batches(dfs, path, batch_rows):
            yield batch


def read_json_batches(dfs: MiniDfs, directory: str,
                      batch_rows: int = 4096) -> List:
    """Materialize a dataset as a list of record batches."""
    return list(iter_json_batches(dfs, directory, batch_rows))
