"""Keyed upsert datasets: base + delta parts, manifest-last commit.

The run-to-completion pipeline appends records and never looks back; a
continuous crawl re-delivers work after crashes and re-observes the same
entities every day, so its landing zone must absorb duplicates instead
of accumulating them. An :class:`UpsertDataset` is a keyed dataset laid
out as *base* parts plus an ordered chain of *delta* parts, tied
together by a single ``MANIFEST.json``:

* every write lands as a new immutable delta file (``delta-NNNNNN``),
  published by rewriting the manifest **last** via
  :meth:`~repro.dfs.filesystem.MiniDfs.write_atomic` — a crash before
  the manifest flip leaves an unreferenced file that :meth:`vacuum`
  reclaims, never a torn or half-visible dataset;
* each delta is tagged with the *work unit* that produced it; applying
  the same unit twice is a no-op (the manifest remembers), which is what
  makes redelivery after a crash **exactly-once in effect**;
* the merged view replays base then deltas in sequence order, newest
  record per key winning — readers see one record per key, always;
* :meth:`compact` folds base + deltas into a fresh base (manifest-last
  again) so the delta chain stays short without ever blocking writers.

Keys may be a single field name or a tuple of field names (composite
keys for edge datasets).
"""

from __future__ import annotations

import json
import posixpath
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.dfs.filesystem import MiniDfs
from repro.util.errors import StorageError

MANIFEST_NAME = "MANIFEST.json"


@dataclass
class ApplyResult:
    """Outcome of one :meth:`UpsertDataset.apply` call."""

    unit_id: str
    applied: bool          # False: this unit already landed (skipped)
    records: int = 0
    delta_seq: int = -1
    new_keys: int = 0      # keys not present in the pre-delta view


@dataclass
class CompactionStats:
    """What one :meth:`UpsertDataset.compact` pass folded together."""

    deltas_folded: int = 0
    records_before: int = 0   # raw records across base + deltas
    records_after: int = 0    # distinct keys in the new base
    files_retired: int = 0    # old files left on disk for vacuum()


def record_key(record: Dict, key_fields: Tuple[str, ...]) -> Tuple:
    """The (hashable) key of one record under the dataset's key spec."""
    try:
        return tuple(record[f] for f in key_fields)
    except KeyError as missing:
        raise StorageError(
            f"record is missing key field {missing}: {record!r}")


class UpsertDataset:
    """A keyed, idempotently-updatable dataset on the MiniDfs."""

    def __init__(self, dfs: MiniDfs, root: str,
                 key: Union[str, Sequence[str]] = "id",
                 records_per_part: int = 5000):
        self.dfs = dfs
        self.root = root.rstrip("/")
        self.key_fields: Tuple[str, ...] = (
            (key,) if isinstance(key, str) else tuple(key))
        if not self.key_fields:
            raise StorageError("upsert datasets need at least one key field")
        if records_per_part < 1:
            raise StorageError("records_per_part must be >= 1")
        self.records_per_part = records_per_part

    # ------------------------------------------------------------- manifest
    @property
    def manifest_path(self) -> str:
        return f"{self.root}/{MANIFEST_NAME}"

    def exists(self) -> bool:
        return self.dfs.exists(self.manifest_path)

    def _empty_manifest(self) -> Dict:
        return {"key": list(self.key_fields), "version": 0,
                "next_delta": 1, "base": [], "deltas": [],
                "applied_units": {}}

    def _load_manifest(self) -> Dict:
        if not self.exists():
            return self._empty_manifest()
        manifest = json.loads(self.dfs.read_text(self.manifest_path))
        if tuple(manifest["key"]) != self.key_fields:
            raise StorageError(
                f"{self.root}: manifest key {manifest['key']} does not "
                f"match dataset key {list(self.key_fields)}")
        return manifest

    def _store_manifest(self, manifest: Dict) -> None:
        manifest["version"] += 1
        self.dfs.write_atomic_text(
            self.manifest_path, json.dumps(manifest, sort_keys=True))

    # --------------------------------------------------------------- writes
    def apply(self, unit_id: str, records: Iterable[Dict],
              on_delta_written=None) -> ApplyResult:
        """Land one work unit's records; exactly-once by ``unit_id``.

        The delta file is written first, the manifest flip publishes it.
        ``on_delta_written`` is a chaos hook fired between the two steps
        (the ``mid-land`` crash point of the ingest drill). A re-applied
        unit returns ``applied=False`` without touching storage.
        """
        manifest = self._load_manifest()
        if unit_id in manifest["applied_units"]:
            return ApplyResult(unit_id=unit_id, applied=False,
                               delta_seq=manifest["applied_units"][unit_id])
        records = list(records)
        existing = set(self._merged(manifest))
        new_keys = len({record_key(r, self.key_fields)
                        for r in records} - existing)
        seq = manifest["next_delta"]
        delta_path = f"{self.root}/delta-{seq:06d}.jsonl"
        lines = [json.dumps(r, separators=(",", ":"), sort_keys=True)
                 for r in records]
        self.dfs.write_atomic_text(delta_path, "\n".join(lines) + "\n"
                                   if lines else "")
        if on_delta_written is not None:
            on_delta_written()
        manifest["deltas"].append(
            {"seq": seq, "file": delta_path, "unit": unit_id,
             "records": len(records)})
        manifest["applied_units"][unit_id] = seq
        manifest["next_delta"] = seq + 1
        self._store_manifest(manifest)
        return ApplyResult(unit_id=unit_id, applied=True,
                           records=len(records), delta_seq=seq,
                           new_keys=new_keys)

    # ---------------------------------------------------------------- reads
    def _read_lines(self, path: str) -> List[Dict]:
        return [json.loads(line)
                for line in self.dfs.read_text(path).splitlines() if line]

    def _merged(self, manifest: Optional[Dict] = None) -> Dict[Tuple, Dict]:
        manifest = manifest or self._load_manifest()
        view: Dict[Tuple, Dict] = {}
        for path in manifest["base"]:
            for record in self._read_lines(path):
                view[record_key(record, self.key_fields)] = record
        for delta in sorted(manifest["deltas"], key=lambda d: d["seq"]):
            for record in self._read_lines(delta["file"]):
                view[record_key(record, self.key_fields)] = record
        return view

    def read(self) -> List[Dict]:
        """The merged view: exactly one record per key, key-sorted."""
        view = self._merged()
        return [view[k] for k in sorted(view, key=repr)]

    def canonical_bytes(self) -> bytes:
        """A layout-independent fingerprintable encoding of the merged
        view — two datasets with identical logical content produce
        identical bytes regardless of how many deltas or compactions
        got them there."""
        return "\n".join(
            json.dumps(r, separators=(",", ":"), sort_keys=True)
            for r in self.read()).encode("utf-8")

    def key_count(self) -> int:
        return len(self._merged())

    def applied_units(self) -> Dict[str, int]:
        """unit id → delta seq for every unit ever landed (compaction
        preserves this map: exactly-once must survive a compaction that
        races a redelivery)."""
        return dict(self._load_manifest()["applied_units"])

    def max_delta_seq(self) -> int:
        """Highest delta sequence ever assigned (the recompute
        watermark); compaction does not rewind it."""
        return self._load_manifest()["next_delta"] - 1

    def delta_files_since(self, watermark: int) -> List[Tuple[int, str]]:
        """(seq, path) of live delta files with ``seq > watermark``.

        Deltas folded away by a compaction no longer appear; callers
        that might race a compaction should read before compacting.
        """
        manifest = self._load_manifest()
        return sorted((d["seq"], d["file"]) for d in manifest["deltas"]
                      if d["seq"] > watermark)

    def live_files(self) -> List[str]:
        manifest = self._load_manifest()
        return list(manifest["base"]) + [d["file"]
                                         for d in manifest["deltas"]]

    def duplicate_key_groups(self) -> int:
        """Keys appearing in more than one live file — the quantity the
        chaos drill requires to stay small (upserts are legitimate
        overrides, but a *redelivered* unit must never add one)."""
        seen: Dict[Tuple, int] = {}
        for path in self.live_files():
            for record in self._read_lines(path):
                k = record_key(record, self.key_fields)
                seen[k] = seen.get(k, 0) + 1
        return sum(1 for count in seen.values() if count > 1)

    # ----------------------------------------------------------- maintenance
    def compact(self) -> CompactionStats:
        """Fold base + deltas into a fresh base; manifest-last commit.

        The old generation's files are NOT deleted here: a reader that
        loaded the pre-compaction manifest may still be mid-scan over
        them, and snapshot isolation means its view must stay readable
        until it lets go. Retired files become unreferenced the instant
        the new manifest is live, and the next :meth:`vacuum` pass
        reclaims them (vacuum only ever touches files the *current*
        manifest doesn't own, so it can never collect the new base). A
        crash anywhere leaves either the old dataset (manifest not yet
        flipped) or the new one plus garbage vacuum sweeps — never a
        broken view.
        """
        manifest = self._load_manifest()
        stats = CompactionStats(
            deltas_folded=len(manifest["deltas"]),
            records_before=sum(len(self._read_lines(p))
                               for p in self.live_files()))
        view = self._merged(manifest)
        records = [view[k] for k in sorted(view, key=repr)]
        stats.records_after = len(records)
        old_files = self.live_files()
        generation = manifest["version"] + 1
        new_base: List[str] = []
        for i in range(0, max(1, len(records)), self.records_per_part):
            chunk = records[i:i + self.records_per_part]
            path = f"{self.root}/base-{generation:04d}-{len(new_base):05d}.jsonl"
            lines = [json.dumps(r, separators=(",", ":"), sort_keys=True)
                     for r in chunk]
            self.dfs.write_atomic_text(path, "\n".join(lines) + "\n"
                                       if lines else "")
            new_base.append(path)
        manifest["base"] = new_base
        manifest["deltas"] = []
        self._store_manifest(manifest)
        stats.files_retired = sum(1 for path in old_files
                                  if self.dfs.exists(path))
        return stats

    def vacuum(self) -> List[str]:
        """Delete data files under the root the manifest doesn't own.

        These are the leftovers of crashes between a delta/base write
        and its manifest flip. Hidden temp files are not ours to judge —
        :meth:`~repro.dfs.filesystem.MiniDfs.sweep_temps` owns those.
        Returns the reclaimed paths.
        """
        live = set(self.live_files())
        live.add(self.manifest_path)
        orphans = []
        for path in self.dfs.listdir(self.root):
            base = posixpath.basename(path)
            if base.startswith("."):
                continue
            if posixpath.dirname(path) != self.root:
                continue
            if path not in live:
                orphans.append(path)
        for path in orphans:
            self.dfs.delete(path)
        return orphans
