"""Namenode + datanode simulation with block replication.

Semantics follow HDFS where it matters to the rest of the system:

* files are write-once byte streams split into fixed-size blocks;
* each block carries a CRC32 checksum; reads verify every replica and
  transparently *read-repair* a corrupt one from a healthy sibling;
* each block is replicated onto ``replication`` distinct datanodes;
* reading prefers any live, checksum-clean replica and raises only when
  *all* replicas of some block are corrupt or on dead nodes;
* :meth:`MiniDfs.rereplicate` restores under-replicated blocks, the way
  the HDFS namenode does after it declares a datanode dead;
* :meth:`MiniDfs.write_atomic` is the commit protocol for checkpoints
  and dataset parts: the payload lands under a hidden temp name and a
  metadata-only rename publishes it, so a crash mid-write leaves the
  previous version (or nothing) — never a torn file.

Paths are POSIX-style (``/crawl/angellist/startups/part-00000.jsonl``).
"""

from __future__ import annotations

import posixpath
import zlib
from dataclasses import dataclass, field
from typing import Dict, List

from repro.util.errors import NotFoundError, StorageError
from repro.util.rng import RngStream

DEFAULT_BLOCK_SIZE = 64 * 1024
DEFAULT_REPLICATION = 3


@dataclass
class BlockInfo:
    """Namenode metadata for one block of one file."""

    block_id: int
    length: int
    locations: List[str] = field(default_factory=list)
    checksum: int = 0  # CRC32 of the block payload


@dataclass
class HedgedRead:
    """Result of :meth:`MiniDfs.read_hedged`: payload + simulated cost."""

    data: bytes
    elapsed_s: float
    hedges_launched: int
    hedges_won: int
    #: loser reads abandoned once the winner answered — work a real
    #: cluster still paid for on the losing replica
    wasted_reads: int = 0


@dataclass
class FileStatus:
    """What ``stat`` returns: path, length, block layout."""

    path: str
    length: int
    block_size: int
    replication: int
    blocks: List[BlockInfo] = field(default_factory=list)


class DataNode:
    """Stores block payloads; can be killed and restarted."""

    def __init__(self, node_id: str):
        self.node_id = node_id
        self.alive = True
        #: simulated per-read latency of this node, in seconds — the
        #: serve tier's hedged reads race replicas against it (a node
        #: can be "slow but alive", the classic tail-latency culprit)
        self.latency_s = 0.0
        self._blocks: Dict[int, bytes] = {}

    def put(self, block_id: int, data: bytes) -> None:
        if not self.alive:
            raise StorageError(f"datanode {self.node_id} is down")
        self._blocks[block_id] = data

    def get(self, block_id: int) -> bytes:
        if not self.alive:
            raise StorageError(f"datanode {self.node_id} is down")
        if block_id not in self._blocks:
            raise StorageError(
                f"datanode {self.node_id} does not hold block {block_id}")
        return self._blocks[block_id]

    def has(self, block_id: int) -> bool:
        return self.alive and block_id in self._blocks

    def drop(self, block_id: int) -> None:
        self._blocks.pop(block_id, None)

    @property
    def block_count(self) -> int:
        return len(self._blocks)

    @property
    def used_bytes(self) -> int:
        return sum(len(b) for b in self._blocks.values())


def _normalize(path: str) -> str:
    if not path.startswith("/"):
        raise StorageError(f"paths must be absolute, got {path!r}")
    norm = posixpath.normpath(path)
    return norm


class MiniDfs:
    """The facade: create/read/list/delete files over simulated datanodes."""

    def __init__(self, num_datanodes: int = 4,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 replication: int = DEFAULT_REPLICATION,
                 seed: int = 0):
        if num_datanodes < 1:
            raise StorageError("need at least one datanode")
        self.block_size = block_size
        self.replication = min(replication, num_datanodes)
        self.datanodes: Dict[str, DataNode] = {
            f"dn{i}": DataNode(f"dn{i}") for i in range(num_datanodes)}
        self._files: Dict[str, FileStatus] = {}
        self._next_block_id = 0
        self._next_tmp_id = 0
        self._rng = RngStream(seed, "dfs")
        #: lifetime integrity counters
        self.checksum_failures = 0
        self.blocks_repaired = 0
        #: lifetime hedged-read counters (serve tier tail-latency cuts)
        self.hedges_launched = 0
        self.hedges_won = 0
        #: every launched hedge leaves one abandoned loser read behind:
        #: the replica that lost the race did its disk work for nothing
        self.hedge_wasted_reads = 0

    # -- write ---------------------------------------------------------------
    def create(self, path: str, data: bytes) -> FileStatus:
        """Write a new file; fails if the path already exists."""
        path = _normalize(path)
        if path in self._files:
            raise StorageError(f"file already exists: {path}")
        status = FileStatus(path=path, length=len(data),
                            block_size=self.block_size,
                            replication=self.replication)
        for offset in range(0, max(1, len(data)), self.block_size):
            chunk = data[offset:offset + self.block_size]
            status.blocks.append(self._store_block(chunk))
        self._files[path] = status
        return status

    def create_text(self, path: str, text: str) -> FileStatus:
        return self.create(path, text.encode("utf-8"))

    def _store_block(self, chunk: bytes) -> BlockInfo:
        block_id = self._next_block_id
        self._next_block_id += 1
        live = [dn for dn in self.datanodes.values() if dn.alive]
        if len(live) < 1:
            raise StorageError("no live datanodes")
        want = min(self.replication, len(live))
        targets = self._rng.sample(live, want)
        for node in targets:
            node.put(block_id, chunk)
        return BlockInfo(block_id=block_id, length=len(chunk),
                         locations=[n.node_id for n in targets],
                         checksum=zlib.crc32(chunk))

    # -- read ----------------------------------------------------------------
    def read(self, path: str) -> bytes:
        path = _normalize(path)
        status = self._files.get(path)
        if status is None:
            raise NotFoundError(f"no such file: {path}")
        parts = []
        for block in status.blocks:
            parts.append(self._fetch_block(block))
        return b"".join(parts)

    def read_text(self, path: str) -> str:
        return self.read(path).decode("utf-8")

    def _fetch_block(self, block: BlockInfo) -> bytes:
        """Return a checksum-verified replica, repairing corrupt ones.

        Replicas are tried in location order; a replica whose CRC32 does
        not match the namenode's record is skipped (and counted). Once a
        clean replica is found, every corrupt sibling seen on the way is
        overwritten with the good bytes — HDFS-style read-repair.
        """
        corrupt_nodes: List[DataNode] = []
        for node_id in block.locations:
            node = self.datanodes[node_id]
            if not node.has(block.block_id):
                continue
            try:
                data = node.get(block.block_id)
            except StorageError:
                continue  # node died between has() and get()
            if zlib.crc32(data) != block.checksum:
                self.checksum_failures += 1
                corrupt_nodes.append(node)
                continue
            for bad in corrupt_nodes:
                bad.put(block.block_id, data)
                self.blocks_repaired += 1
            return data
        if corrupt_nodes:
            raise StorageError(
                f"block {block.block_id} unreadable: every live replica "
                f"failed its checksum")
        raise StorageError(
            f"block {block.block_id} unavailable: all replicas down")

    # -- hedged read -----------------------------------------------------------
    def set_datanode_latency(self, node_id: str, seconds: float) -> None:
        """Make one datanode slow (chaos injection for hedged reads)."""
        if seconds < 0:
            raise StorageError(f"latency must be >= 0, got {seconds}")
        node = self.datanodes.get(node_id)
        if node is None:
            raise NotFoundError(f"no such datanode: {node_id}")
        node.latency_s = seconds

    def read_hedged(self, path: str, hedge_after_s: float = 0.03,
                    ) -> HedgedRead:
        """Read with hedged requests against slow replicas.

        For each block the primary replica (first live holder, as in
        :meth:`read`) is tried first; when it has not answered within
        ``hedge_after_s`` a hedge is launched at the next replica and
        whichever answers first wins — the standard tail-at-scale trick.
        Timing is simulated from each datanode's ``latency_s``, so the
        returned ``elapsed_s`` is deterministic and the caller (the
        serve tier) charges it to its own clock. Checksums still apply:
        a corrupt winner pays its latency, then falls back to the strict
        failover/read-repair path of :meth:`read`.
        """
        path = _normalize(path)
        status = self._files.get(path)
        if status is None:
            raise NotFoundError(f"no such file: {path}")
        parts: List[bytes] = []
        elapsed = 0.0
        launched = 0
        won = 0
        for block in status.blocks:
            holders = [self.datanodes[nid] for nid in block.locations
                       if self.datanodes[nid].has(block.block_id)]
            if not holders:
                parts.append(self._fetch_block(block))  # raises clearly
                continue
            choice = holders[0]
            cost = choice.latency_s
            if len(holders) > 1 and choice.latency_s > hedge_after_s:
                launched += 1
                hedged_cost = hedge_after_s + holders[1].latency_s
                if hedged_cost < cost:
                    choice, cost, won = holders[1], hedged_cost, won + 1
            data = choice.get(block.block_id)
            elapsed += cost
            if zlib.crc32(data) != block.checksum:
                # pay for the other replicas too, then let the strict
                # path count the failure and read-repair the damage
                elapsed += sum(h.latency_s for h in holders
                               if h is not choice)
                data = self._fetch_block(block)
            parts.append(data)
        self.hedges_launched += launched
        self.hedges_won += won
        self.hedge_wasted_reads += launched
        return HedgedRead(data=b"".join(parts), elapsed_s=elapsed,
                          hedges_launched=launched, hedges_won=won,
                          wasted_reads=launched)

    # -- namespace -------------------------------------------------------------
    def exists(self, path: str) -> bool:
        return _normalize(path) in self._files

    def stat(self, path: str) -> FileStatus:
        path = _normalize(path)
        status = self._files.get(path)
        if status is None:
            raise NotFoundError(f"no such file: {path}")
        return status

    def delete(self, path: str) -> None:
        path = _normalize(path)
        status = self._files.pop(path, None)
        if status is None:
            raise NotFoundError(f"no such file: {path}")
        for block in status.blocks:
            for node_id in block.locations:
                self.datanodes[node_id].drop(block.block_id)

    def listdir(self, prefix: str) -> List[str]:
        """All file paths under ``prefix`` (a pseudo-directory), sorted."""
        prefix = _normalize(prefix).rstrip("/") + "/"
        return sorted(p for p in self._files if p.startswith(prefix))

    def glob_parts(self, directory: str) -> List[str]:
        """The ``part-*`` files of a dataset directory, in order."""
        return [p for p in self.listdir(directory)
                if posixpath.basename(p).startswith("part-")]

    def rename(self, src: str, dst: str, overwrite: bool = False) -> None:
        """Move a file to a new path (metadata-only, like HDFS mv).

        With ``overwrite`` the destination is replaced in one namespace
        step — the commit half of the temp-write+rename protocol.
        """
        src, dst = _normalize(src), _normalize(dst)
        if src not in self._files:
            raise NotFoundError(f"no such file: {src}")
        if dst in self._files:
            if not overwrite:
                raise StorageError(f"destination exists: {dst}")
            self.delete(dst)
        status = self._files.pop(src)
        status.path = dst
        self._files[dst] = status

    def write_atomic(self, path: str, data: bytes) -> FileStatus:
        """Commit ``data`` to ``path`` via hidden temp file + rename.

        The temp name starts with a dot so partially written files are
        invisible to :meth:`glob_parts`; a crash between the two steps
        leaves the previous version of ``path`` intact.
        """
        path = _normalize(path)
        parent, base = posixpath.split(path)
        tmp = posixpath.join(parent, f".{base}.tmp-{self._next_tmp_id}")
        self._next_tmp_id += 1
        self.create(tmp, data)
        self.rename(tmp, path, overwrite=True)
        return self._files[path]

    def write_atomic_text(self, path: str, text: str) -> FileStatus:
        return self.write_atomic(path, text.encode("utf-8"))

    def sweep_temps(self, prefix: str) -> List[str]:
        """Delete orphaned ``.{name}.tmp-N`` files under ``prefix``.

        A crash between ``create(tmp)`` and ``rename`` in
        :meth:`write_atomic` leaks a hidden temp file: invisible to
        :meth:`glob_parts` (so readers never see it) but holding blocks
        forever. Recovery paths — the ingest ledger on open, a resumed
        crawl — call this scan to reclaim them. Returns the swept
        paths, sorted, so callers can log what a crash left behind.
        """
        prefix = _normalize(prefix)
        prefix = "/" if prefix == "/" else prefix + "/"
        orphans = sorted(
            p for p in self._files
            if p.startswith(prefix)
            and posixpath.basename(p).startswith(".")
            and ".tmp-" in posixpath.basename(p))
        for path in orphans:
            self.delete(path)
        return orphans

    def copy(self, src: str, dst: str) -> FileStatus:
        """Copy a file (new blocks, fresh placement)."""
        return self.create(dst, self.read(src))

    def disk_usage(self, prefix: str) -> int:
        """Total logical bytes under a pseudo-directory (HDFS du)."""
        return sum(self._files[p].length for p in self.listdir(prefix))

    @property
    def file_count(self) -> int:
        return len(self._files)

    @property
    def total_bytes(self) -> int:
        return sum(s.length for s in self._files.values())

    # -- failure handling --------------------------------------------------------
    def corrupt_block(self, path: str, block_index: int = 0,
                      node_id: str = None) -> str:
        """Flip bytes of one replica of one block (chaos injection).

        Returns the node id whose copy was mangled. Reads of the file
        must survive via checksum failover to a clean replica and
        read-repair the damage.
        """
        status = self.stat(path)
        if not 0 <= block_index < len(status.blocks):
            raise StorageError(f"{path} has no block index {block_index}")
        block = status.blocks[block_index]
        if node_id is None:
            holders = [nid for nid in block.locations
                       if self.datanodes[nid].has(block.block_id)]
            if not holders:
                raise StorageError(f"no live replica of block "
                                   f"{block.block_id} to corrupt")
            node_id = holders[0]
        node = self.datanodes[node_id]
        data = node.get(block.block_id)
        mangled = bytes(b ^ 0xFF for b in data[:4]) + data[4:]
        if not data:
            mangled = b"\x00"
        node.put(block.block_id, mangled)
        return node_id

    def kill_datanode(self, node_id: str) -> None:
        node = self.datanodes.get(node_id)
        if node is None:
            raise NotFoundError(f"no such datanode: {node_id}")
        node.alive = False

    def restart_datanode(self, node_id: str) -> None:
        node = self.datanodes.get(node_id)
        if node is None:
            raise NotFoundError(f"no such datanode: {node_id}")
        node.alive = True

    def under_replicated_blocks(self) -> List[BlockInfo]:
        """Blocks with fewer live replicas than the replication factor."""
        flagged = []
        for status in self._files.values():
            for block in status.blocks:
                live = [nid for nid in block.locations
                        if self.datanodes[nid].has(block.block_id)]
                if len(live) < min(self.replication,
                                   sum(n.alive for n in self.datanodes.values())):
                    flagged.append(block)
        return flagged

    def rereplicate(self) -> int:
        """Restore replication for under-replicated blocks; returns count."""
        repaired = 0
        for status in self._files.values():
            for block in status.blocks:
                live_holders = [nid for nid in block.locations
                                if self.datanodes[nid].has(block.block_id)]
                if not live_holders:
                    continue  # unrecoverable until a holder restarts
                want = min(self.replication,
                           sum(n.alive for n in self.datanodes.values()))
                if len(live_holders) >= want:
                    continue
                # never propagate a corrupt replica: copy from a clean one
                data = None
                for nid in live_holders:
                    candidate = self.datanodes[nid].get(block.block_id)
                    if zlib.crc32(candidate) == block.checksum:
                        data = candidate
                        break
                if data is None:
                    continue  # all surviving copies corrupt; reads will raise
                candidates = [n for n in self.datanodes.values()
                              if n.alive and not n.has(block.block_id)]
                needed = want - len(live_holders)
                for node in self._rng.sample(candidates,
                                             min(needed, len(candidates))):
                    node.put(block.block_id, data)
                    live_holders.append(node.node_id)
                    repaired += 1
                block.locations = live_holders
        return repaired
