"""Namenode + datanode simulation with block replication.

Semantics follow HDFS where it matters to the rest of the system:

* files are write-once byte streams split into fixed-size blocks;
* each block is replicated onto ``replication`` distinct datanodes;
* reading prefers any live replica and raises only when *all* replicas
  of some block are on dead nodes;
* :meth:`MiniDfs.rereplicate` restores under-replicated blocks, the way
  the HDFS namenode does after it declares a datanode dead.

Paths are POSIX-style (``/crawl/angellist/startups/part-00000.jsonl``).
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass, field
from typing import Dict, List

from repro.util.errors import NotFoundError, StorageError
from repro.util.rng import RngStream

DEFAULT_BLOCK_SIZE = 64 * 1024
DEFAULT_REPLICATION = 3


@dataclass
class BlockInfo:
    """Namenode metadata for one block of one file."""

    block_id: int
    length: int
    locations: List[str] = field(default_factory=list)


@dataclass
class FileStatus:
    """What ``stat`` returns: path, length, block layout."""

    path: str
    length: int
    block_size: int
    replication: int
    blocks: List[BlockInfo] = field(default_factory=list)


class DataNode:
    """Stores block payloads; can be killed and restarted."""

    def __init__(self, node_id: str):
        self.node_id = node_id
        self.alive = True
        self._blocks: Dict[int, bytes] = {}

    def put(self, block_id: int, data: bytes) -> None:
        if not self.alive:
            raise StorageError(f"datanode {self.node_id} is down")
        self._blocks[block_id] = data

    def get(self, block_id: int) -> bytes:
        if not self.alive:
            raise StorageError(f"datanode {self.node_id} is down")
        if block_id not in self._blocks:
            raise StorageError(
                f"datanode {self.node_id} does not hold block {block_id}")
        return self._blocks[block_id]

    def has(self, block_id: int) -> bool:
        return self.alive and block_id in self._blocks

    def drop(self, block_id: int) -> None:
        self._blocks.pop(block_id, None)

    @property
    def block_count(self) -> int:
        return len(self._blocks)

    @property
    def used_bytes(self) -> int:
        return sum(len(b) for b in self._blocks.values())


def _normalize(path: str) -> str:
    if not path.startswith("/"):
        raise StorageError(f"paths must be absolute, got {path!r}")
    norm = posixpath.normpath(path)
    return norm


class MiniDfs:
    """The facade: create/read/list/delete files over simulated datanodes."""

    def __init__(self, num_datanodes: int = 4,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 replication: int = DEFAULT_REPLICATION,
                 seed: int = 0):
        if num_datanodes < 1:
            raise StorageError("need at least one datanode")
        self.block_size = block_size
        self.replication = min(replication, num_datanodes)
        self.datanodes: Dict[str, DataNode] = {
            f"dn{i}": DataNode(f"dn{i}") for i in range(num_datanodes)}
        self._files: Dict[str, FileStatus] = {}
        self._next_block_id = 0
        self._rng = RngStream(seed, "dfs")

    # -- write ---------------------------------------------------------------
    def create(self, path: str, data: bytes) -> FileStatus:
        """Write a new file; fails if the path already exists."""
        path = _normalize(path)
        if path in self._files:
            raise StorageError(f"file already exists: {path}")
        status = FileStatus(path=path, length=len(data),
                            block_size=self.block_size,
                            replication=self.replication)
        for offset in range(0, max(1, len(data)), self.block_size):
            chunk = data[offset:offset + self.block_size]
            status.blocks.append(self._store_block(chunk))
        self._files[path] = status
        return status

    def create_text(self, path: str, text: str) -> FileStatus:
        return self.create(path, text.encode("utf-8"))

    def _store_block(self, chunk: bytes) -> BlockInfo:
        block_id = self._next_block_id
        self._next_block_id += 1
        live = [dn for dn in self.datanodes.values() if dn.alive]
        if len(live) < 1:
            raise StorageError("no live datanodes")
        want = min(self.replication, len(live))
        targets = self._rng.sample(live, want)
        for node in targets:
            node.put(block_id, chunk)
        return BlockInfo(block_id=block_id, length=len(chunk),
                         locations=[n.node_id for n in targets])

    # -- read ----------------------------------------------------------------
    def read(self, path: str) -> bytes:
        path = _normalize(path)
        status = self._files.get(path)
        if status is None:
            raise NotFoundError(f"no such file: {path}")
        parts = []
        for block in status.blocks:
            parts.append(self._fetch_block(block))
        return b"".join(parts)

    def read_text(self, path: str) -> str:
        return self.read(path).decode("utf-8")

    def _fetch_block(self, block: BlockInfo) -> bytes:
        for node_id in block.locations:
            node = self.datanodes[node_id]
            if node.has(block.block_id):
                return node.get(block.block_id)
        raise StorageError(
            f"block {block.block_id} unavailable: all replicas down")

    # -- namespace -------------------------------------------------------------
    def exists(self, path: str) -> bool:
        return _normalize(path) in self._files

    def stat(self, path: str) -> FileStatus:
        path = _normalize(path)
        status = self._files.get(path)
        if status is None:
            raise NotFoundError(f"no such file: {path}")
        return status

    def delete(self, path: str) -> None:
        path = _normalize(path)
        status = self._files.pop(path, None)
        if status is None:
            raise NotFoundError(f"no such file: {path}")
        for block in status.blocks:
            for node_id in block.locations:
                self.datanodes[node_id].drop(block.block_id)

    def listdir(self, prefix: str) -> List[str]:
        """All file paths under ``prefix`` (a pseudo-directory), sorted."""
        prefix = _normalize(prefix).rstrip("/") + "/"
        return sorted(p for p in self._files if p.startswith(prefix))

    def glob_parts(self, directory: str) -> List[str]:
        """The ``part-*`` files of a dataset directory, in order."""
        return [p for p in self.listdir(directory)
                if posixpath.basename(p).startswith("part-")]

    def rename(self, src: str, dst: str) -> None:
        """Move a file to a new path (metadata-only, like HDFS mv)."""
        src, dst = _normalize(src), _normalize(dst)
        if src not in self._files:
            raise NotFoundError(f"no such file: {src}")
        if dst in self._files:
            raise StorageError(f"destination exists: {dst}")
        status = self._files.pop(src)
        status.path = dst
        self._files[dst] = status

    def copy(self, src: str, dst: str) -> FileStatus:
        """Copy a file (new blocks, fresh placement)."""
        return self.create(dst, self.read(src))

    def disk_usage(self, prefix: str) -> int:
        """Total logical bytes under a pseudo-directory (HDFS du)."""
        return sum(self._files[p].length for p in self.listdir(prefix))

    @property
    def file_count(self) -> int:
        return len(self._files)

    @property
    def total_bytes(self) -> int:
        return sum(s.length for s in self._files.values())

    # -- failure handling --------------------------------------------------------
    def kill_datanode(self, node_id: str) -> None:
        node = self.datanodes.get(node_id)
        if node is None:
            raise NotFoundError(f"no such datanode: {node_id}")
        node.alive = False

    def restart_datanode(self, node_id: str) -> None:
        node = self.datanodes.get(node_id)
        if node is None:
            raise NotFoundError(f"no such datanode: {node_id}")
        node.alive = True

    def under_replicated_blocks(self) -> List[BlockInfo]:
        """Blocks with fewer live replicas than the replication factor."""
        flagged = []
        for status in self._files.values():
            for block in status.blocks:
                live = [nid for nid in block.locations
                        if self.datanodes[nid].has(block.block_id)]
                if len(live) < min(self.replication,
                                   sum(n.alive for n in self.datanodes.values())):
                    flagged.append(block)
        return flagged

    def rereplicate(self) -> int:
        """Restore replication for under-replicated blocks; returns count."""
        repaired = 0
        for status in self._files.values():
            for block in status.blocks:
                live_holders = [nid for nid in block.locations
                                if self.datanodes[nid].has(block.block_id)]
                if not live_holders:
                    continue  # unrecoverable until a holder restarts
                want = min(self.replication,
                           sum(n.alive for n in self.datanodes.values()))
                if len(live_holders) >= want:
                    continue
                data = self.datanodes[live_holders[0]].get(block.block_id)
                candidates = [n for n in self.datanodes.values()
                              if n.alive and not n.has(block.block_id)]
                needed = want - len(live_holders)
                for node in self._rng.sample(candidates,
                                             min(needed, len(candidates))):
                    node.put(block.block_id, data)
                    live_holders.append(node.node_id)
                    repaired += 1
                block.locations = live_holders
        return repaired
