"""Minimal SVG rendering for community visualizations (Figure 7)."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.viz.layout import Position, fruchterman_reingold

INVESTOR_COLOR = "#2b6cb0"   # blue, as in the paper
COMPANY_COLOR = "#c53030"    # red


class SvgCanvas:
    """Accumulates SVG elements and serializes the document."""

    def __init__(self, width: int = 640, height: int = 640,
                 background: str = "#ffffff"):
        self.width = width
        self.height = height
        self._elements = [
            f'<rect width="{width}" height="{height}" fill="{background}"/>']

    def line(self, x1: float, y1: float, x2: float, y2: float,
             color: str = "#999999", width: float = 1.0,
             opacity: float = 0.6) -> None:
        self._elements.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{color}" stroke-width="{width}" '
            f'stroke-opacity="{opacity}"/>')

    def circle(self, x: float, y: float, radius: float,
               color: str, title: Optional[str] = None) -> None:
        body = (f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{radius:.1f}" '
                f'fill="{color}">')
        if title:
            body += f"<title>{title}</title>"
        body += "</circle>"
        self._elements.append(body)

    def text(self, x: float, y: float, content: str,
             font_size: int = 14, color: str = "#333333") -> None:
        self._elements.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{font_size}" '
            f'fill="{color}" font-family="sans-serif">{content}</text>')

    def to_svg(self) -> str:
        header = (f'<svg xmlns="http://www.w3.org/2000/svg" '
                  f'width="{self.width}" height="{self.height}">')
        return header + "".join(self._elements) + "</svg>"

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_svg())


def render_community_svg(investors: Sequence[int],
                         edges: Sequence[Tuple[int, int]],
                         title: str = "",
                         width: int = 640, height: int = 640,
                         seed: int = 0) -> str:
    """Figure 7-style drawing: blue investors, red companies.

    ``edges`` are (investor_id, company_id) pairs restricted to the
    community being drawn; companies are inferred from the edges.
    """
    investor_nodes = [("i", uid) for uid in investors]
    company_ids = sorted({c for _u, c in edges})
    company_nodes = [("c", cid) for cid in company_ids]
    nodes = investor_nodes + company_nodes
    typed_edges = [(("i", u), ("c", c)) for u, c in edges]
    layout = fruchterman_reingold(nodes, typed_edges, seed=seed)

    margin = 40.0
    span_x, span_y = width - 2 * margin, height - 2 * margin

    def place(node) -> Position:
        x, y = layout[node]
        return margin + x * span_x, margin + y * span_y

    canvas = SvgCanvas(width, height)
    for a, b in typed_edges:
        (x1, y1), (x2, y2) = place(a), place(b)
        canvas.line(x1, y1, x2, y2)
    for node in investor_nodes:
        x, y = place(node)
        canvas.circle(x, y, 6.0, INVESTOR_COLOR, title=f"investor {node[1]}")
    for node in company_nodes:
        x, y = place(node)
        canvas.circle(x, y, 5.0, COMPANY_COLOR, title=f"company {node[1]}")
    if title:
        canvas.text(margin, margin / 2, title)
    return canvas.to_svg()
