"""Visualization without external plotting dependencies.

Figure 7 of the paper is an igraph force-directed drawing of one strong
and one weak community (blue investors, red companies). igraph and
matplotlib are unavailable offline, so this package provides:

* :func:`fruchterman_reingold` — a from-scratch force-directed layout;
* :func:`bipartite_layout` — two-column layout alternative;
* :class:`SvgCanvas` / :func:`render_community_svg` — dependency-free
  SVG output reproducing Figure 7's visual encoding;
* ASCII charts (:func:`ascii_cdf`, :func:`ascii_histogram`,
  :func:`ascii_table`) used by the examples and benchmark harnesses to
  print figure-shaped output in a terminal.
"""

from repro.viz.layout import bipartite_layout, fruchterman_reingold
from repro.viz.svg import SvgCanvas, render_community_svg
from repro.viz.ascii import ascii_cdf, ascii_histogram, ascii_series, ascii_table

__all__ = [
    "bipartite_layout",
    "fruchterman_reingold",
    "SvgCanvas",
    "render_community_svg",
    "ascii_cdf",
    "ascii_histogram",
    "ascii_series",
    "ascii_table",
]
