"""Graph layouts implemented from scratch (numpy only)."""

from __future__ import annotations

from typing import Dict, Hashable, Sequence, Tuple

import numpy as np

from repro.util.rng import RngStream

Position = Tuple[float, float]


def fruchterman_reingold(nodes: Sequence[Hashable],
                         edges: Sequence[Tuple[Hashable, Hashable]],
                         iterations: int = 120,
                         seed: int = 0,
                         size: float = 1.0) -> Dict[Hashable, Position]:
    """Force-directed layout (Fruchterman & Reingold, 1991).

    Repulsion ``k²/d`` between all pairs, attraction ``d²/k`` along
    edges, with a linearly cooling temperature. O(n²) per iteration —
    meant for community-sized subgraphs (Figure 7), not the full graph.
    """
    node_list = list(nodes)
    n = len(node_list)
    if n == 0:
        return {}
    index = {node: i for i, node in enumerate(node_list)}
    rng = RngStream(seed, "layout")
    pos = rng.np.random((n, 2)) * size
    if n == 1:
        return {node_list[0]: (float(pos[0, 0]), float(pos[0, 1]))}

    edge_idx = np.array([(index[a], index[b]) for a, b in edges
                         if a in index and b in index], dtype=np.int64)
    k = size * np.sqrt(1.0 / n)
    temperature = 0.1 * size
    cooling = temperature / (iterations + 1)

    for _ in range(iterations):
        delta = pos[:, None, :] - pos[None, :, :]          # (n, n, 2)
        distance = np.maximum(0.01 * k, np.linalg.norm(delta, axis=2))
        repulsion = (k * k) / distance ** 2                # (n, n)
        displacement = (delta * repulsion[:, :, None]).sum(axis=1)
        if edge_idx.size:
            src, dst = edge_idx[:, 0], edge_idx[:, 1]
            edge_delta = pos[src] - pos[dst]
            edge_dist = np.maximum(0.01 * k,
                                   np.linalg.norm(edge_delta, axis=1))
            pull = (edge_delta / edge_dist[:, None]) * (
                edge_dist ** 2 / k)[:, None]
            np.add.at(displacement, src, -pull)
            np.add.at(displacement, dst, pull)
        length = np.maximum(1e-9, np.linalg.norm(displacement, axis=1))
        capped = np.minimum(length, temperature)
        pos += displacement / length[:, None] * capped[:, None]
        temperature = max(1e-4 * size, temperature - cooling)

    pos -= pos.min(axis=0)
    span = np.maximum(1e-9, pos.max(axis=0))
    pos = pos / span * size
    return {node: (float(x), float(y))
            for node, (x, y) in zip(node_list, pos)}


def bipartite_layout(left: Sequence[Hashable], right: Sequence[Hashable],
                     size: float = 1.0) -> Dict[Hashable, Position]:
    """Two-column layout: ``left`` nodes at x=0, ``right`` at x=size."""
    positions: Dict[Hashable, Position] = {}
    for column, nodes in ((0.0, list(left)), (size, list(right))):
        count = max(1, len(nodes) - 1)
        for i, node in enumerate(nodes):
            positions[node] = (column, size * i / count if count else 0.0)
    return positions
