"""Terminal charts used by examples and benchmark harnesses.

These render figure-shaped output (CDF curves, PDF histograms, summary
tables) as plain text so every paper artifact can be eyeballed without a
plotting stack.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def ascii_series(xs: Sequence[float], ys: Sequence[float],
                 width: int = 64, height: int = 16,
                 x_label: str = "x", y_label: str = "y") -> str:
    """A scatter/line chart of (xs, ys) on a character grid."""
    xs = np.asarray(list(xs), dtype=np.float64)
    ys = np.asarray(list(ys), dtype=np.float64)
    if xs.size == 0:
        return "(empty series)"
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(ys.min()), float(ys.max())
    x_span = max(1e-12, x_hi - x_lo)
    y_span = max(1e-12, y_hi - y_lo)
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((y - y_lo) / y_span * (height - 1))
        grid[row][col] = "*"
    lines = [f"{y_hi:>10.3g} ┤" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_lo:>10.3g} ┤" + "".join(grid[-1]))
    lines.append(" " * 12 + "└" + "─" * width)
    lines.append(" " * 12 + f"{x_lo:<.3g}{' ' * max(1, width - 12)}{x_hi:.3g}")
    lines.append(f"   y: {y_label}   x: {x_label}")
    return "\n".join(lines)


def ascii_cdf(values: Sequence[float], width: int = 64, height: int = 16,
              label: str = "value") -> str:
    """The empirical CDF of ``values`` as a step chart."""
    arr = np.sort(np.asarray(list(values), dtype=np.float64))
    if arr.size == 0:
        return "(empty sample)"
    xs, counts = np.unique(arr, return_counts=True)
    ys = np.cumsum(counts) / arr.size
    return ascii_series(xs, ys, width=width, height=height,
                        x_label=label, y_label="F(x)")


def ascii_histogram(values: Sequence[float], bins: int = 12,
                    width: int = 48, label: str = "value") -> str:
    """A horizontal-bar histogram (Figure 5's PDF shape)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return "(empty sample)"
    counts, edges = np.histogram(arr, bins=bins)
    peak = max(1, counts.max())
    lines = []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "█" * int(round(width * count / peak))
        lines.append(f"{lo:>9.3g} – {hi:<9.3g} │{bar} {count}")
    lines.append(f"(n={arr.size}, {label})")
    return "\n".join(lines)


def ascii_table(headers: Sequence[str],
                rows: Sequence[Sequence[object]]) -> str:
    """A column-aligned text table (Figure 6's layout)."""
    table = [list(map(str, headers))] + [list(map(str, r)) for r in rows]
    widths = [max(len(row[i]) for row in table)
              for i in range(len(headers))]
    lines = []
    for index, row in enumerate(table):
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
