"""One-stop construction of all four simulated sources over a shared clock."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.faults import FaultPlan
from repro.net.latency import LatencyModel
from repro.sources.angellist import AngelListServer
from repro.sources.crunchbase import CrunchBaseServer
from repro.sources.facebook import FacebookServer
from repro.sources.twitter import TwitterServer
from repro.util.clock import Clock, SimClock
from repro.world.generator import World


@dataclass
class SourceHub:
    """The four simulated services plus the clock they all share."""

    clock: Clock
    angellist: AngelListServer
    crunchbase: CrunchBaseServer
    facebook: FacebookServer
    twitter: TwitterServer

    @classmethod
    def from_world(cls, world: World, clock: Optional[Clock] = None,
                   latency: Optional[LatencyModel] = None,
                   faults: Optional[FaultPlan] = None) -> "SourceHub":
        """Build all servers over ``world`` with shared clock/latency/faults."""
        clock = clock or SimClock()
        latency = latency or LatencyModel.zero()
        faults = faults or FaultPlan.none()
        return cls(
            clock=clock,
            angellist=AngelListServer(world, clock, latency, faults),
            crunchbase=CrunchBaseServer(world, clock, latency, faults),
            facebook=FacebookServer(world, clock, latency, faults),
            twitter=TwitterServer(world, clock, latency, faults),
        )

    @property
    def total_requests(self) -> int:
        return (self.angellist.request_count + self.crunchbase.request_count
                + self.facebook.request_count + self.twitter.request_count)
