"""Simulated public APIs for the four data sources the paper crawled.

Each server exposes the subset of endpoints the paper's crawlers used,
with the real services' authentication and throttling behaviour:

* :class:`AngelListServer` — startup/user profiles, follower and following
  lists, investments; the public listing endpoint only returns *currently
  fundraising* startups, which is why the paper needs a BFS crawl.
* :class:`CrunchBaseServer` — organization lookups by permalink and a
  name-search endpoint used when AngelList lacks a CrunchBase URL.
* :class:`FacebookServer` — a Graph-API-style page endpoint behind an
  OAuth dance: short-lived tokens must be exchanged for long-lived ones.
* :class:`TwitterServer` — a REST-style ``users/show`` endpoint limited to
  180 calls per 15-minute window per token, with at most five app tokens
  per registered account (the constraint that forced the paper to spread
  crawling across machines).

:class:`SourceHub` wires all four over one shared simulated clock.
"""

from repro.sources.base import ApiToken, FixedWindowLimiter, TokenRegistry
from repro.sources.angellist import AngelListServer
from repro.sources.crunchbase import CrunchBaseServer
from repro.sources.facebook import FacebookServer
from repro.sources.twitter import TwitterServer
from repro.sources.hub import SourceHub

__all__ = [
    "ApiToken",
    "FixedWindowLimiter",
    "TokenRegistry",
    "AngelListServer",
    "CrunchBaseServer",
    "FacebookServer",
    "TwitterServer",
    "SourceHub",
]
