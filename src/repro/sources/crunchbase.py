"""Simulated CrunchBase API.

Two endpoints, matching the paper's one-time augmentation pass (§3):

* ``GET /v3/organizations/:permalink`` — full organization record with
  funding rounds (the authoritative fundraising-success signal).
* ``GET /v3/organizations?name=...`` — name search, used when the
  AngelList profile does not link a CrunchBase URL. Returns all matches;
  the augmenter only accepts a *unique* result, as in the paper.

Auth: a ``user_key`` query parameter (CrunchBase's scheme). Rate limit is
generous (the paper notes CrunchBase data changes slowly).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net.http import Request, Response, SimServer
from repro.net.faults import FaultPlan
from repro.net.latency import LatencyModel
from repro.sources.base import FixedWindowLimiter, TokenRegistry
from repro.util.clock import Clock
from repro.world.generator import World

RATE_LIMIT = 5000
RATE_WINDOW = 3600.0


def normalize_name(name: str) -> str:
    """Lowercase, collapse whitespace — the search key CrunchBase uses."""
    return " ".join(name.lower().split())


class CrunchBaseServer(SimServer):
    """Serves CrunchBase organization records for companies in the world."""

    name = "crunchbase"

    def __init__(self, world: World, clock: Optional[Clock] = None,
                 latency: Optional[LatencyModel] = None,
                 faults: Optional[FaultPlan] = None):
        super().__init__(clock=clock, latency=latency, faults=faults)
        self.world = world
        self.tokens = TokenRegistry("cb", self.clock)
        self.limiter = FixedWindowLimiter(RATE_LIMIT, RATE_WINDOW, self.clock)

        self._by_permalink: Dict[str, int] = {}
        self._by_name: Dict[str, List[int]] = {}
        for cid, company in world.companies.items():
            if company.crunchbase_id is None:
                continue
            self._by_permalink[company.slug] = cid
            self._by_name.setdefault(normalize_name(company.name), []).append(cid)

        self.route("GET", "/v3/organizations", self._search)
        self.route("GET", "/v3/organizations/:permalink", self._get_org)

    def issue_key(self, label: str = "crawler") -> str:
        return self.tokens.issue(label).value

    def authorize(self, request: Request) -> Optional[Response]:
        key = request.params.get("user_key")
        if self.tokens.lookup(key) is None:
            return Response.error(401, "missing or invalid user_key")
        return None

    def throttle(self, request: Request) -> Optional[Response]:
        retry_after = self.limiter.check(str(request.params.get("user_key")))
        if retry_after is not None:
            return Response.error(429, "rate limit exceeded",
                                  retry_after=retry_after)
        return None

    @property
    def organization_count(self) -> int:
        return len(self._by_permalink)

    def _org_json(self, cid: int) -> Dict:
        company = self.world.companies[cid]
        rounds = [r.to_json() for r in company.rounds]
        return {
            "permalink": company.slug,
            "name": company.name,
            "total_funding_usd": sum(r.amount_usd for r in company.rounds),
            "funding_rounds": rounds,
            "num_funding_rounds": len(rounds),
            "angellist_id": company.company_id,
        }

    def _get_org(self, request: Request) -> Response:
        permalink = request.path_params.get("permalink", "")
        cid = self._by_permalink.get(permalink)
        if cid is None:
            return Response.error(404, f"organization {permalink!r} not found")
        return Response.json({"data": self._org_json(cid)})

    def _search(self, request: Request) -> Response:
        query = request.params.get("name")
        if not query:
            return Response.error(400, "name parameter is required")
        matches = self._by_name.get(normalize_name(str(query)), [])
        items = [{"permalink": self.world.companies[cid].slug,
                  "name": self.world.companies[cid].name}
                 for cid in matches]
        return Response.json({"items": items, "total": len(items)})
