"""Shared machinery for the simulated APIs: tokens and rate limiting."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional

from repro.net.http import Request, Response
from repro.util.clock import Clock


@dataclass
class ApiToken:
    """An issued access token with optional expiry (simulated seconds)."""

    value: str
    label: str
    issued_at: float
    expires_at: Optional[float] = None  # None = never expires
    revoked: bool = False

    def valid_at(self, now: float) -> bool:
        if self.revoked:
            return False
        return self.expires_at is None or now < self.expires_at


class TokenRegistry:
    """Issues and validates tokens for one simulated service."""

    def __init__(self, prefix: str, clock: Clock):
        self._prefix = prefix
        self._clock = clock
        self._counter = itertools.count(1)
        self._tokens: Dict[str, ApiToken] = {}

    def issue(self, label: str, ttl: Optional[float] = None) -> ApiToken:
        value = f"{self._prefix}_{next(self._counter)}"
        now = self._clock.now()
        token = ApiToken(
            value=value, label=label, issued_at=now,
            expires_at=None if ttl is None else now + ttl)
        self._tokens[value] = token
        return token

    def revoke(self, value: str) -> None:
        if value in self._tokens:
            self._tokens[value].revoked = True

    def lookup(self, value: Optional[str]) -> Optional[ApiToken]:
        if value is None:
            return None
        token = self._tokens.get(value)
        if token is None or not token.valid_at(self._clock.now()):
            return None
        return token

    def __len__(self) -> int:
        return len(self._tokens)


@dataclass
class _Window:
    start: float = 0.0
    count: int = 0


class FixedWindowLimiter:
    """Per-token fixed-window rate limiter (e.g. Twitter's 180 / 15 min).

    ``check`` consumes one slot and returns ``None`` if allowed, or the
    seconds until the window resets if the caller is over the limit.
    """

    def __init__(self, max_requests: int, window_seconds: float, clock: Clock):
        if max_requests < 1:
            raise ValueError("max_requests must be >= 1")
        if window_seconds <= 0:
            raise ValueError("window_seconds must be > 0")
        self.max_requests = max_requests
        self.window_seconds = window_seconds
        self._clock = clock
        self._windows: Dict[str, _Window] = {}

    def check(self, key: str) -> Optional[float]:
        now = self._clock.now()
        window = self._windows.setdefault(key, _Window(start=now))
        if now - window.start >= self.window_seconds:
            window.start = now
            window.count = 0
        if window.count >= self.max_requests:
            return (window.start + self.window_seconds) - now
        window.count += 1
        return None

    def remaining(self, key: str) -> int:
        now = self._clock.now()
        window = self._windows.get(key)
        if window is None or now - window.start >= self.window_seconds:
            return self.max_requests
        return max(0, self.max_requests - window.count)


def require_token(registry: TokenRegistry, request: Request) -> Optional[Response]:
    """Standard auth hook body: 401 unless the request bears a live token."""
    if registry.lookup(request.token) is None:
        return Response.error(401, "invalid or expired access token")
    return None
