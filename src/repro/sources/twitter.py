"""Simulated Twitter REST API.

Reproduces the two constraints §3 calls out explicitly:

* **180 calls per 15-minute window per access token** on
  ``GET /1.1/users/show.json``;
* **at most five registered apps per Twitter account** — each app yields
  one token, so a crawler wanting N tokens must register ⌈N/5⌉ accounts
  (the paper spread these across machines; our token pool spreads them
  across workers).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.net.http import Request, Response, SimServer
from repro.net.faults import FaultPlan
from repro.net.latency import LatencyModel
from repro.sources.base import FixedWindowLimiter, TokenRegistry
from repro.util.clock import Clock
from repro.world.generator import World

RATE_LIMIT = 180
RATE_WINDOW = 900.0
MAX_APPS_PER_ACCOUNT = 5


class TwitterServer(SimServer):
    """Serves Twitter profiles for companies that have one."""

    name = "twitter"

    def __init__(self, world: World, clock: Optional[Clock] = None,
                 latency: Optional[LatencyModel] = None,
                 faults: Optional[FaultPlan] = None):
        super().__init__(clock=clock, latency=latency, faults=faults)
        self.world = world
        self.tokens = TokenRegistry("tw", self.clock)
        self.limiter = FixedWindowLimiter(RATE_LIMIT, RATE_WINDOW, self.clock)
        self._apps_per_account: Dict[str, int] = {}
        self._by_screen_name: Dict[str, int] = {
            profile.screen_name: pid
            for pid, profile in world.twitter_profiles.items()}

        self.route("GET", "/1.1/users/show.json", self._show_user)

    def register_app(self, account: str) -> str:
        """Register an app under ``account`` and return its access token.

        Raises ``PermissionError`` once the account holds five apps.
        """
        used = self._apps_per_account.get(account, 0)
        if used >= MAX_APPS_PER_ACCOUNT:
            raise PermissionError(
                f"account {account!r} already has {MAX_APPS_PER_ACCOUNT} apps")
        self._apps_per_account[account] = used + 1
        return self.tokens.issue(f"{account}/app{used + 1}").value

    def authorize(self, request: Request) -> Optional[Response]:
        if self.tokens.lookup(request.token) is None:
            return Response.error(401, "invalid or expired access token")
        return None

    def throttle(self, request: Request) -> Optional[Response]:
        retry_after = self.limiter.check(request.token or "")
        if retry_after is not None:
            return Response.error(429, "Rate limit exceeded",
                                  retry_after=retry_after)
        return None

    @property
    def profile_count(self) -> int:
        return len(self._by_screen_name)

    def remaining(self, token: str) -> int:
        """Calls left in the token's current window (for schedulers)."""
        return self.limiter.remaining(token)

    def _show_user(self, request: Request) -> Response:
        screen_name = request.params.get("screen_name")
        if not screen_name:
            return Response.error(400, "screen_name parameter is required")
        pid = self._by_screen_name.get(str(screen_name))
        if pid is None:
            return Response.error(404, f"user {screen_name!r} not found")
        return Response.json(self.world.twitter_profiles[pid].to_json())
