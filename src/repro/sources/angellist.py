"""Simulated AngelList API.

Endpoints (mirroring the subset the paper's BFS crawler used):

* ``GET /1/startups?filter=raising&page=N`` — only *currently fundraising*
  startups are listable (§3: "about 4000 of them"); everything else must
  be discovered by following the social graph.
* ``GET /1/startups/:id`` — full startup profile, including the
  ``facebook_url`` / ``twitter_url`` / ``crunchbase_url`` links the
  enrichment crawlers consume.
* ``GET /1/startups/:id/followers?page=N`` — users following a startup.
* ``GET /1/users/:id`` — user profile with roles.
* ``GET /1/users/:id/following?type=startup|user&page=N`` — outgoing
  follow edges, the BFS frontier expansion step.
* ``GET /1/users/:id/investments?page=N`` — companies the user invested
  in, as shown on AngelList profiles.

Auth: every call needs a token from :meth:`issue_token`. Rate limit:
1000 requests per hour per token (AngelList's documented limit).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net.http import Request, Response, SimServer, paginate
from repro.net.faults import FaultPlan
from repro.net.latency import LatencyModel
from repro.sources.base import FixedWindowLimiter, TokenRegistry, require_token
from repro.util.clock import Clock
from repro.world.generator import World

PER_PAGE = 50
RATE_LIMIT = 1000
RATE_WINDOW = 3600.0


class AngelListServer(SimServer):
    """Serves AngelList views of a :class:`~repro.world.generator.World`."""

    name = "angellist"

    def __init__(self, world: World, clock: Optional[Clock] = None,
                 latency: Optional[LatencyModel] = None,
                 faults: Optional[FaultPlan] = None):
        super().__init__(clock=clock, latency=latency, faults=faults)
        self.world = world
        self.tokens = TokenRegistry("al", self.clock)
        self.limiter = FixedWindowLimiter(RATE_LIMIT, RATE_WINDOW, self.clock)
        self._followers: Dict[int, List[int]] = world.company_followers()
        self._raising_ids = sorted(
            cid for cid, c in world.companies.items() if c.currently_raising)

        self.route("GET", "/1/startups", self._list_startups)
        self.route("GET", "/1/startups/:id", self._get_startup)
        self.route("GET", "/1/startups/:id/followers", self._get_followers)
        self.route("GET", "/1/users/:id", self._get_user)
        self.route("GET", "/1/users/:id/following", self._get_following)
        self.route("GET", "/1/users/:id/investments", self._get_investments)

    # -- auth / throttling ---------------------------------------------------
    def issue_token(self, label: str = "crawler") -> str:
        return self.tokens.issue(label).value

    def authorize(self, request: Request) -> Optional[Response]:
        return require_token(self.tokens, request)

    def throttle(self, request: Request) -> Optional[Response]:
        retry_after = self.limiter.check(request.token or "")
        if retry_after is not None:
            return Response.error(429, "rate limit exceeded",
                                  retry_after=retry_after)
        return None

    # -- url helpers -----------------------------------------------------------
    def facebook_url(self, company) -> Optional[str]:
        if company.facebook_page_id is None:
            return None
        return f"https://facebook.example/pg/{company.slug}"

    def twitter_url(self, company) -> Optional[str]:
        if company.twitter_profile_id is None:
            return None
        profile = self.world.twitter_profiles[company.twitter_profile_id]
        return f"https://twitter.example/{profile.screen_name}"

    def crunchbase_url(self, company) -> Optional[str]:
        if company.crunchbase_id is None or not company.links_crunchbase:
            return None
        return f"https://crunchbase.example/organization/{company.slug}"

    # -- handlers --------------------------------------------------------------
    def _page(self, request: Request) -> int:
        try:
            return max(1, int(request.params.get("page", 1)))
        except (TypeError, ValueError):
            return 1

    def _list_startups(self, request: Request) -> Response:
        if request.params.get("filter") != "raising":
            return Response.error(
                400, "only filter=raising is supported by the public API")
        page = self._page(request)
        ids, last = paginate(self._raising_ids, page, PER_PAGE)
        items = [{"id": cid, "name": self.world.companies[cid].name}
                 for cid in ids]
        return Response.json({"startups": items, "page": page,
                              "last_page": last,
                              "total": len(self._raising_ids)})

    def _get_startup(self, request: Request) -> Response:
        cid = _int_or_none(request.path_params.get("id"))
        company = self.world.companies.get(cid) if cid is not None else None
        if company is None:
            return Response.error(404, f"startup {request.path_params['id']} "
                                       "not found")
        return Response.json(company.angellist_json(
            fb_url=self.facebook_url(company),
            tw_url=self.twitter_url(company),
            cb_url=self.crunchbase_url(company)))

    def _get_followers(self, request: Request) -> Response:
        cid = _int_or_none(request.path_params.get("id"))
        if cid is None or cid not in self.world.companies:
            return Response.error(404, "startup not found")
        page = self._page(request)
        ids, last = paginate(self._followers.get(cid, []), page, PER_PAGE)
        items = [self.world.users[uid].angellist_json() for uid in ids]
        return Response.json({"users": items, "page": page, "last_page": last})

    def _get_user(self, request: Request) -> Response:
        uid = _int_or_none(request.path_params.get("id"))
        user = self.world.users.get(uid) if uid is not None else None
        if user is None:
            return Response.error(404, "user not found")
        return Response.json(user.angellist_json())

    def _get_following(self, request: Request) -> Response:
        uid = _int_or_none(request.path_params.get("id"))
        user = self.world.users.get(uid) if uid is not None else None
        if user is None:
            return Response.error(404, "user not found")
        kind = request.params.get("type", "startup")
        page = self._page(request)
        if kind == "startup":
            ids, last = paginate(user.follows_companies, page, PER_PAGE)
            items = [{"id": cid, "type": "Startup"} for cid in ids]
        elif kind == "user":
            ids, last = paginate(user.follows_users, page, PER_PAGE)
            items = [{"id": fid, "type": "User"} for fid in ids]
        else:
            return Response.error(400, f"unknown follow type {kind!r}")
        return Response.json({"items": items, "page": page, "last_page": last})

    def _get_investments(self, request: Request) -> Response:
        uid = _int_or_none(request.path_params.get("id"))
        user = self.world.users.get(uid) if uid is not None else None
        if user is None:
            return Response.error(404, "user not found")
        page = self._page(request)
        ids, last = paginate(user.investments, page, PER_PAGE)
        items = [{"startup_id": cid,
                  "startup_name": self.world.companies[cid].name}
                 for cid in ids]
        return Response.json({"investments": items, "page": page,
                              "last_page": last})


def _int_or_none(value) -> Optional[int]:
    try:
        return int(value)
    except (TypeError, ValueError):
        return None
