"""Simulated Facebook Graph API.

Reproduces the auth dance §3 describes: the crawler logs in (client
credentials) for a *short-lived* token, then exchanges it for a
*long-lived* one "through certain procedures including creating a
Facebook App". Short-lived tokens expire after two simulated hours —
a crawler that skips the exchange stalls mid-crawl with 401s.

Endpoint: ``GET /:page_slug?access_token=...`` returns the page document
(fan count, location, post count, recent posts).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.net.http import Request, Response, SimServer
from repro.net.faults import FaultPlan
from repro.net.latency import LatencyModel
from repro.sources.base import FixedWindowLimiter, TokenRegistry
from repro.util.clock import Clock
from repro.world.generator import World

SHORT_TTL = 2 * 3600.0
LONG_TTL = 60 * 24 * 3600.0
RATE_LIMIT = 4800
RATE_WINDOW = 3600.0


class FacebookServer(SimServer):
    """Serves Facebook pages for companies that have one."""

    name = "facebook"

    def __init__(self, world: World, clock: Optional[Clock] = None,
                 latency: Optional[LatencyModel] = None,
                 faults: Optional[FaultPlan] = None):
        super().__init__(clock=clock, latency=latency, faults=faults)
        self.world = world
        self.tokens = TokenRegistry("fb", self.clock)
        self.limiter = FixedWindowLimiter(RATE_LIMIT, RATE_WINDOW, self.clock)
        self._by_slug: Dict[str, int] = {}
        for page in world.facebook_pages.values():
            company = world.companies[page.company_id]
            self._by_slug[company.slug] = page.page_id

        self.route("POST", "/oauth/access_token", self._login)
        self.route("GET", "/oauth/exchange", self._exchange)
        self.route("GET", "/pg/:slug", self._get_page)

    # -- oauth -----------------------------------------------------------------
    def _login(self, request: Request) -> Response:
        if not request.params.get("app_id") or not request.params.get("app_secret"):
            return Response.error(400, "app_id and app_secret are required")
        token = self.tokens.issue("short-lived", ttl=SHORT_TTL)
        return Response.json({"access_token": token.value,
                              "token_type": "bearer",
                              "expires_in": SHORT_TTL})

    def _exchange(self, request: Request) -> Response:
        short = self.tokens.lookup(request.params.get("fb_exchange_token"))
        if short is None:
            return Response.error(401, "cannot exchange an invalid token")
        long_token = self.tokens.issue("long-lived", ttl=LONG_TTL)
        self.tokens.revoke(short.value)
        return Response.json({"access_token": long_token.value,
                              "token_type": "bearer",
                              "expires_in": LONG_TTL})

    def authorize(self, request: Request) -> Optional[Response]:
        if request.path.startswith("/oauth/"):
            return None
        if self.tokens.lookup(request.token) is None:
            return Response.error(401, "invalid or expired access token")
        return None

    def throttle(self, request: Request) -> Optional[Response]:
        if request.path.startswith("/oauth/"):
            return None
        retry_after = self.limiter.check(request.token or "")
        if retry_after is not None:
            return Response.error(429, "application request limit reached",
                                  retry_after=retry_after)
        return None

    # -- pages -------------------------------------------------------------------
    @property
    def page_count(self) -> int:
        return len(self._by_slug)

    def _get_page(self, request: Request) -> Response:
        slug = request.path_params.get("slug", "")
        page_id = self._by_slug.get(slug)
        if page_id is None:
            return Response.error(404, f"page {slug!r} not found")
        return Response.json(self.world.facebook_pages[page_id].to_json())
