"""Adaptive, cost-based query planning from *observed* runtime statistics.

The engine's static plans pick everything up front: partition counts come
from the RDD declaration, the broadcast-vs-shuffle join choice from a
fixed byte threshold, and dataset scans always materialize full records.
This module closes the loop the way Spark's AQE does — every decision is
made *after* the stage feeding it has materialized, from measured (not
estimated) cardinalities and sampled serialized sizes:

* :class:`StatsCollector` — samples per-partition cardinality and
  serialized size at each stage boundary. Sampling is deterministic
  (fixed-stride over the materialized partition, like
  ``plan_range_partitioner``) so retried or speculative attempts can
  never perturb a plan, and idempotent per stage key so supervisor
  recovery cannot double-count a recomputed partition.
* :meth:`AdaptivePlanner.plan_reduce` — **coalescing**: adjacent
  undersized reduce buckets merge toward ``target_partition_bytes``
  before the post op runs (hash/range buckets hold disjoint keys, so the
  concatenation of per-bucket post outputs equals the post output of the
  concatenated buckets for every built-in post op — see ``concat_safe``
  in ``rdd.py``); **skew splitting**: a bucket detected hot from the
  sealed-block size histogram is split at map-chunk boundaries into
  parallel reduce tasks whose partial outputs merge left-to-right with
  the same partial-merge the map-side combiner contract already
  guarantees (``partial_merge`` in ``rdd.py``).
* :meth:`AdaptivePlanner.choose_broadcast` — the join side to broadcast
  is chosen from the observed row counts and sampled sizes of both
  *materialized* sides, replacing the static threshold entirely when
  ``engine_adaptive`` is on.
* :func:`analyze_job` — per-job lineage analysis: which nodes may
  legally change partition boundaries (coalescing keeps the declared
  partition count by padding with trailing empties, so only
  whole-partition consumers like ``mapPartitions``/``sample`` and
  persisted nodes are unsafe), and which ``filter``/``map`` chains
  adjacent to a dataset scan can be fused into the DFS read
  (filter/projection pushdown — dropped lines are counted as
  ``scan_bytes_skipped``, dict fields removed by a projection as
  ``scan_fields_pruned``).

Everything here is *plan-only*: the runner owns execution. The contract,
differential-tested across backends, is that an adaptive plan's action
results are byte-identical to the naive plan's while strictly less data
moves (fewer shuffled bytes on broadcast decisions, fewer scanned bytes
under pushdown, fewer reduce tasks under coalescing).
"""

from __future__ import annotations

import pickle
from collections import defaultdict
from typing import (Any, Callable, Dict, List, Optional, Sequence, Set,
                    Tuple)

from repro.engine.shuffle import stride_sample
from repro.util.errors import EngineError

__all__ = ["AdaptivePlanner", "StatsCollector", "PartitionStats",
           "ReducePlan", "JobPlan", "ScanFusion", "analyze_job",
           "estimate_rows_bytes", "piece_nbytes", "merge_split_outputs",
           "DEFAULT_TARGET_PARTITION_BYTES", "DEFAULT_BROADCAST_CAPACITY",
           "DEFAULT_SKEW_FACTOR", "DEFAULT_SAMPLE_ROWS"]

#: coalesce toward this many serialized bytes per reduce partition
DEFAULT_TARGET_PARTITION_BYTES = 1 << 20
#: ceiling for the observed-size broadcast join decision
DEFAULT_BROADCAST_CAPACITY = 8 << 20
#: a bucket is hot when over ``skew_factor`` x the median bucket size
DEFAULT_SKEW_FACTOR = 4.0
#: rows sampled per partition for serialized-size estimates
DEFAULT_SAMPLE_ROWS = 8


# ------------------------------------------------------------- size sampling
def estimate_rows_bytes(rows: Sequence[Any],
                        sample_rows: int = DEFAULT_SAMPLE_ROWS,
                        ) -> Tuple[Optional[int], int]:
    """Deterministic serialized-size estimate of a row list.

    Fixed-stride sampling (``rows[::stride]``, the same idiom the range
    partitioner uses) keeps the estimate a pure function of the
    partition's content — retries, speculation and backend choice cannot
    change it. Returns ``(estimated_bytes, rows_sampled)``;
    ``(None, 0)`` when the sample will not pickle (such a partition can
    never be broadcast, matching ``payload_bytes`` semantics).
    """
    if not rows:
        return 0, 0
    sample = stride_sample(rows, sample_rows)
    try:
        payload = pickle.dumps(sample, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return None, 0
    est = max(1, int(len(payload) / len(sample) * len(rows)))
    return est, len(sample)


def piece_nbytes(payload: Any,
                 sample_rows: int = DEFAULT_SAMPLE_ROWS) -> int:
    """Serialized size of one exchange payload.

    Sealed blocks (``ShuffleBlock``/``BatchBlock``) carry their exact
    wire size; plain row lists (serial/thread backends without
    compression) fall back to the deterministic sampled estimate.
    """
    if payload is None:
        return 0
    nbytes = getattr(payload, "nbytes", None)
    if nbytes is not None:
        return nbytes
    est, _ = estimate_rows_bytes(payload, sample_rows)
    return est or 0


class PartitionStats:
    """Observed stats of one materialized RDD: exact per-partition row
    counts plus sampled serialized sizes. ``total_bytes`` is ``None``
    when any partition refused to pickle."""

    __slots__ = ("counts", "est_bytes")

    def __init__(self, counts: List[int], est_bytes: List[Optional[int]]):
        self.counts = counts
        self.est_bytes = est_bytes

    @property
    def total_rows(self) -> int:
        return sum(self.counts)

    @property
    def total_bytes(self) -> Optional[int]:
        total = 0
        for b in self.est_bytes:
            if b is None:
                return None
            total += b
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<PartitionStats parts={len(self.counts)} "
                f"rows={self.total_rows} bytes~{self.total_bytes}>")


class StatsCollector:
    """Samples cardinality/size at stage boundaries, exactly once each.

    ``observe`` is keyed (one key per materialized RDD per job) and
    idempotent: the first call samples and counts, every later call for
    the same key — a join re-reading an already-observed side, or any
    future recomputation path — returns the cached stats untouched and
    only bumps the repeat counter. That guard is what keeps supervisor
    recovery (lost executors, speculative attempts) from double-counting
    samples: stats are read from the *deduplicated* driver-side results,
    and even a second driver-side pass cannot re-add them.
    """

    def __init__(self, sample_rows: int = DEFAULT_SAMPLE_ROWS,
                 metrics: Any = None):
        if sample_rows < 1:
            raise EngineError("sample_rows must be >= 1")
        self.sample_rows = sample_rows
        self.metrics = metrics
        self._observed: Dict[str, PartitionStats] = {}

    def observe(self, key: str,
                parts: Sequence[Sequence[Any]]) -> PartitionStats:
        cached = self._observed.get(key)
        if cached is not None:
            if self.metrics is not None:
                self.metrics.stats_repeat_observations += 1
            return cached
        counts: List[int] = []
        est_bytes: List[Optional[int]] = []
        sampled = 0
        for part in parts:
            counts.append(len(part))
            est, n = estimate_rows_bytes(part, self.sample_rows)
            est_bytes.append(est)
            sampled += n
        stats = PartitionStats(counts, est_bytes)
        self._observed[key] = stats
        if self.metrics is not None:
            self.metrics.stats_sampled_partitions += len(counts)
            self.metrics.stats_sampled_rows += sampled
        return stats


# ------------------------------------------------------------- reduce plans
class ReducePlan:
    """How one shuffle's reduce side actually runs.

    ``entries`` covers every bucket in order; each entry is either
    ``("merge", (b0, b1, ...))`` — one reduce task over the adjacent
    buckets' concatenated pieces (a singleton tuple is a plain bucket) —
    or ``("split", b, ((lo, hi), ...))`` — several reduce tasks over
    slices of bucket ``b``'s piece list, merged post-hoc. Entry order
    equals bucket order, so the flattened output stream is unchanged.
    """

    __slots__ = ("entries", "merged_away", "splits", "split_tasks")

    def __init__(self, entries: List[Tuple], merged_away: int,
                 splits: int, split_tasks: int):
        self.entries = entries
        self.merged_away = merged_away
        self.splits = splits
        self.split_tasks = split_tasks


def merge_split_outputs(post: Callable, outputs: List[List[Any]]
                        ) -> List[Any]:
    """Merge the partial outputs of a split bucket back into one.

    ``partial_merge == "post"`` re-applies the post op to the running
    concatenation left-to-right — exactly the fold the map-side combiner
    contract already performs over shipped partials, so the merged
    result is the same bytes the unsplit bucket would have produced.
    ``partial_merge == "group"`` concatenates per-key value lists in
    first-seen key order (groupByKey's documented ordering).
    """
    if len(outputs) == 1:
        return outputs[0]
    mode = getattr(post, "partial_merge", None)
    if mode == "post":
        acc = outputs[0]
        for nxt in outputs[1:]:
            acc = post(acc + nxt)
        return acc
    if mode == "group":
        merged: Dict[Any, List[Any]] = {}
        for out in outputs:
            for k, values in out:
                if k in merged:
                    merged[k].extend(values)
                else:
                    merged[k] = list(values)
        return list(merged.items())
    raise EngineError(
        f"post op {type(post).__name__} declares no partial_merge; "
        "its buckets cannot be split")


# --------------------------------------------------------- lineage analysis
class ScanFusion:
    """One scan → filter/map chain fused into the DFS read."""

    __slots__ = ("scan", "ops", "interior_ids")

    def __init__(self, scan: Any, ops: Tuple[Tuple[str, Callable], ...],
                 interior_ids: Set[int]):
        self.scan = scan
        self.ops = ops
        self.interior_ids = interior_ids


class JobPlan:
    """What :func:`analyze_job` decided for one job's lineage."""

    __slots__ = ("shape_safe", "fusions", "interior")

    def __init__(self, shape_safe: Set[int],
                 fusions: Dict[int, ScanFusion], interior: Set[int]):
        #: rdd_ids whose output partition boundaries may change (with the
        #: declared count preserved via trailing empty partitions)
        self.shape_safe = shape_safe
        #: fused-scan terminal rdd_id -> ScanFusion
        self.fusions = fusions
        #: rdd_ids skipped entirely (scan + interior chain nodes)
        self.interior = interior


def analyze_job(root: Any, has_cache: Callable[[Any], bool]) -> JobPlan:
    """Walk the (cache-pruned) lineage of one action and decide where
    adaptive rewrites are legal.

    *Shape safety.* Coalescing keeps the declared partition count (the
    tail pads with empty partitions) and preserves the flattened element
    order, so a node's output shape may change iff every lineage
    consumer either (a) reshapes independently (shuffle / join children
    stop the propagation), or (b) is an elementwise narrow op whose own
    output is, recursively, shape-safe. Whole-partition ops
    (``mapPartitions`` sees the full list, ``sample`` seeds on its
    length), generic driver computes (``union`` / ``cogroup`` /
    ``zipWithIndex`` index partitions positionally) and any node whose
    partitions are persisted or checkpointed (the stored shape outlives
    this job) pin the naive shape.

    *Scan fusion.* A ``json_dataset``/``json_files`` scan whose sole
    lineage consumer is a chain of ``filter``/``map`` nodes fuses into
    the DFS read; the chain extends while each link has exactly one
    consumer and no persistence request. The terminal node's results are
    identical to the unfused chain (elementwise per-line evaluation), so
    the terminal may be cached or consumed by anything.
    """
    order: List[Any] = []
    nodes: Dict[int, Any] = {}
    children: Dict[int, List[Any]] = defaultdict(list)
    seen: Set[int] = set()

    def visit(node: Any) -> None:
        if node.rdd_id in seen:
            return
        seen.add(node.rdd_id)
        nodes[node.rdd_id] = node
        if not has_cache(node):
            for parent in node.parents:
                children[parent.rdd_id].append(node)
                visit(parent)
        order.append(node)

    visit(root)

    safe_memo: Dict[int, bool] = {}

    def output_shape_safe(node: Any) -> bool:
        cached = safe_memo.get(node.rdd_id)
        if cached is not None:
            return cached
        safe_memo[node.rdd_id] = False  # DAG; guard diamond revisits
        ok = not (node._cache_requested or node._checkpoint_requested)
        if ok:
            for child in children.get(node.rdd_id, ()):
                if child.shuffle is not None or child.join_how is not None:
                    continue
                part_fn = child.part_fn
                if part_fn is not None and getattr(part_fn, "elementwise",
                                                   False):
                    if output_shape_safe(child):
                        continue
                ok = False
                break
        safe_memo[node.rdd_id] = ok
        return ok

    shape_safe = {nid for nid, node in nodes.items()
                  if output_shape_safe(node)}

    fusions: Dict[int, ScanFusion] = {}
    interior: Set[int] = set()
    for node in order:
        info = getattr(node, "scan_info", None)
        if info is None or info.get("kind") != "rows":
            continue
        if (node._cache_requested or node._checkpoint_requested
                or has_cache(node)):
            continue
        chain: List[Tuple[Any, str, Callable]] = []
        cur = node
        while True:
            kids = children.get(cur.rdd_id, ())
            if len(kids) != 1:
                break
            child = kids[0]
            part_fn = child.part_fn
            kind = (getattr(part_fn, "pushdown_kind", None)
                    if part_fn is not None else None)
            if kind is None:
                break
            chain.append((child, kind, part_fn.fn))
            cur = child
            # a persisted terminal is fine (its results are identical);
            # the chain just must not extend past it
            if child._cache_requested or child._checkpoint_requested:
                break
        if not chain:
            continue
        terminal = chain[-1][0]
        ops = tuple((kind, fn) for _child, kind, fn in chain)
        interior_ids = {node.rdd_id}
        interior_ids.update(c.rdd_id for c, _k, _f in chain[:-1])
        fusions[terminal.rdd_id] = ScanFusion(node, ops, interior_ids)
        interior.update(interior_ids)
    return JobPlan(shape_safe, fusions, interior)


# --------------------------------------------------------------- the planner
class AdaptivePlanner:
    """Decision rules for the adaptive engine; pure planning, no I/O.

    All inputs are observed quantities — exact partition/bucket row
    counts, exact sealed-block sizes, deterministic sampled estimates —
    so the same data always yields the same plan on a given backend.
    """

    def __init__(self,
                 target_partition_bytes: int = DEFAULT_TARGET_PARTITION_BYTES,
                 broadcast_capacity: int = DEFAULT_BROADCAST_CAPACITY,
                 skew_factor: float = DEFAULT_SKEW_FACTOR,
                 sample_rows: int = DEFAULT_SAMPLE_ROWS):
        if target_partition_bytes < 1:
            raise EngineError("target_partition_bytes must be >= 1")
        if broadcast_capacity < 0:
            raise EngineError("broadcast_capacity must be >= 0")
        if skew_factor <= 1.0:
            raise EngineError("skew_factor must be > 1")
        self.target_partition_bytes = target_partition_bytes
        self.broadcast_capacity = broadcast_capacity
        self.skew_factor = skew_factor
        self.sample_rows = sample_rows

    # ---------------------------------------------------------- reduce side
    def plan_reduce(self, post: Callable,
                    pieces: List[List[Any]],
                    allow_coalesce: bool = True) -> Optional[ReducePlan]:
        """Plan one shuffle's reduce side from the sealed exchange.

        ``pieces[b]`` is bucket ``b``'s payload per map chunk, already
        materialized driver-side — sizes are exact for sealed blocks and
        deterministically sampled for plain lists. Returns ``None`` when
        the naive one-task-per-bucket plan is already right.
        """
        num_buckets = len(pieces)
        if num_buckets == 0:
            return None
        sizes = [sum(piece_nbytes(p, self.sample_rows) for p in plist)
                 for plist in pieces]
        hot = self._detect_skew(post, pieces, sizes)
        can_coalesce = (allow_coalesce and num_buckets > 1
                        and getattr(post, "concat_safe", False))
        entries: List[Tuple] = []
        merged_away = splits = split_tasks = 0
        target = self.target_partition_bytes
        b = 0
        while b < num_buckets:
            if b in hot:
                chunks = self._split_chunks(pieces[b])
                if len(chunks) >= 2:
                    entries.append(("split", b, tuple(chunks)))
                    splits += 1
                    split_tasks += len(chunks)
                else:
                    entries.append(("merge", (b,)))
                b += 1
                continue
            group = [b]
            acc = sizes[b]
            b += 1
            if can_coalesce:
                while (b < num_buckets and b not in hot
                       and acc + sizes[b] <= target):
                    group.append(b)
                    acc += sizes[b]
                    b += 1
            entries.append(("merge", tuple(group)))
            merged_away += len(group) - 1
        if merged_away == 0 and splits == 0:
            return None
        return ReducePlan(entries, merged_away, splits, split_tasks)

    def _detect_skew(self, post: Callable, pieces: List[List[Any]],
                     sizes: List[int]) -> Set[int]:
        """Hot buckets from the exchange's size histogram.

        A bucket is hot when it exceeds ``skew_factor`` x the median
        non-empty bucket *and* the coalesce target — and splitting it is
        only worth planning when the post op can merge partials and the
        bucket spans more than one map chunk (pieces are the split
        granularity)."""
        if getattr(post, "partial_merge", None) is None:
            return set()
        nonzero = sorted(s for s in sizes if s > 0)
        if len(nonzero) < 2:
            return set()
        median = nonzero[len(nonzero) // 2]
        floor = max(self.skew_factor * median, self.target_partition_bytes)
        return {b for b, size in enumerate(sizes)
                if size > floor
                and sum(1 for p in pieces[b] if piece_nbytes(p) > 0) >= 2}

    def _split_chunks(self, plist: List[Any]) -> List[Tuple[int, int]]:
        """Greedy piece-boundary split of one hot bucket toward the
        target bytes per chunk; chunk order preserves piece order so the
        left-to-right partial merge reproduces the sequential fold."""
        sizes = [piece_nbytes(p, self.sample_rows) for p in plist]
        chunks: List[Tuple[int, int]] = []
        lo = 0
        acc = 0
        for i, size in enumerate(sizes):
            if i > lo and acc + size > self.target_partition_bytes:
                chunks.append((lo, i))
                lo = i
                acc = 0
            acc += size
        chunks.append((lo, len(plist)))
        return chunks

    # ------------------------------------------------------------ join side
    def choose_broadcast(self, left_stats: PartitionStats,
                         right_stats: PartitionStats,
                         how: str) -> Optional[str]:
        """Pick the join side to broadcast from observed sizes.

        Returns ``"left"`` / ``"right"`` / ``None``. The right side is
        always eligible; the left only for inner joins (a left-outer
        join streams unmatched left rows from the probe side). A side
        whose sample refused to pickle (``total_bytes is None``) can
        never cross a broadcast wall. Of the eligible sides under the
        capacity, the smaller observed one wins — broadcasting the
        smaller side shuffles strictly fewer bytes than exchanging both.
        """
        candidates: List[Tuple[int, int, str]] = []
        right_bytes = right_stats.total_bytes
        if right_bytes is not None and right_bytes <= self.broadcast_capacity:
            candidates.append((right_bytes, right_stats.total_rows, "right"))
        if how == "inner":
            left_bytes = left_stats.total_bytes
            if (left_bytes is not None
                    and left_bytes <= self.broadcast_capacity):
                candidates.append((left_bytes, left_stats.total_rows,
                                   "left"))
        if not candidates:
            return None
        candidates.sort()
        return candidates[0][2]
