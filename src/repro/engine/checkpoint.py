"""Reliable checkpointing: truncate lineage by persisting partitions.

Long iterative jobs (the CoDA label-propagation loop, the BFS crawl
frontier) grow a lineage chain one stage per iteration. Recovering a
lost partition by walking that whole chain back to the source gets
linearly more expensive every round — Spark's answer is
``RDD.checkpoint()``, and this module is ours: partitions are pickled
(zlib-compressed) into :class:`~repro.dfs.filesystem.MiniDfs` under a
per-RDD directory, and from then on the job runner treats the
checkpoint as a materialized lineage boundary, exactly like a cache hit
— except it survives cache eviction, context restarts, and process
death, because it lives in the replicated, checksummed DFS.

Crash consistency follows the dataset-writer convention: every part
file goes through ``write_atomic`` (temp + rename commit), and a
``_meta.json`` manifest is committed *last*, again atomically. A
checkpoint without its manifest — or whose manifest disagrees with the
parts on disk — is invisible to :meth:`CheckpointManager.get`, so a
reader can never observe a torn checkpoint: it recomputes from lineage
instead, which is always safe.
"""

from __future__ import annotations

import json
import pickle
import zlib
from typing import Any, List, Optional

#: manifest schema version, bumped on layout changes
_VERSION = 1


class CheckpointManager:
    """Put/get whole RDD materializations in a MiniDfs directory.

    Layout, under ``directory``::

        rdd-<key>/part-00000.pkl.z     # zlib(pickle(partition rows))
        rdd-<key>/part-00001.pkl.z
        rdd-<key>/_meta.json           # committed last: {parts, version}

    Keys are the engine's RDD ids. ``get`` returns ``None`` (never
    raises) for missing, torn, or unreadable checkpoints — the caller
    falls back to lineage.
    """

    def __init__(self, dfs: Any, directory: str = "/engine/checkpoints"):
        self.dfs = dfs
        self.directory = directory.rstrip("/") or "/engine/checkpoints"
        #: checkpoints served / written through this manager (for tests)
        self.hits = 0
        self.writes = 0

    # --------------------------------------------------------------- layout
    def _dir(self, key: int) -> str:
        return f"{self.directory}/rdd-{key}"

    def _part_path(self, key: int, index: int) -> str:
        return f"{self._dir(key)}/part-{index:05d}.pkl.z"

    def _meta_path(self, key: int) -> str:
        return f"{self._dir(key)}/_meta.json"

    # ------------------------------------------------------------------ api
    def put(self, key: int, partitions: List[List[Any]]) -> None:
        """Persist a full materialization; parts first, manifest last."""
        for index, rows in enumerate(partitions):
            payload = zlib.compress(
                pickle.dumps(rows, protocol=pickle.HIGHEST_PROTOCOL))
            self.dfs.write_atomic(self._part_path(key, index), payload)
        manifest = {"parts": len(partitions), "version": _VERSION}
        self.dfs.write_atomic_text(self._meta_path(key),
                                   json.dumps(manifest))
        self.writes += 1

    def get(self, key: int) -> Optional[List[List[Any]]]:
        """Load a checkpoint, or ``None`` if absent/torn/unreadable."""
        manifest = self._manifest(key)
        if manifest is None:
            return None
        partitions: List[List[Any]] = []
        for index in range(manifest["parts"]):
            try:
                payload = self.dfs.read(self._part_path(key, index))
                partitions.append(pickle.loads(zlib.decompress(payload)))
            except Exception:
                return None  # torn/corrupt: recompute from lineage
        self.hits += 1
        return partitions

    def __contains__(self, key: int) -> bool:
        return self._manifest(key) is not None

    def num_partitions(self, key: int) -> Optional[int]:
        manifest = self._manifest(key)
        return None if manifest is None else manifest["parts"]

    def delete(self, key: int) -> None:
        for path in list(self.dfs.listdir(self._dir(key) + "/")):
            self.dfs.delete(path)

    # ------------------------------------------------------------- internal
    def _manifest(self, key: int) -> Optional[dict]:
        path = self._meta_path(key)
        if not self.dfs.exists(path):
            return None
        try:
            manifest = json.loads(self.dfs.read_text(path))
        except Exception:
            return None
        if manifest.get("version") != _VERSION:
            return None
        parts = manifest.get("parts")
        if not isinstance(parts, int) or parts < 0:
            return None
        return manifest
