"""Lazy RDD lineage and the job runner.

Every transformation returns a new :class:`RDD` node holding a reference
to its parent(s) and a description of the work; nothing executes until an
action. The :class:`JobRunner` walks the lineage, computes each distinct
RDD's partitions once per job (memoized), hands partition tasks to the
context's :class:`~repro.engine.backends.ExecutionBackend`, and performs
hash shuffles for wide dependencies — the same split Spark draws between
narrow and wide transformations.

Two node shapes are structured so their tasks can cross a process
boundary (see ``backends.ProcessBackend``):

* narrow nodes carry a picklable *partition operator* (``part_fn``)
  applied to the parent's partition of the same index;
* wide nodes carry a :class:`ShuffleSpec` — a picklable bucket function
  for the map-side exchange and a picklable *post* operator for the
  reduce side.

Everything else (``parallelize`` slices, ``union``, ``cogroup``,
``sortBy``, ``zipWithIndex``) keeps a generic driver-side compute
closure; those stages run in-process on any backend.
"""

from __future__ import annotations

import itertools
import pickle
import threading
import time
import zlib
from collections import defaultdict
from typing import (Any, Callable, Dict, Generic, Iterable, List, Optional,
                    Tuple, TypeVar)

from repro.engine.metrics import (STAGE_CACHED, STAGE_NARROW, STAGE_SHUFFLE,
                                  STAGE_TASK, JobMetrics, StageMetrics)
from repro.util.errors import EngineError

T = TypeVar("T")
U = TypeVar("U")
K = TypeVar("K")
V = TypeVar("V")

_rdd_ids = itertools.count()


# --------------------------------------------------------------------- hashing
def _canonical_bytes(key: Any) -> bytes:
    """Deterministic, type-tagged encoding: equal keys → equal bytes.

    Builtin ``hash`` is salted per interpreter for strings
    (``PYTHONHASHSEED``), which would make shuffle placement differ
    between runs — and between the driver and a process-pool worker.
    Numeric cross-type equality (``1 == 1.0 == True``) is normalized so
    equal keys always land in the same bucket.
    """
    if key is None:
        return b"N"
    if isinstance(key, bool):
        key = int(key)
    if isinstance(key, float) and key.is_integer() and abs(key) < 2 ** 63:
        key = int(key)
    if isinstance(key, int):
        return b"i" + str(key).encode("ascii")
    if isinstance(key, float):
        return b"f" + repr(key).encode("ascii")
    if isinstance(key, str):
        return b"s" + key.encode("utf-8", "surrogatepass")
    if isinstance(key, bytes):
        return b"b" + key
    if isinstance(key, tuple):
        parts = [_canonical_bytes(item) for item in key]
        return b"t" + b"".join(
            str(len(p)).encode("ascii") + b":" + p for p in parts)
    if isinstance(key, frozenset):
        total = sum(zlib.crc32(_canonical_bytes(item))
                    for item in key) & 0xFFFFFFFF
        return b"z" + str(total).encode("ascii")
    # last resort: types with a deterministic repr (dataclasses, enums)
    return b"r" + repr(key).encode("utf-8", "surrogatepass")


def _stable_hash(key: Any) -> int:
    return zlib.crc32(_canonical_bytes(key))


def _hash_partition(key: Any, num_partitions: int) -> int:
    return _stable_hash(key) % num_partitions


# ----------------------------------------------------------- partition operators
# Callable objects instead of closures so narrow/shuffle tasks pickle to a
# process pool whenever the *user's* function does.

class _MapOp:
    __slots__ = ("fn",)

    def __init__(self, fn):
        self.fn = fn

    def __call__(self, part):
        fn = self.fn
        return [fn(x) for x in part]


class _FilterOp:
    __slots__ = ("fn",)

    def __init__(self, fn):
        self.fn = fn

    def __call__(self, part):
        fn = self.fn
        return [x for x in part if fn(x)]


class _FlatMapOp:
    __slots__ = ("fn",)

    def __init__(self, fn):
        self.fn = fn

    def __call__(self, part):
        fn = self.fn
        return [y for x in part for y in fn(x)]


class _MapPartitionsOp:
    __slots__ = ("fn",)

    def __init__(self, fn):
        self.fn = fn

    def __call__(self, part):
        return list(self.fn(part))


class _KeyByOp:
    __slots__ = ("fn",)

    def __init__(self, fn):
        self.fn = fn

    def __call__(self, part):
        fn = self.fn
        return [(fn(x), x) for x in part]


class _MapValuesOp:
    __slots__ = ("fn",)

    def __init__(self, fn):
        self.fn = fn

    def __call__(self, part):
        fn = self.fn
        return [(k, fn(v)) for k, v in part]


class _FlatMapValuesOp:
    __slots__ = ("fn",)

    def __init__(self, fn):
        self.fn = fn

    def __call__(self, part):
        fn = self.fn
        return [(k, u) for k, v in part for u in fn(v)]


class _SampleOp:
    __slots__ = ("fraction", "seed")

    def __init__(self, fraction, seed):
        self.fraction = fraction
        self.seed = seed

    def __call__(self, part):
        import random
        rng = random.Random(self.seed * 1_000_003 + len(part))
        fraction = self.fraction
        return [x for x in part if rng.random() < fraction]


# ------------------------------------------------------------ shuffle operators
def _pair_key(item):
    return item[0]


def _identity(item):
    return item


class _BucketOp:
    """Map side of a shuffle: split one partition into bucket lists.

    Receives ``(global_offset, items)`` so a ``bucket_fn`` of ``None``
    can round-robin by global element position (repartition) without
    shared mutable state — keeping the exchange deterministic and
    parallelizable chunk by chunk.
    """

    __slots__ = ("bucket_fn", "num_buckets")

    def __init__(self, bucket_fn, num_buckets):
        self.bucket_fn = bucket_fn
        self.num_buckets = num_buckets

    def __call__(self, chunk):
        offset, items = chunk
        n = self.num_buckets
        buckets: List[List[Any]] = [[] for _ in range(n)]
        fn = self.bucket_fn
        if fn is None:
            for i, item in enumerate(items):
                buckets[(offset + i) % n].append(item)
        else:
            for item in items:
                buckets[_hash_partition(fn(item), n)].append(item)
        return buckets


class _GatherOp:
    __slots__ = ()

    def __call__(self, bucket):
        return bucket


class _DistinctOp:
    __slots__ = ()

    def __call__(self, bucket):
        seen = set()
        out = []
        for x in bucket:
            if x not in seen:
                seen.add(x)
                out.append(x)
        return out


class _GroupByKeyOp:
    __slots__ = ()

    def __call__(self, bucket):
        grouped: Dict[Any, List[Any]] = defaultdict(list)
        for k, v in bucket:
            grouped[k].append(v)
        return list(grouped.items())


class _ReduceByKeyOp:
    __slots__ = ("fn",)

    def __init__(self, fn):
        self.fn = fn

    def __call__(self, bucket):
        fn = self.fn
        acc: Dict[Any, Any] = {}
        for k, v in bucket:
            acc[k] = fn(acc[k], v) if k in acc else v
        return list(acc.items())


class _AggregateByKeyOp:
    __slots__ = ("zero", "seq", "comb")

    def __init__(self, zero, seq, comb):
        self.zero = zero
        self.seq = seq
        self.comb = comb

    def __call__(self, bucket):
        import copy
        seq = self.seq
        acc: Dict[Any, Any] = {}
        for k, v in bucket:
            if k not in acc:
                acc[k] = copy.deepcopy(self.zero)
            acc[k] = seq(acc[k], v)
        return list(acc.items())


class ShuffleSpec:
    """One wide dependency: map-side bucketing + reduce-side post op.

    ``bucket_fn`` of ``None`` means round-robin by global position.
    """

    __slots__ = ("bucket_fn", "post")

    def __init__(self, bucket_fn, post):
        self.bucket_fn = bucket_fn
        self.post = post


class RDD(Generic[T]):
    """A lazily evaluated, partitioned collection with Spark semantics."""

    def __init__(self, context, num_partitions: int,
                 parents: Tuple["RDD", ...] = (),
                 compute: Optional[Callable] = None,
                 wide: bool = False,
                 name: str = "rdd",
                 part_fn: Optional[Callable] = None,
                 shuffle: Optional[ShuffleSpec] = None):
        if num_partitions < 1:
            raise EngineError("an RDD needs at least one partition")
        self.context = context
        self.rdd_id = next(_rdd_ids)
        self.num_partitions = num_partitions
        self.parents = parents
        self._compute = compute
        self.part_fn = part_fn
        self.shuffle = shuffle
        self.wide = wide or shuffle is not None
        self.name = name
        self._cached: Optional[List[List[T]]] = None
        self._cache_requested = False

    # ------------------------------------------------------------------ misc
    def __repr__(self) -> str:
        return f"<RDD {self.rdd_id} {self.name} p={self.num_partitions}>"

    def cache(self) -> "RDD[T]":
        """Keep computed partitions for reuse by later jobs."""
        self._cache_requested = True
        return self

    def unpersist(self) -> "RDD[T]":
        self._cached = None
        self._cache_requested = False
        return self

    # -------------------------------------------------------- narrow transforms
    def _narrow(self, op: Callable[[List[T]], List[U]], name: str) -> "RDD[U]":
        return RDD(self.context, self.num_partitions, (self,),
                   part_fn=op, name=name)

    def map(self, fn: Callable[[T], U]) -> "RDD[U]":
        return self._narrow(_MapOp(fn), "map")

    def filter(self, predicate: Callable[[T], bool]) -> "RDD[T]":
        return self._narrow(_FilterOp(predicate), "filter")

    def flat_map(self, fn: Callable[[T], Iterable[U]]) -> "RDD[U]":
        return self._narrow(_FlatMapOp(fn), "flatMap")

    def map_partitions(self, fn: Callable[[List[T]], Iterable[U]]) -> "RDD[U]":
        return self._narrow(_MapPartitionsOp(fn), "mapPartitions")

    def key_by(self, fn: Callable[[T], K]) -> "RDD[Tuple[K, T]]":
        return self._narrow(_KeyByOp(fn), "keyBy")

    def map_values(self, fn: Callable[[V], U]) -> "RDD[Tuple[K, U]]":
        return self._narrow(_MapValuesOp(fn), "mapValues")

    def flat_map_values(self, fn: Callable[[V], Iterable[U]]) -> "RDD":
        return self._narrow(_FlatMapValuesOp(fn), "flatMapValues")

    def union(self, other: "RDD[T]") -> "RDD[T]":
        if other.context is not self.context:
            raise EngineError("cannot union RDDs from different contexts")
        left_parts = self.num_partitions

        def compute(runner: "JobRunner", index: int) -> List[T]:
            if index < left_parts:
                return runner.partition(self, index)
            return runner.partition(other, index - left_parts)
        return RDD(self.context, left_parts + other.num_partitions,
                   (self, other), compute, name="union")

    def sample(self, fraction: float, seed: int = 0) -> "RDD[T]":
        if not 0.0 <= fraction <= 1.0:
            raise EngineError(f"fraction must be in [0, 1], got {fraction}")
        return self._narrow(_SampleOp(fraction, seed), "sample")

    # ---------------------------------------------------------- wide transforms
    def _shuffle(self, num_partitions: Optional[int],
                 bucket_fn: Optional[Callable[[T], Any]],
                 post: Callable[[List[T]], List[U]],
                 name: str) -> "RDD[U]":
        parts = num_partitions or self.num_partitions
        return RDD(self.context, parts, (self,),
                   shuffle=ShuffleSpec(bucket_fn, post), name=name)

    def repartition(self, num_partitions: int) -> "RDD[T]":
        return self._shuffle(num_partitions, None, _GatherOp(), "repartition")

    def distinct(self, num_partitions: Optional[int] = None) -> "RDD[T]":
        return self._shuffle(num_partitions, _identity, _DistinctOp(),
                             "distinct")

    def group_by_key(self, num_partitions: Optional[int] = None) -> "RDD":
        return self._shuffle(num_partitions, _pair_key, _GroupByKeyOp(),
                             "groupByKey")

    def reduce_by_key(self, fn: Callable[[V, V], V],
                      num_partitions: Optional[int] = None) -> "RDD":
        return self._shuffle(num_partitions, _pair_key, _ReduceByKeyOp(fn),
                             "reduceByKey")

    def aggregate_by_key(self, zero: U, seq: Callable[[U, V], U],
                         comb: Callable[[U, U], U],
                         num_partitions: Optional[int] = None) -> "RDD":
        return self._shuffle(num_partitions, _pair_key,
                             _AggregateByKeyOp(zero, seq, comb),
                             "aggregateByKey")

    def cogroup(self, other: "RDD", num_partitions: Optional[int] = None) -> "RDD":
        parts = num_partitions or max(self.num_partitions,
                                      other.num_partitions)

        def compute(runner: "JobRunner", index: int):
            left = runner.shuffle(self, parts, _pair_key, spec="pair")[index]
            right = runner.shuffle(other, parts, _pair_key, spec="pair")[index]
            grouped: Dict[Any, Tuple[List, List]] = defaultdict(
                lambda: ([], []))
            for k, v in left:
                grouped[k][0].append(v)
            for k, v in right:
                grouped[k][1].append(v)
            return list(grouped.items())
        return RDD(self.context, parts, (self, other), compute, wide=True,
                   name="cogroup")

    def join(self, other: "RDD", num_partitions: Optional[int] = None) -> "RDD":
        def emit(item):
            key, (lefts, rights) = item
            return [(key, (lv, rv)) for lv in lefts for rv in rights]
        return self.cogroup(other, num_partitions).flat_map(emit)

    def left_outer_join(self, other: "RDD",
                        num_partitions: Optional[int] = None) -> "RDD":
        def emit(item):
            key, (lefts, rights) = item
            if not rights:
                return [(key, (lv, None)) for lv in lefts]
            return [(key, (lv, rv)) for lv in lefts for rv in rights]
        return self.cogroup(other, num_partitions).flat_map(emit)

    def sort_by(self, key_fn: Callable[[T], Any],
                ascending: bool = True) -> "RDD[T]":
        """Total sort into a single partition (fine at simulator scale)."""
        def compute(runner: "JobRunner", index: int) -> List[T]:
            everything = [x for p in runner.all_partitions(self) for x in p]
            return sorted(everything, key=key_fn, reverse=not ascending)
        return RDD(self.context, 1, (self,), compute, wide=True,
                   name="sortBy")

    # ----------------------------------------------------------------- actions
    def collect(self) -> List[T]:
        return self.context._run_job(self)

    def count(self) -> int:
        return len(self.collect())

    def take(self, n: int) -> List[T]:
        return self.collect()[:n]

    def first(self) -> T:
        result = self.take(1)
        if not result:
            raise EngineError("first() on an empty RDD")
        return result[0]

    def reduce(self, fn: Callable[[T, T], T]) -> T:
        data = self.collect()
        if not data:
            raise EngineError("reduce() on an empty RDD")
        acc = data[0]
        for x in data[1:]:
            acc = fn(acc, x)
        return acc

    def sum(self) -> float:
        return sum(self.collect())

    def mean(self) -> float:
        data = self.collect()
        if not data:
            raise EngineError("mean() on an empty RDD")
        return sum(data) / len(data)

    def top(self, n: int, key: Optional[Callable[[T], Any]] = None) -> List[T]:
        return sorted(self.collect(), key=key, reverse=True)[:n]

    def take_ordered(self, n: int,
                     key: Optional[Callable[[T], Any]] = None) -> List[T]:
        """The n smallest elements in sorted order (Spark's takeOrdered)."""
        import heapq
        if key is None:
            return heapq.nsmallest(n, self.collect())
        return heapq.nsmallest(n, self.collect(), key=key)

    def zip_with_index(self) -> "RDD[Tuple[T, int]]":
        """Pair each element with its global position (stable order)."""
        def compute(runner: "JobRunner", index: int) -> List[Tuple[T, int]]:
            parts = runner.all_partitions(self)
            offset = sum(len(p) for p in parts[:index])
            return [(x, offset + i) for i, x in enumerate(parts[index])]
        return RDD(self.context, self.num_partitions, (self,), compute,
                   name="zipWithIndex")

    def stats(self) -> Dict[str, float]:
        """count / mean / stdev / min / max of a numeric RDD, one pass."""
        def partial(part: List[T]) -> List[Tuple[int, float, float,
                                                 float, float]]:
            if not part:
                return []
            values = [float(x) for x in part]
            return [(len(values), sum(values),
                     sum(v * v for v in values),
                     min(values), max(values))]
        pieces = self.map_partitions(partial).collect()
        if not pieces:
            return {"count": 0, "mean": 0.0, "stdev": 0.0,
                    "min": 0.0, "max": 0.0}
        count = sum(p[0] for p in pieces)
        total = sum(p[1] for p in pieces)
        total_sq = sum(p[2] for p in pieces)
        mean = total / count
        variance = max(0.0, total_sq / count - mean * mean)
        return {"count": count, "mean": mean,
                "stdev": variance ** 0.5,
                "min": min(p[3] for p in pieces),
                "max": max(p[4] for p in pieces)}

    def histogram(self, num_buckets: int) -> Tuple[List[float], List[int]]:
        """Evenly spaced histogram over the RDD's numeric range."""
        if num_buckets < 1:
            raise EngineError("num_buckets must be >= 1")
        values = [float(x) for x in self.collect()]
        if not values:
            return [], []
        lo, hi = min(values), max(values)
        if hi == lo:
            return [lo, hi], [len(values)]
        width = (hi - lo) / num_buckets
        edges = [lo + i * width for i in range(num_buckets + 1)]
        counts = [0] * num_buckets
        for v in values:
            bucket = min(num_buckets - 1, int((v - lo) / width))
            counts[bucket] += 1
        return edges, counts

    def count_by_value(self) -> Dict[T, int]:
        counts: Dict[T, int] = defaultdict(int)
        for x in self.collect():
            counts[x] += 1
        return dict(counts)

    def count_by_key(self) -> Dict[Any, int]:
        counts: Dict[Any, int] = defaultdict(int)
        for k, _v in self.collect():
            counts[k] += 1
        return dict(counts)

    def collect_as_map(self) -> Dict[Any, Any]:
        return dict(self.collect())

    def save_as_json_dataset(self, dfs, directory: str) -> int:
        """Write each partition as one part file on the DFS."""
        import json
        partitions = self.context._run_job_partitions(self)
        for index, part in enumerate(partitions):
            lines = [json.dumps(rec, separators=(",", ":"), sort_keys=True)
                     for rec in part]
            dfs.write_atomic_text(
                f"{directory.rstrip('/')}/part-{index:05d}.jsonl",
                "\n".join(lines) + ("\n" if lines else ""))
        return sum(len(p) for p in partitions)


class JobRunner:
    """Evaluates one action: memoizes partitions and shuffles per job.

    Lineage is materialized bottom-up (topological order) from the driver
    thread, so partition tasks running on a backend only ever *read*
    their parents' already-computed results — nested pool submission (a
    classic pool deadlock) can't happen, and process-pool tasks receive
    their input data explicitly rather than through shared state.
    """

    def __init__(self, context):
        self.context = context
        self._partitions: Dict[int, List[List[Any]]] = {}
        self._shuffles: Dict[Tuple[int, int, str], List[List[Any]]] = {}
        self._shuffle_lock = threading.Lock()
        #: instrumentation for the job that just ran (see JobMetrics)
        self.metrics = JobMetrics(backend=context.backend.name)

    def _lineage(self, rdd: RDD) -> List[RDD]:
        """Ancestors-first topological order of the lineage DAG."""
        order: List[RDD] = []
        seen = set()

        def visit(node: RDD) -> None:
            if node.rdd_id in seen:
                return
            seen.add(node.rdd_id)
            for parent in node.parents:
                visit(parent)
            order.append(node)
        visit(rdd)
        return order

    def _record_cached(self, rdd: RDD) -> None:
        self.metrics.record_stage(StageMetrics(
            stage_id=self.metrics.next_stage_id(), rdd_id=rdd.rdd_id,
            name=rdd.name, kind=STAGE_CACHED,
            partitions=rdd.num_partitions, cache_hit=True))

    def all_partitions(self, rdd: RDD) -> List[List[Any]]:
        if rdd._cached is not None:
            if rdd.rdd_id not in self._partitions:
                self._partitions[rdd.rdd_id] = rdd._cached
                self._record_cached(rdd)
            return rdd._cached
        if rdd.rdd_id not in self._partitions:
            for node in self._lineage(rdd):
                self._materialize(node)
        return self._partitions[rdd.rdd_id]

    def _materialize(self, rdd: RDD) -> None:
        if rdd._cached is not None:
            if rdd.rdd_id not in self._partitions:
                self._partitions[rdd.rdd_id] = rdd._cached
                self._record_cached(rdd)
            return
        if rdd.rdd_id in self._partitions:
            return
        backend = self.context.backend
        start = time.perf_counter()
        fallback = False
        shuffle_records = 0
        shuffle_bytes = 0
        attempts = 0
        retried = 0
        if rdd.part_fn is not None:
            inputs = self.all_partitions(rdd.parents[0])
            run = backend.run(rdd.part_fn, inputs)
            results, fallback = run.results, run.fell_back
            attempts, retried = run.attempts, run.retried
            kind = STAGE_NARROW
        elif rdd.shuffle is not None:
            buckets, shuffle_records, shuffle_bytes, exchange = \
                self._exchange(rdd)
            post = backend.run(rdd.shuffle.post, buckets)
            results = post.results
            fallback = exchange.fell_back or post.fell_back
            attempts = exchange.attempts + post.attempts
            retried = exchange.retried + post.retried
            kind = STAGE_SHUFFLE
            self.metrics.record_shuffle(shuffle_records, shuffle_bytes)
        else:
            compute = rdd._compute
            if compute is None:
                raise EngineError(f"RDD {rdd!r} has no compute function")
            # closures read runner state: always in-process
            before_rec = self.metrics.shuffle_records
            before_bytes = self.metrics.shuffle_bytes
            results = backend.run_local(
                lambda i: compute(self, i), rdd.num_partitions)
            kind = STAGE_TASK
            # attribute driver-side shuffles (cogroup) to this stage
            shuffle_records = self.metrics.shuffle_records - before_rec
            shuffle_bytes = self.metrics.shuffle_bytes - before_bytes
        self._partitions[rdd.rdd_id] = results
        if rdd._cache_requested:
            rdd._cached = results
        self.metrics.record_stage(StageMetrics(
            stage_id=self.metrics.next_stage_id(), rdd_id=rdd.rdd_id,
            name=rdd.name, kind=kind, partitions=rdd.num_partitions,
            records_out=sum(len(p) for p in results),
            shuffle_records=shuffle_records, shuffle_bytes=shuffle_bytes,
            wall_s=time.perf_counter() - start, fallback=fallback,
            attempts=attempts, retried=retried))

    def partition(self, rdd: RDD, index: int) -> List[Any]:
        return self.all_partitions(rdd)[index]

    # ---------------------------------------------------------------- shuffles
    def _exchange(self, rdd: RDD) -> Tuple[List[List[Any]], int, int, "Any"]:
        """Chunked map-side exchange for a structured wide node.

        Each parent partition is bucketed independently (a picklable
        task, so it can run on the process pool) and the driver merges
        the chunks in partition order — deterministic on every backend.
        Returns the backend's :class:`RunResult` so the caller can roll
        fallbacks and task attempts into the stage metrics.
        """
        parent = rdd.parents[0]
        parts = self.all_partitions(parent)
        num_buckets = rdd.num_partitions
        offsets = []
        offset = 0
        for part in parts:
            offsets.append(offset)
            offset += len(part)
        op = _BucketOp(rdd.shuffle.bucket_fn, num_buckets)
        run = self.context.backend.run(op, list(zip(offsets, parts)))
        buckets: List[List[Any]] = [[] for _ in range(num_buckets)]
        moved = 0
        for chunk_buckets in run.results:
            for b, items in enumerate(chunk_buckets):
                buckets[b].extend(items)
                moved += len(items)
        return buckets, moved, _payload_bytes(buckets), run

    def shuffle(self, rdd: RDD, num_buckets: int,
                bucket_fn: Callable[[Any], Any],
                spec: str = "key") -> List[List[Any]]:
        """Driver-side shuffle memo for generic wide computes (cogroup).

        ``spec`` names the bucketing scheme so two different wide
        children of the same parent never collide in the memo.
        """
        key = (rdd.rdd_id, num_buckets, spec)
        with self._shuffle_lock:
            if key not in self._shuffles:
                buckets: List[List[Any]] = [[] for _ in range(num_buckets)]
                moved = 0
                for part in self.all_partitions(rdd):
                    for item in part:
                        buckets[_hash_partition(bucket_fn(item),
                                                num_buckets)].append(item)
                        moved += 1
                self._shuffles[key] = buckets
                self.metrics.record_shuffle(moved, _payload_bytes(buckets))
        return self._shuffles[key]


def _payload_bytes(buckets: List[List[Any]]) -> int:
    """Pickled size of a shuffle payload — what 'bytes moved' means for
    a process pool; 0 when the payload isn't picklable."""
    try:
        return len(pickle.dumps(buckets, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 0
