"""Lazy RDD lineage and the job runner.

Every transformation returns a new :class:`RDD` node holding a reference
to its parent(s) and a description of the work; nothing executes until an
action. The :class:`JobRunner` walks the lineage, computes each distinct
RDD's partitions once per job (memoized), hands partition tasks to the
context's :class:`~repro.engine.backends.ExecutionBackend`, and performs
hash shuffles for wide dependencies — the same split Spark draws between
narrow and wide transformations.

Two node shapes are structured so their tasks can cross a process
boundary (see ``backends.ProcessBackend``):

* narrow nodes carry a picklable *partition operator* (``part_fn``)
  applied to the parent's partition of the same index;
* wide nodes carry a :class:`ShuffleSpec` — a picklable bucket function
  for the map-side exchange and a picklable *post* operator for the
  reduce side.

Everything else (``parallelize`` slices, ``union``, ``cogroup``,
``sortBy``, ``zipWithIndex``) keeps a generic driver-side compute
closure; those stages run in-process on any backend.
"""

from __future__ import annotations

import itertools
import operator
import threading
import time
from collections import defaultdict
from typing import (Any, Callable, Dict, Generic, Iterable, List, Optional,
                    Tuple, TypeVar)

from repro.engine.metrics import (STAGE_CACHED, STAGE_CHECKPOINT,
                                  STAGE_NARROW, STAGE_SHUFFLE, STAGE_TASK,
                                  JobMetrics, StageMetrics)
# the canonical key hashing lives in shuffle.py now; re-exported here
# unchanged because CRC32 bucket placement is pinned by regression tests
# that import these names from this module.
from repro.engine.columnar import BatchBlock
from repro.engine.planner import (StatsCollector, analyze_job,
                                  merge_split_outputs)
from repro.engine.shuffle import (BroadcastHashJoinOp, CogroupJoinTask,
                                  HashPartitioner, MapShuffleTask,
                                  ReduceShuffleTask, ShuffleBlock,
                                  _canonical_bytes, _hash_partition,
                                  _stable_hash, payload_bytes,
                                  plan_range_partitioner)
from repro.util.errors import EngineError

__all__ = ["RDD", "JobRunner", "ShuffleSpec",
           "_canonical_bytes", "_stable_hash", "_hash_partition"]

T = TypeVar("T")
U = TypeVar("U")
K = TypeVar("K")
V = TypeVar("V")

_rdd_ids = itertools.count()


# ----------------------------------------------------------- partition operators
# Callable objects instead of closures so narrow/shuffle tasks pickle to a
# process pool whenever the *user's* function does. ``elementwise`` marks
# ops whose output for a partition is the concatenation of their outputs
# for any split of it — the columnar engine may legally run those
# batch-at-a-time. Whole-partition ops (mapPartitions sees the full
# list; sample seeds its RNG with the partition length) must not be
# batched or their results would change.

class _MapOp:
    __slots__ = ("fn",)
    elementwise = True
    pushdown_kind = "map"    # fusable into an adjacent dataset scan

    def __init__(self, fn):
        self.fn = fn

    def __call__(self, part):
        fn = self.fn
        return [fn(x) for x in part]


class _FilterOp:
    __slots__ = ("fn",)
    elementwise = True
    pushdown_kind = "filter"  # fusable into an adjacent dataset scan

    def __init__(self, fn):
        self.fn = fn

    def __call__(self, part):
        fn = self.fn
        return [x for x in part if fn(x)]


class _FlatMapOp:
    __slots__ = ("fn",)
    elementwise = True

    def __init__(self, fn):
        self.fn = fn

    def __call__(self, part):
        fn = self.fn
        return [y for x in part for y in fn(x)]


class _MapPartitionsOp:
    __slots__ = ("fn",)
    elementwise = False

    def __init__(self, fn):
        self.fn = fn

    def __call__(self, part):
        return list(self.fn(part))


class _KeyByOp:
    __slots__ = ("fn",)
    elementwise = True

    def __init__(self, fn):
        self.fn = fn

    def __call__(self, part):
        fn = self.fn
        return [(fn(x), x) for x in part]


class _MapValuesOp:
    __slots__ = ("fn",)
    elementwise = True

    def __init__(self, fn):
        self.fn = fn

    def __call__(self, part):
        fn = self.fn
        return [(k, fn(v)) for k, v in part]


class _FlatMapValuesOp:
    __slots__ = ("fn",)
    elementwise = True

    def __init__(self, fn):
        self.fn = fn

    def __call__(self, part):
        fn = self.fn
        return [(k, u) for k, v in part for u in fn(v)]


class _BatchedOp:
    """Run an elementwise partition op in ``batch_rows`` slices.

    The columnar engine's narrow-stage wrapper: output order matches
    the unbatched op exactly (slices concatenate in order), memory per
    call is bounded by the batch size instead of the partition size.
    """

    __slots__ = ("op", "batch_rows")
    elementwise = True

    def __init__(self, op, batch_rows):
        self.op = op
        self.batch_rows = batch_rows

    def __call__(self, part):
        size = self.batch_rows
        if len(part) <= size:
            return self.op(part)
        op = self.op
        out = []
        for start in range(0, len(part), size):
            out.extend(op(part[start:start + size]))
        return out


class _SampleOp:
    __slots__ = ("fraction", "seed")
    elementwise = False

    def __init__(self, fraction, seed):
        self.fraction = fraction
        self.seed = seed

    def __call__(self, part):
        import random
        rng = random.Random(self.seed * 1_000_003 + len(part))
        fraction = self.fraction
        return [x for x in part if rng.random() < fraction]


# ------------------------------------------------------------ shuffle operators
# Two adaptive-planner contracts, declared per post op (planner.py reads
# them as duck attributes, never by type, so user-supplied post ops stay
# conservatively naive):
#
# ``concat_safe`` — post(bucket_a + bucket_b) == post(bucket_a) +
# post(bucket_b) whenever a and b hold disjoint key sets (hash/range
# buckets always do) or, for positional buckets (gather/sort), whenever
# a's elements all order before b's. This is what lets the planner merge
# *adjacent* undersized buckets and still emit identical bytes.
#
# ``partial_merge`` — how partial outputs of one bucket's split chunks
# merge back: "post" re-applies the op to the concatenated partials
# (the map-side combiner contract: _ReduceByKeyOp folds fn over partial
# values, _DistinctOp re-dedups), "group" concatenates per-key value
# lists in first-seen order. Ops without it (raw _AggregateByKeyOp /
# _CountPairsOp would double-apply seq / count partials as pairs;
# _SortOp buckets are already balanced by range sampling) never split.
def _pair_key(item):
    return item[0]


def _identity(item):
    return item


class _GatherOp:
    __slots__ = ()
    concat_safe = True

    def __call__(self, bucket):
        return bucket


class _DistinctOp:
    __slots__ = ()
    concat_safe = True
    partial_merge = "post"

    def __call__(self, bucket):
        seen = set()
        out = []
        for x in bucket:
            if x not in seen:
                seen.add(x)
                out.append(x)
        return out


class _GroupByKeyOp:
    __slots__ = ()
    concat_safe = True
    partial_merge = "group"

    def __call__(self, bucket):
        grouped: Dict[Any, List[Any]] = defaultdict(list)
        for k, v in bucket:
            grouped[k].append(v)
        return list(grouped.items())


class _ReduceByKeyOp:
    __slots__ = ("fn",)
    concat_safe = True
    partial_merge = "post"

    def __init__(self, fn):
        self.fn = fn

    def __call__(self, bucket):
        fn = self.fn
        acc: Dict[Any, Any] = {}
        for k, v in bucket:
            acc[k] = fn(acc[k], v) if k in acc else v
        return list(acc.items())


class _AggregateByKeyOp:
    __slots__ = ("zero", "seq", "comb")
    concat_safe = True

    def __init__(self, zero, seq, comb):
        self.zero = zero
        self.seq = seq
        self.comb = comb

    def __call__(self, bucket):
        import copy
        seq = self.seq
        acc: Dict[Any, Any] = {}
        for k, v in bucket:
            if k not in acc:
                acc[k] = copy.deepcopy(self.zero)
            acc[k] = seq(acc[k], v)
        return list(acc.items())


class _CountPairsOp:
    """Collapse ``(k, v)`` pairs to ``(k, count)`` in first-seen order."""

    __slots__ = ()
    concat_safe = True

    def __call__(self, bucket):
        counts: Dict[Any, int] = {}
        for k, _v in bucket:
            counts[k] = counts.get(k, 0) + 1
        return list(counts.items())


class _SortOp:
    """Reduce side of a range sort: order one bucket (stable).

    ``concat_safe``: adjacent range buckets hold adjacent key ranges
    (equal keys always land in one bucket), so sorting the concatenation
    of adjacent buckets emits the per-bucket sorts back to back with the
    same stable tie order."""

    __slots__ = ("key_fn", "ascending")
    concat_safe = True

    def __init__(self, key_fn, ascending):
        self.key_fn = key_fn
        self.ascending = ascending

    def __call__(self, bucket):
        return sorted(bucket, key=self.key_fn, reverse=not self.ascending)


class _RangePlan:
    """Deferred range-partitioner factory for ``sort_by``.

    Cut points depend on the parent's *data*, so the partitioner can
    only be planned once the parent is materialized; the runner calls
    this with the parent's partitions at exchange time.
    """

    __slots__ = ("key_fn", "ascending")

    def __init__(self, key_fn, ascending):
        self.key_fn = key_fn
        self.ascending = ascending

    def __call__(self, parts, num_buckets):
        return plan_range_partitioner(parts, num_buckets, self.key_fn,
                                      ascending=self.ascending)


class ShuffleSpec:
    """One wide dependency: map-side bucketing + reduce-side post op.

    ``bucket_fn`` of ``None`` means round-robin by global position
    unless a ``plan`` is set, in which case the runner derives a data-
    dependent partitioner (range sort) from the materialized parent.
    ``combiner`` — when present — pre-aggregates each map task's bucket
    before anything is shipped; ``post`` must then merge the partial
    aggregates (the classic Spark combiner contract).
    """

    __slots__ = ("bucket_fn", "post", "combiner", "plan")

    def __init__(self, bucket_fn, post, combiner=None, plan=None):
        self.bucket_fn = bucket_fn
        self.post = post
        self.combiner = combiner
        self.plan = plan


class RDD(Generic[T]):
    """A lazily evaluated, partitioned collection with Spark semantics."""

    def __init__(self, context, num_partitions: int,
                 parents: Tuple["RDD", ...] = (),
                 compute: Optional[Callable] = None,
                 wide: bool = False,
                 name: str = "rdd",
                 part_fn: Optional[Callable] = None,
                 shuffle: Optional[ShuffleSpec] = None,
                 join_how: Optional[str] = None):
        if num_partitions < 1:
            raise EngineError("an RDD needs at least one partition")
        self.context = context
        self.rdd_id = next(_rdd_ids)
        self.num_partitions = num_partitions
        self.parents = parents
        self._compute = compute
        self.part_fn = part_fn
        self.shuffle = shuffle
        self.join_how = join_how
        self.wide = wide or shuffle is not None or join_how is not None
        self.name = name
        self._cached: Optional[List[List[T]]] = None
        self._cache_requested = False
        self._storage_level = "memory"
        self._checkpoint_requested = False

    # ------------------------------------------------------------------ misc
    def __repr__(self) -> str:
        return f"<RDD {self.rdd_id} {self.name} p={self.num_partitions}>"

    def persist(self, storage: str = "memory") -> "RDD[T]":
        """Keep computed partitions for reuse by later jobs.

        ``storage="memory"`` holds them in the context's LRU cache
        (subject to its byte budget, spilling to the DFS under
        pressure); ``storage="dfs"`` writes them through to MiniDfs
        immediately so they survive eviction.
        """
        if storage not in ("memory", "dfs"):
            raise EngineError(
                f"unknown storage level {storage!r}; use 'memory' or 'dfs'")
        self._cache_requested = True
        self._storage_level = storage
        return self

    def cache(self) -> "RDD[T]":
        """``persist("memory")`` — Spark's historical alias."""
        return self.persist("memory")

    def checkpoint(self) -> "RDD[T]":
        """Persist this RDD's partitions to the DFS and truncate lineage.

        On the next materialization the computed partitions are written
        atomically to the context's
        :class:`~repro.engine.checkpoint.CheckpointManager`; from then
        on jobs restore them from the checkpoint instead of walking
        lineage — even after the in-memory cache evicts them. Requires
        the context to have a checkpoint directory configured
        (``SparkLiteContext(checkpoint_dir=...)`` or
        ``set_checkpoint_dir``); raises :class:`EngineError` otherwise.

        Unlike Spark there is no separate ``persist`` requirement:
        checkpointing alone is enough for later jobs to reuse the data.
        """
        if getattr(self.context, "checkpoint_manager", None) is None:
            raise EngineError(
                "checkpoint() needs a checkpoint directory; construct the "
                "context with checkpoint_dir=... or call "
                "set_checkpoint_dir() first")
        self._checkpoint_requested = True
        return self

    @property
    def is_checkpointed(self) -> bool:
        """True once a committed checkpoint exists for this RDD."""
        manager = getattr(self.context, "checkpoint_manager", None)
        return manager is not None and self.rdd_id in manager

    def unpersist(self) -> "RDD[T]":
        self._cached = None
        self._cache_requested = False
        manager = getattr(self.context, "cache_manager", None)
        if manager is not None:
            manager.unpersist(self.rdd_id)
        return self

    # -------------------------------------------------------- narrow transforms
    def _narrow(self, op: Callable[[List[T]], List[U]], name: str) -> "RDD[U]":
        return RDD(self.context, self.num_partitions, (self,),
                   part_fn=op, name=name)

    def map(self, fn: Callable[[T], U]) -> "RDD[U]":
        return self._narrow(_MapOp(fn), "map")

    def filter(self, predicate: Callable[[T], bool]) -> "RDD[T]":
        return self._narrow(_FilterOp(predicate), "filter")

    def flat_map(self, fn: Callable[[T], Iterable[U]]) -> "RDD[U]":
        return self._narrow(_FlatMapOp(fn), "flatMap")

    def map_partitions(self, fn: Callable[[List[T]], Iterable[U]]) -> "RDD[U]":
        return self._narrow(_MapPartitionsOp(fn), "mapPartitions")

    def key_by(self, fn: Callable[[T], K]) -> "RDD[Tuple[K, T]]":
        return self._narrow(_KeyByOp(fn), "keyBy")

    def map_values(self, fn: Callable[[V], U]) -> "RDD[Tuple[K, U]]":
        return self._narrow(_MapValuesOp(fn), "mapValues")

    def flat_map_values(self, fn: Callable[[V], Iterable[U]]) -> "RDD":
        return self._narrow(_FlatMapValuesOp(fn), "flatMapValues")

    def union(self, other: "RDD[T]") -> "RDD[T]":
        if other.context is not self.context:
            raise EngineError("cannot union RDDs from different contexts")
        left_parts = self.num_partitions

        def compute(runner: "JobRunner", index: int) -> List[T]:
            if index < left_parts:
                return runner.partition(self, index)
            return runner.partition(other, index - left_parts)
        return RDD(self.context, left_parts + other.num_partitions,
                   (self, other), compute, name="union")

    def sample(self, fraction: float, seed: int = 0) -> "RDD[T]":
        if not 0.0 <= fraction <= 1.0:
            raise EngineError(f"fraction must be in [0, 1], got {fraction}")
        return self._narrow(_SampleOp(fraction, seed), "sample")

    # ---------------------------------------------------------- wide transforms
    def _shuffle(self, num_partitions: Optional[int],
                 bucket_fn: Optional[Callable[[T], Any]],
                 post: Callable[[List[T]], List[U]],
                 name: str,
                 combiner: Optional[Callable] = None,
                 plan: Optional[Callable] = None) -> "RDD[U]":
        parts = num_partitions or self.num_partitions
        if not getattr(self.context, "shuffle_combine", True):
            combiner = None
        return RDD(self.context, parts, (self,),
                   shuffle=ShuffleSpec(bucket_fn, post, combiner, plan),
                   name=name)

    def repartition(self, num_partitions: int) -> "RDD[T]":
        return self._shuffle(num_partitions, None, _GatherOp(), "repartition")

    def distinct(self, num_partitions: Optional[int] = None) -> "RDD[T]":
        # map-side dedup: each map task ships each value at most once
        return self._shuffle(num_partitions, _identity, _DistinctOp(),
                             "distinct", combiner=_DistinctOp())

    def group_by_key(self, num_partitions: Optional[int] = None) -> "RDD":
        # no combiner: grouping moves every value by definition
        return self._shuffle(num_partitions, _pair_key, _GroupByKeyOp(),
                             "groupByKey")

    def reduce_by_key(self, fn: Callable[[V, V], V],
                      num_partitions: Optional[int] = None) -> "RDD":
        # map-side partial reduce; the same op merges partials reduce-side
        return self._shuffle(num_partitions, _pair_key, _ReduceByKeyOp(fn),
                             "reduceByKey", combiner=_ReduceByKeyOp(fn))

    def aggregate_by_key(self, zero: U, seq: Callable[[U, V], U],
                         comb: Callable[[U, U], U],
                         num_partitions: Optional[int] = None) -> "RDD":
        """Fold values per key. ``seq`` folds a value into an
        accumulator, ``comb`` merges two accumulators — with combining
        on, ``seq`` runs map-side and ``comb`` merges the shipped
        partials (Spark's combineByKey contract)."""
        if getattr(self.context, "shuffle_combine", True):
            return self._shuffle(num_partitions, _pair_key,
                                 _ReduceByKeyOp(comb), "aggregateByKey",
                                 combiner=_AggregateByKeyOp(zero, seq, comb))
        return self._shuffle(num_partitions, _pair_key,
                             _AggregateByKeyOp(zero, seq, comb),
                             "aggregateByKey")

    def count_by_key_rdd(self, num_partitions: Optional[int] = None) -> "RDD":
        """Distributed key counting: ``(k, v) → (k, count)`` pairs.

        With combining on, each map task ships one ``(k, n)`` partial
        per distinct key instead of every raw pair."""
        if getattr(self.context, "shuffle_combine", True):
            return self._shuffle(num_partitions, _pair_key,
                                 _ReduceByKeyOp(operator.add), "countByKey",
                                 combiner=_CountPairsOp())
        return self._shuffle(num_partitions, _pair_key, _CountPairsOp(),
                             "countByKey")

    def cogroup(self, other: "RDD", num_partitions: Optional[int] = None) -> "RDD":
        parts = num_partitions or max(self.num_partitions,
                                      other.num_partitions)

        def compute(runner: "JobRunner", index: int):
            left = runner.shuffle(self, parts, _pair_key, spec="pair")[index]
            right = runner.shuffle(other, parts, _pair_key, spec="pair")[index]
            grouped: Dict[Any, Tuple[List, List]] = defaultdict(
                lambda: ([], []))
            for k, v in left:
                grouped[k][0].append(v)
            for k, v in right:
                grouped[k][1].append(v)
            return list(grouped.items())
        return RDD(self.context, parts, (self, other), compute, wide=True,
                   name="cogroup")

    def _join_with(self, other: "RDD", how: str, name: str,
                   num_partitions: Optional[int]) -> "RDD":
        if other.context is not self.context:
            raise EngineError("cannot join RDDs from different contexts")
        parts = num_partitions or max(self.num_partitions,
                                      other.num_partitions)
        return RDD(self.context, parts, (self, other), join_how=how,
                   name=name)

    def join(self, other: "RDD", num_partitions: Optional[int] = None) -> "RDD":
        """Inner join on pair keys.

        Adaptive: when one side's serialized size fits under the
        context's ``broadcast_join_threshold``, it is collected into a
        driver-side hash table and probed against the other side with
        no shuffle at all; otherwise both sides hash-exchange.
        """
        return self._join_with(other, "inner", "join", num_partitions)

    def left_outer_join(self, other: "RDD",
                        num_partitions: Optional[int] = None) -> "RDD":
        return self._join_with(other, "left", "leftOuterJoin",
                               num_partitions)

    def sort_by(self, key_fn: Callable[[T], Any],
                ascending: bool = True,
                num_partitions: Optional[int] = None) -> "RDD[T]":
        """Parallel total sort via sampled range partitioning.

        Keys sampled from the materialized parent become cut points;
        every element shuffles to the bucket owning its key range and
        each bucket sorts independently — collected output is globally
        ordered, ties in input order (same bytes the old single-
        partition sort produced), but the work stays partitioned.
        """
        return self._shuffle(num_partitions, None,
                             _SortOp(key_fn, ascending), "sortBy",
                             plan=_RangePlan(key_fn, ascending))

    # ----------------------------------------------------------------- actions
    def collect(self) -> List[T]:
        return self.context._run_job(self)

    def count(self) -> int:
        # sums per-partition lengths; never flattens into one driver list
        return sum(len(p) for p in self.context._run_job_partitions(self))

    def take(self, n: int) -> List[T]:
        if n <= 0:
            return []
        return self.context._run_job_take(self, n)

    def first(self) -> T:
        result = self.take(1)
        if not result:
            raise EngineError("first() on an empty RDD")
        return result[0]

    def reduce(self, fn: Callable[[T, T], T]) -> T:
        data = self.collect()
        if not data:
            raise EngineError("reduce() on an empty RDD")
        acc = data[0]
        for x in data[1:]:
            acc = fn(acc, x)
        return acc

    def sum(self) -> float:
        return sum(self.collect())

    def mean(self) -> float:
        data = self.collect()
        if not data:
            raise EngineError("mean() on an empty RDD")
        return sum(data) / len(data)

    def top(self, n: int, key: Optional[Callable[[T], Any]] = None) -> List[T]:
        return sorted(self.collect(), key=key, reverse=True)[:n]

    def take_ordered(self, n: int,
                     key: Optional[Callable[[T], Any]] = None) -> List[T]:
        """The n smallest elements in sorted order (Spark's takeOrdered)."""
        import heapq
        if key is None:
            return heapq.nsmallest(n, self.collect())
        return heapq.nsmallest(n, self.collect(), key=key)

    def zip_with_index(self) -> "RDD[Tuple[T, int]]":
        """Pair each element with its global position (stable order)."""
        def compute(runner: "JobRunner", index: int) -> List[Tuple[T, int]]:
            parts = runner.all_partitions(self)
            offset = sum(len(p) for p in parts[:index])
            return [(x, offset + i) for i, x in enumerate(parts[index])]
        return RDD(self.context, self.num_partitions, (self,), compute,
                   name="zipWithIndex")

    def stats(self) -> Dict[str, float]:
        """count / mean / stdev / min / max of a numeric RDD, one pass."""
        def partial(part: List[T]) -> List[Tuple[int, float, float,
                                                 float, float]]:
            if not part:
                return []
            values = [float(x) for x in part]
            return [(len(values), sum(values),
                     sum(v * v for v in values),
                     min(values), max(values))]
        pieces = self.map_partitions(partial).collect()
        if not pieces:
            return {"count": 0, "mean": 0.0, "stdev": 0.0,
                    "min": 0.0, "max": 0.0}
        count = sum(p[0] for p in pieces)
        total = sum(p[1] for p in pieces)
        total_sq = sum(p[2] for p in pieces)
        mean = total / count
        variance = max(0.0, total_sq / count - mean * mean)
        return {"count": count, "mean": mean,
                "stdev": variance ** 0.5,
                "min": min(p[3] for p in pieces),
                "max": max(p[4] for p in pieces)}

    def histogram(self, num_buckets: int) -> Tuple[List[float], List[int]]:
        """Evenly spaced histogram over the RDD's numeric range."""
        if num_buckets < 1:
            raise EngineError("num_buckets must be >= 1")
        values = [float(x) for x in self.collect()]
        if not values:
            return [], []
        lo, hi = min(values), max(values)
        if hi == lo:
            return [lo, hi], [len(values)]
        width = (hi - lo) / num_buckets
        edges = [lo + i * width for i in range(num_buckets + 1)]
        counts = [0] * num_buckets
        for v in values:
            bucket = min(num_buckets - 1, int((v - lo) / width))
            counts[bucket] += 1
        return edges, counts

    def count_by_value(self) -> Dict[T, int]:
        return dict(self.key_by(_identity).count_by_key_rdd().collect())

    def count_by_key(self) -> Dict[Any, int]:
        return dict(self.count_by_key_rdd().collect())

    def collect_as_map(self) -> Dict[Any, Any]:
        return dict(self.collect())

    def save_as_json_dataset(self, dfs, directory: str) -> int:
        """Write each partition as one part file on the DFS."""
        import json
        partitions = self.context._run_job_partitions(self)
        for index, part in enumerate(partitions):
            lines = [json.dumps(rec, separators=(",", ":"), sort_keys=True)
                     for rec in part]
            dfs.write_atomic_text(
                f"{directory.rstrip('/')}/part-{index:05d}.jsonl",
                "\n".join(lines) + ("\n" if lines else ""))
        return sum(len(p) for p in partitions)


class JobRunner:
    """Evaluates one action: memoizes partitions and shuffles per job.

    Lineage is materialized bottom-up (topological order) from the driver
    thread, so partition tasks running on a backend only ever *read*
    their parents' already-computed results — nested pool submission (a
    classic pool deadlock) can't happen, and process-pool tasks receive
    their input data explicitly rather than through shared state.

    Partitions persisted via :meth:`RDD.persist` are served from the
    context's :class:`~repro.engine.cache.CacheManager`, and lineage
    walking stops at any node whose partitions the cache can supply —
    ancestors of a cached node are never touched.
    """

    def __init__(self, context):
        self.context = context
        self._partitions: Dict[int, List[List[Any]]] = {}
        self._shuffles: Dict[Tuple[int, int, str], List[List[Any]]] = {}
        self._shuffle_lock = threading.Lock()
        #: instrumentation for the job that just ran (see JobMetrics)
        self.metrics = JobMetrics(backend=context.backend.name)
        #: per-context job serial: with the stage ordinal it makes every
        #: batch's ``stage_key`` stable across reruns of the same program
        #: (RDD ids are process-global, so they would not be), which is
        #: what keeps injected engine faults seed-deterministic.
        self.job_serial = getattr(context, "jobs_run", 0)
        #: shared-memory exchange: a job-scoped segment registry when the
        #: context's columnar engine decided shm is on, else None (all
        #: sealed payloads then travel inline through pickle walls)
        self.shm_registry = None
        if getattr(context, "shm_enabled", False):
            from repro.engine.columnar import ShmRegistry
            self.shm_registry = ShmRegistry()
        #: adaptive planning (engine_adaptive=True): the context's
        #: AdaptivePlanner, a job-scoped StatsCollector, and the lineage
        #: analysis built lazily from this job's action root
        self.adaptive = getattr(context, "adaptive_planner", None)
        self.stats = (StatsCollector(self.adaptive.sample_rows,
                                     metrics=self.metrics)
                      if self.adaptive is not None else None)
        self.plan = None
        self._metrics_lock = threading.Lock()

    def release_shuffle_segments(self) -> int:
        """Unlink every shm segment this job created (idempotent).

        Called from the context in a ``finally`` around each action —
        segments must survive until then because retried or speculative
        reduce tasks may re-read any block, but they must never outlive
        the job."""
        if self.shm_registry is None:
            return 0
        return self.shm_registry.release()

    def _stage_key(self, role: str) -> str:
        return f"j{self.job_serial}s{self.metrics.next_stage_id()}{role}"

    # ----------------------------------------------------------------- caching
    def _has_cache(self, rdd: RDD) -> bool:
        """Cheap peek: could this node's partitions come from a cache?

        A committed checkpoint counts: it is a materialized lineage
        boundary exactly like a cache entry, just durable.
        """
        if rdd.rdd_id in self._partitions or rdd._cached is not None:
            return True
        if rdd._cache_requested:
            manager = getattr(self.context, "cache_manager", None)
            if manager is not None and rdd.rdd_id in manager:
                return True
        if rdd._checkpoint_requested:
            ckpt = getattr(self.context, "checkpoint_manager", None)
            if ckpt is not None and rdd.rdd_id in ckpt:
                return True
        return False

    def _load_cached(self, rdd: RDD) -> bool:
        """Pull cached partitions into this job's memo; True on a hit.

        The memory cache is consulted first (cheap), then the DFS
        checkpoint — so a checkpointed RDD whose cached partitions were
        LRU-evicted restores from the checkpoint instead of recomputing
        its full lineage.
        """
        if rdd.rdd_id in self._partitions:
            return True
        results = rdd._cached
        kind = STAGE_CACHED
        if results is None and rdd._cache_requested:
            manager = getattr(self.context, "cache_manager", None)
            if manager is not None and rdd.rdd_id in manager:
                results = manager.get(rdd.rdd_id)
        if results is None and rdd._checkpoint_requested:
            ckpt = getattr(self.context, "checkpoint_manager", None)
            if ckpt is not None:
                results = ckpt.get(rdd.rdd_id)
                kind = STAGE_CHECKPOINT
        if results is None:
            return False
        self._partitions[rdd.rdd_id] = results
        self._record_cached(rdd, kind)
        return True

    def _store_cache(self, rdd: RDD, results: List[List[Any]]) -> None:
        manager = getattr(self.context, "cache_manager", None)
        if manager is not None:
            manager.put(rdd.rdd_id, results, storage=rdd._storage_level)
        else:
            rdd._cached = results

    def _lineage(self, rdd: RDD) -> List[RDD]:
        """Ancestors-first topological order, pruned at cached nodes."""
        order: List[RDD] = []
        seen = set()

        def visit(node: RDD) -> None:
            if node.rdd_id in seen:
                return
            seen.add(node.rdd_id)
            if not self._has_cache(node):
                for parent in node.parents:
                    visit(parent)
            order.append(node)
        visit(rdd)
        return order

    def _record_cached(self, rdd: RDD, kind: str = STAGE_CACHED) -> None:
        self.metrics.record_stage(StageMetrics(
            stage_id=self.metrics.next_stage_id(), rdd_id=rdd.rdd_id,
            name=rdd.name, kind=kind,
            partitions=rdd.num_partitions, cache_hit=True))

    def _ensure_plan(self, rdd: RDD) -> None:
        """Analyze the job's lineage once, from the first action root.

        Reentrant ``all_partitions`` calls (generic computes pulling
        parents) keep the root's analysis — every node they touch is in
        the root's lineage, so consumer sets stay complete.
        """
        if self.adaptive is not None and self.plan is None:
            self.plan = analyze_job(rdd, self._has_cache)

    def record_scan_pushdown(self, bytes_skipped: int, fields_pruned: int,
                             filters: int = 0, projections: int = 0) -> None:
        """Thread-safe pushdown accounting (scan computes may run on the
        thread backend's pool)."""
        with self._metrics_lock:
            self.metrics.record_scan_pushdown(bytes_skipped, fields_pruned,
                                              filters, projections)

    def all_partitions(self, rdd: RDD) -> List[List[Any]]:
        if rdd.rdd_id not in self._partitions:
            self._ensure_plan(rdd)
            for node in self._lineage(rdd):
                self._materialize(node)
        return self._partitions[rdd.rdd_id]

    def _materialize(self, rdd: RDD) -> None:
        if self.plan is not None and rdd.rdd_id in self.plan.interior:
            # interior link of a fused scan chain: its sole consumer
            # reads straight from the DFS, so it never materializes
            return
        if self._load_cached(rdd):
            return
        backend = self.context.backend
        start = time.perf_counter()
        broadcast = False
        rec_in = rec_moved = b_moved = b_raw = b_shm = b_pick = 0
        broadcast_bytes = coalesced_from = coalesced_to = stage_splits = 0
        scan_skipped = scan_pruned = 0
        runs: List[Any] = []
        if self.plan is not None and rdd.rdd_id in self.plan.fusions:
            results, scan_skipped, scan_pruned = self._fused_scan(rdd)
            kind = STAGE_TASK
        elif rdd.part_fn is not None:
            inputs = self.all_partitions(rdd.parents[0])
            run = backend.run(self._narrow_op(rdd.part_fn), inputs,
                              stage_key=self._stage_key("n"))
            runs.append(run)
            results = run.results
            kind = STAGE_NARROW
        elif rdd.shuffle is not None:
            pieces, stats, exchange = self._exchange(rdd)
            rec_in, rec_moved, b_moved, b_raw, b_shm, b_pick = stats
            runs.append(exchange)
            plan = None
            if self.adaptive is not None:
                plan = self.adaptive.plan_reduce(
                    rdd.shuffle.post, pieces,
                    allow_coalesce=rdd.rdd_id in self.plan.shape_safe)
            if plan is None:
                post = backend.run(ReduceShuffleTask(rdd.shuffle.post),
                                   pieces, stage_key=self._stage_key("r"))
                runs.append(post)
                results = post.results
            else:
                results, post = self._run_reduce_plan(rdd, plan, pieces)
                runs.append(post)
                if plan.merged_away:
                    coalesced_from = rdd.num_partitions
                    coalesced_to = sum(1 for e in plan.entries
                                       if e[0] == "merge")
                stage_splits = plan.splits
            kind = STAGE_SHUFFLE
            self.metrics.record_shuffle(rec_in, b_moved, rec_moved, b_raw,
                                        b_shm, b_pick)
        elif rdd.join_how is not None:
            results, stats, runs, broadcast, broadcast_bytes = \
                self._join(rdd)
            rec_in, rec_moved, b_moved, b_raw, b_shm, b_pick = stats
            kind = STAGE_NARROW if broadcast else STAGE_SHUFFLE
        else:
            compute = rdd._compute
            if compute is None:
                raise EngineError(f"RDD {rdd!r} has no compute function")
            # closures read runner state: always in-process
            before = (self.metrics.shuffle_records,
                      self.metrics.shuffle_records_moved,
                      self.metrics.shuffle_bytes,
                      self.metrics.shuffle_bytes_raw,
                      self.metrics.shuffle_bytes_shm,
                      self.metrics.shuffle_bytes_pickled)
            results = backend.run_local(
                lambda i: compute(self, i), rdd.num_partitions)
            kind = STAGE_TASK
            # attribute driver-side shuffles (cogroup) to this stage
            rec_in = self.metrics.shuffle_records - before[0]
            rec_moved = self.metrics.shuffle_records_moved - before[1]
            b_moved = self.metrics.shuffle_bytes - before[2]
            b_raw = self.metrics.shuffle_bytes_raw - before[3]
            b_shm = self.metrics.shuffle_bytes_shm - before[4]
            b_pick = self.metrics.shuffle_bytes_pickled - before[5]
        self._partitions[rdd.rdd_id] = results
        if rdd._cache_requested:
            self._store_cache(rdd, results)
        if rdd._checkpoint_requested:
            self._store_checkpoint(rdd, results)
        if self.stats is not None:
            # stage-boundary sample: deterministic, driver-side, over the
            # deduplicated results — recomputed attempts can't re-count
            self.stats.observe(f"r{rdd.rdd_id}", results)
        stage = StageMetrics(
            stage_id=self.metrics.next_stage_id(), rdd_id=rdd.rdd_id,
            name=rdd.name, kind=kind, partitions=rdd.num_partitions,
            records_out=sum(len(p) for p in results),
            shuffle_records=rec_in, shuffle_records_moved=rec_moved,
            shuffle_bytes=b_moved, shuffle_bytes_raw=b_raw,
            shuffle_bytes_shm=b_shm, shuffle_bytes_pickled=b_pick,
            wall_s=time.perf_counter() - start, broadcast=broadcast,
            broadcast_bytes=broadcast_bytes,
            coalesced_from=coalesced_from, coalesced_to=coalesced_to,
            skew_splits=stage_splits,
            scan_bytes_skipped=scan_skipped,
            scan_fields_pruned=scan_pruned)
        for run in runs:
            stage.add_run(run)
        self.metrics.record_stage(stage)

    def _store_checkpoint(self, rdd: RDD, results: List[List[Any]]) -> None:
        ckpt = getattr(self.context, "checkpoint_manager", None)
        if ckpt is None or rdd.rdd_id in ckpt:
            return
        ckpt.put(rdd.rdd_id, results)
        self.metrics.checkpoint_writes += 1

    def partition(self, rdd: RDD, index: int) -> List[Any]:
        return self.all_partitions(rdd)[index]

    # -------------------------------------------------- adaptive execution
    def _fused_scan(self, rdd: RDD):
        """Materialize a fused scan terminal straight from the DFS.

        The fused chain's filter/map ops evaluate per decoded line
        inside the read (same order the unfused narrow stages would
        apply them, so results are identical); dropped lines count their
        on-disk bytes as skipped, dict-shrinking projections count the
        fields they cut.
        """
        from repro.dfs.jsonlines import read_part_pushdown
        fusion = self.plan.fusions[rdd.rdd_id]
        info = fusion.scan.scan_info
        dfs, paths, ops = info["dfs"], info["paths"], fusion.ops
        triples = self.context.backend.run_local(
            lambda i: read_part_pushdown(dfs, paths[i], ops), len(paths))
        results = [t[0] for t in triples]
        skipped = sum(t[1] for t in triples)
        pruned = sum(t[2] for t in triples)
        self.record_scan_pushdown(
            skipped, pruned,
            filters=sum(1 for k, _fn in ops if k == "filter"),
            projections=sum(1 for k, _fn in ops if k == "map"))
        return results, skipped, pruned

    def _run_reduce_plan(self, rdd: RDD, plan, pieces):
        """Execute an adaptive reduce plan for one shuffle stage.

        Merge entries feed one task the concatenated piece lists of
        adjacent buckets (bucket order, map order within — the same
        stream the per-bucket tasks would see back to back); split
        entries fan a hot bucket's pieces across several tasks and fold
        the partial outputs back together. Entry order equals bucket
        order and the tail pads with empty partitions, so the declared
        partition count and the flattened element order both hold.
        """
        post_op = rdd.shuffle.post
        inputs: List[List[Any]] = []
        for entry in plan.entries:
            if entry[0] == "merge":
                inputs.append([p for b in entry[1] for p in pieces[b]])
            else:
                _kind, bucket, chunks = entry
                for lo, hi in chunks:
                    inputs.append(pieces[bucket][lo:hi])
        run = self.context.backend.run(ReduceShuffleTask(post_op), inputs,
                                       stage_key=self._stage_key("r"))
        outs = iter(run.results)
        results: List[List[Any]] = []
        for entry in plan.entries:
            if entry[0] == "merge":
                results.append(next(outs))
            else:
                partials = [next(outs) for _ in entry[2]]
                results.append(merge_split_outputs(post_op, partials))
        results.extend([] for _ in range(rdd.num_partitions - len(results)))
        self.metrics.record_adaptive_reduce(plan.merged_away, plan.splits,
                                            plan.split_tasks)
        return results, run

    # ------------------------------------------------------------------- take
    def take(self, rdd: RDD, n: int) -> List[Any]:
        """First ``n`` elements, scanning as few partitions as possible.

        A source RDD (per-partition compute, no parents — ``parallelize``
        slices, ``json_dataset`` part files) is evaluated one partition
        at a time and the scan stops as soon as ``n`` elements exist, so
        ``take(5)`` on a dataset reads one part file, not the directory.
        Derived RDDs still materialize (transforms may need every
        partition) but only the needed prefix is flattened.
        """
        gathered: List[List[Any]] = []
        count = 0
        self._ensure_plan(rdd)
        if (rdd._compute is not None and not rdd.parents
                and not rdd._cache_requested
                and not rdd._checkpoint_requested):
            start = time.perf_counter()
            scanned = 0
            for index in range(rdd.num_partitions):
                part = rdd._compute(self, index)
                gathered.append(part)
                count += len(part)
                scanned += 1
                if count >= n:
                    break
            self.metrics.record_stage(StageMetrics(
                stage_id=self.metrics.next_stage_id(), rdd_id=rdd.rdd_id,
                name=rdd.name, kind=STAGE_TASK, partitions=scanned,
                records_out=count, wall_s=time.perf_counter() - start))
        else:
            for part in self.all_partitions(rdd):
                gathered.append(part)
                count += len(part)
                if count >= n:
                    break
        return [x for part in gathered for x in part][:n]

    # ------------------------------------------------------------ narrow ops
    def _narrow_op(self, op):
        """Wrap an elementwise partition op for batch-at-a-time execution
        when the context runs columnar; whole-partition ops pass through
        untouched (batching them would change their results)."""
        context = self.context
        if (getattr(context, "engine_columnar", False)
                and getattr(op, "elementwise", False)):
            batch_rows = getattr(context, "batch_rows", 0)
            if batch_rows and batch_rows > 0:
                return _BatchedOp(op, batch_rows)
        return op

    # ---------------------------------------------------------------- shuffles
    def _exchange(self, rdd: RDD):
        """Map-side exchange for a structured wide node.

        Resolves the partitioner (data-dependent range plan, round-robin,
        or CRC32 hash — unchanged placement), then delegates to
        :meth:`_exchange_parts`. The stage's reduce-side ``post`` op is
        handed along as the per-batch combiner's partial-merge function.
        """
        parts = self.all_partitions(rdd.parents[0])
        spec = rdd.shuffle
        num_buckets = rdd.num_partitions
        if spec.plan is not None:
            partitioner = spec.plan(parts, num_buckets)
        elif spec.bucket_fn is None:
            partitioner = None
        else:
            partitioner = HashPartitioner(spec.bucket_fn, num_buckets)
        return self._exchange_parts(parts, num_buckets, partitioner,
                                    spec.combiner,
                                    stage_key=self._stage_key("m"),
                                    merge=spec.post)

    def _exchange_parts(self, parts, num_buckets, partitioner,
                        combiner=None, stage_key=None, merge=None):
        """Bucket (+combine, +seal) every parent partition on the backend.

        Returns ``(pieces, (records_in, records_moved, bytes_moved,
        bytes_raw, bytes_shm, bytes_pickled), run)`` where ``pieces[b]``
        lists bucket ``b``'s payload from each map chunk in partition
        order — deterministic on every backend. Payloads are sealed
        blocks when the backend crosses a process boundary, compression
        is on, or the columnar engine runs (``BatchBlock``s then, shm-
        backed when the context enabled shared memory); otherwise plain
        lists (and byte volume falls back to one pickle of the whole
        exchange, as before).
        """
        context = self.context
        backend = context.backend
        compress = getattr(context, "shuffle_compress", False)
        columnar = bool(getattr(context, "engine_columnar", False))
        shm_prefix = (self.shm_registry.prefix
                      if self.shm_registry is not None else None)
        seal = bool(getattr(backend, "shuffle_blocks", False) or compress
                    or shm_prefix)
        op = MapShuffleTask(
            partitioner, num_buckets, combiner, seal, compress,
            getattr(context, "shuffle_compress_threshold", 4096),
            columnar=columnar,
            batch_rows=getattr(context, "batch_rows", 0) if columnar else 0,
            merge=merge if columnar else None,
            shm_prefix=shm_prefix)
        offsets = []
        offset = 0
        for part in parts:
            offsets.append(offset)
            offset += len(part)
        run = backend.run(op, list(zip(offsets, parts)),
                          stage_key=stage_key)
        pieces: List[List[Any]] = [[] for _ in range(num_buckets)]
        rec_in = rec_moved = b_moved = b_raw = b_shm = b_pick = 0
        for out in run.results:
            rec_in += out.records_in
            rec_moved += out.records_out
            for b, payload in enumerate(out.buckets):
                pieces[b].append(payload)
                if isinstance(payload, (ShuffleBlock, BatchBlock)):
                    b_moved += payload.nbytes
                    b_raw += payload.raw_bytes
                    b_shm += payload.shm_bytes
                    b_pick += payload.pickled_nbytes
                    if self.shm_registry is not None:
                        self.shm_registry.track(
                            getattr(payload, "shm_name", None))
        if not seal:
            b_moved = b_raw = b_pick = payload_bytes(pieces)
        return pieces, (rec_in, rec_moved, b_moved, b_raw, b_shm,
                        b_pick), run

    # ------------------------------------------------------------------- joins
    def _join(self, rdd: RDD):
        """Adaptive pair join: broadcast-hash when a side fits, else
        a two-sided hash exchange cogrouped per bucket.

        With the adaptive planner on, the broadcast decision comes from
        the *observed* sizes of both materialized sides (replacing the
        static threshold entirely); otherwise the configured
        ``broadcast_join_threshold`` applies as before.

        Returns ``(results, shuffle_stats, runs, broadcast,
        broadcast_bytes)`` — the caller folds each backend run's
        supervision counters into the stage row via
        :meth:`StageMetrics.add_run`.
        """
        left, right = rdd.parents
        how = rdd.join_how
        left_parts = self.all_partitions(left)
        right_parts = self.all_partitions(right)
        num_buckets = rdd.num_partitions
        backend = self.context.backend
        threshold = getattr(self.context, "broadcast_join_threshold", 0) or 0
        pick = None
        if self.adaptive is not None:
            pick = self._adaptive_broadcast_side(left, right, left_parts,
                                                 right_parts, how)
        elif threshold > 0:
            pick = self._broadcast_side(left_parts, right_parts, how,
                                        threshold)
        if pick is not None:
            small_is_right, table, table_bytes = pick
            big_parts = left_parts if small_is_right else right_parts
            run = backend.run(
                BroadcastHashJoinOp(table, how, small_is_right),
                list(big_parts), stage_key=self._stage_key("b"))
            self.metrics.record_broadcast_join(table_bytes)
            results = _reshape(run.results, num_buckets)
            return results, (0, 0, 0, 0, 0, 0), [run], True, table_bytes
        partitioner = HashPartitioner(_pair_key, num_buckets)
        pieces_l, stats_l, run_l = self._exchange_parts(
            left_parts, num_buckets, partitioner,
            stage_key=self._stage_key("l"))
        self.metrics.record_shuffle(stats_l[0], stats_l[2],
                                    stats_l[1], stats_l[3],
                                    stats_l[4], stats_l[5])
        pieces_r, stats_r, run_r = self._exchange_parts(
            right_parts, num_buckets, partitioner,
            stage_key=self._stage_key("r"))
        self.metrics.record_shuffle(stats_r[0], stats_r[2],
                                    stats_r[1], stats_r[3],
                                    stats_r[4], stats_r[5])
        post = backend.run(CogroupJoinTask(how),
                           list(zip(pieces_l, pieces_r)),
                           stage_key=self._stage_key("p"))
        stats = tuple(a + b for a, b in zip(stats_l, stats_r))
        return post.results, stats, [run_l, run_r, post], False, 0

    @staticmethod
    def _broadcast_side(left_parts, right_parts, how, threshold):
        """Pick a side to broadcast, or None when neither fits.

        The right side is always eligible; the left side only for inner
        joins (a left-outer join must emit unmatched *left* rows, which
        the probe side streams, so the left side has to stay big-side).
        A measured size of 0 means the payload would not pickle.
        Returns ``(small_is_right, table, serialized_bytes)``.
        """
        right_size = payload_bytes(right_parts)
        if 0 < right_size <= threshold:
            return True, _hash_table(right_parts), right_size
        if how == "inner":
            left_size = payload_bytes(left_parts)
            if 0 < left_size <= threshold:
                return False, _hash_table(left_parts), left_size
        return None

    def _adaptive_broadcast_side(self, left, right, left_parts,
                                 right_parts, how):
        """Observed-size broadcast decision (``engine_adaptive``).

        Both sides are already materialized, so their stage-boundary
        stats (exact counts, deterministic sampled sizes) are cached in
        the collector — the planner just compares them. The chosen
        side's *actual* serialized size is then measured exactly for the
        ``broadcast_bytes`` metric; a side that turns out unpicklable
        falls back to the hash exchange.
        """
        stats_l = self.stats.observe(f"r{left.rdd_id}", left_parts)
        stats_r = self.stats.observe(f"r{right.rdd_id}", right_parts)
        side = self.adaptive.choose_broadcast(stats_l, stats_r, how)
        if side is None:
            return None
        parts = right_parts if side == "right" else left_parts
        size = payload_bytes(parts)
        if size <= 0 and any(len(p) for p in parts):
            return None
        return side == "right", _hash_table(parts), size

    def shuffle(self, rdd: RDD, num_buckets: int,
                bucket_fn: Callable[[Any], Any],
                spec: str = "key") -> List[List[Any]]:
        """Driver-side shuffle memo for generic wide computes (cogroup).

        ``spec`` names the bucketing scheme so two different wide
        children of the same parent never collide in the memo.
        """
        key = (rdd.rdd_id, num_buckets, spec)
        with self._shuffle_lock:
            if key not in self._shuffles:
                buckets: List[List[Any]] = [[] for _ in range(num_buckets)]
                moved = 0
                for part in self.all_partitions(rdd):
                    for item in part:
                        buckets[_hash_partition(bucket_fn(item),
                                                num_buckets)].append(item)
                        moved += 1
                self._shuffles[key] = buckets
                self.metrics.record_shuffle(moved, payload_bytes(buckets))
        return self._shuffles[key]


def _hash_table(parts: List[List[Any]]) -> Dict[Any, List[Any]]:
    """Collect pair partitions into a key → values broadcast table."""
    table: Dict[Any, List[Any]] = {}
    for part in parts:
        for k, v in part:
            table.setdefault(k, []).append(v)
    return table


def _reshape(parts: List[List[Any]], num_partitions: int) -> List[List[Any]]:
    """Pad or fold a partition list to the node's declared width."""
    if len(parts) == num_partitions:
        return list(parts)
    if len(parts) < num_partitions:
        return list(parts) + [[] for _ in range(num_partitions - len(parts))]
    head = list(parts[:num_partitions - 1])
    tail = [x for part in parts[num_partitions - 1:] for x in part]
    head.append(tail)
    return head


# back-compat alias: pre-fast-path callers measured payloads through here
_payload_bytes = payload_bytes
