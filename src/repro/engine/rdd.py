"""Lazy RDD lineage and the job runner.

Every transformation returns a new :class:`RDD` node holding a reference
to its parent(s) and a description of the work; nothing executes until an
action. The :class:`JobRunner` walks the lineage, computes each distinct
RDD's partitions once per job (memoized), runs narrow partitions on the
context's thread pool, and performs hash shuffles for wide dependencies —
the same split Spark draws between narrow and wide transformations.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import (Any, Callable, Dict, Generic, Iterable, List, Optional,
                    Tuple, TypeVar)

from repro.util.errors import EngineError

T = TypeVar("T")
U = TypeVar("U")
K = TypeVar("K")
V = TypeVar("V")

_rdd_ids = itertools.count()


def _hash_partition(key: Any, num_partitions: int) -> int:
    return hash(key) % num_partitions


class RDD(Generic[T]):
    """A lazily evaluated, partitioned collection with Spark semantics."""

    def __init__(self, context, num_partitions: int,
                 parents: Tuple["RDD", ...] = (),
                 compute: Optional[Callable] = None,
                 wide: bool = False,
                 name: str = "rdd"):
        if num_partitions < 1:
            raise EngineError("an RDD needs at least one partition")
        self.context = context
        self.rdd_id = next(_rdd_ids)
        self.num_partitions = num_partitions
        self.parents = parents
        self._compute = compute
        self.wide = wide
        self.name = name
        self._cached: Optional[List[List[T]]] = None
        self._cache_requested = False

    # ------------------------------------------------------------------ misc
    def __repr__(self) -> str:
        return f"<RDD {self.rdd_id} {self.name} p={self.num_partitions}>"

    def cache(self) -> "RDD[T]":
        """Keep computed partitions for reuse by later jobs."""
        self._cache_requested = True
        return self

    def unpersist(self) -> "RDD[T]":
        self._cached = None
        self._cache_requested = False
        return self

    # -------------------------------------------------------- narrow transforms
    def _narrow(self, fn: Callable[[List[T]], List[U]], name: str) -> "RDD[U]":
        def compute(runner: "JobRunner", index: int) -> List[U]:
            return fn(runner.partition(self, index))
        return RDD(self.context, self.num_partitions, (self,), compute,
                   name=name)

    def map(self, fn: Callable[[T], U]) -> "RDD[U]":
        return self._narrow(lambda part: [fn(x) for x in part], "map")

    def filter(self, predicate: Callable[[T], bool]) -> "RDD[T]":
        return self._narrow(
            lambda part: [x for x in part if predicate(x)], "filter")

    def flat_map(self, fn: Callable[[T], Iterable[U]]) -> "RDD[U]":
        return self._narrow(
            lambda part: [y for x in part for y in fn(x)], "flatMap")

    def map_partitions(self, fn: Callable[[List[T]], Iterable[U]]) -> "RDD[U]":
        return self._narrow(lambda part: list(fn(part)), "mapPartitions")

    def key_by(self, fn: Callable[[T], K]) -> "RDD[Tuple[K, T]]":
        return self._narrow(lambda part: [(fn(x), x) for x in part], "keyBy")

    def map_values(self, fn: Callable[[V], U]) -> "RDD[Tuple[K, U]]":
        return self._narrow(
            lambda part: [(k, fn(v)) for k, v in part], "mapValues")

    def flat_map_values(self, fn: Callable[[V], Iterable[U]]) -> "RDD":
        return self._narrow(
            lambda part: [(k, u) for k, v in part for u in fn(v)],
            "flatMapValues")

    def union(self, other: "RDD[T]") -> "RDD[T]":
        if other.context is not self.context:
            raise EngineError("cannot union RDDs from different contexts")
        left_parts = self.num_partitions

        def compute(runner: "JobRunner", index: int) -> List[T]:
            if index < left_parts:
                return runner.partition(self, index)
            return runner.partition(other, index - left_parts)
        return RDD(self.context, left_parts + other.num_partitions,
                   (self, other), compute, name="union")

    def sample(self, fraction: float, seed: int = 0) -> "RDD[T]":
        import random
        if not 0.0 <= fraction <= 1.0:
            raise EngineError(f"fraction must be in [0, 1], got {fraction}")

        def fn(part: List[T]) -> List[T]:
            rng = random.Random(seed * 1_000_003 + len(part))
            return [x for x in part if rng.random() < fraction]
        return self._narrow(fn, "sample")

    # ---------------------------------------------------------- wide transforms
    def _shuffle(self, num_partitions: Optional[int],
                 bucket_fn: Callable[[T], Any],
                 post: Callable[[List[T]], List[U]],
                 name: str) -> "RDD[U]":
        parts = num_partitions or self.num_partitions

        def compute(runner: "JobRunner", index: int) -> List[U]:
            buckets = runner.shuffle(self, parts, bucket_fn)
            return post(buckets[index])
        return RDD(self.context, parts, (self,), compute, wide=True,
                   name=name)

    def repartition(self, num_partitions: int) -> "RDD[T]":
        counter = itertools.count()
        return self._shuffle(
            num_partitions, lambda _x: next(counter),
            lambda bucket: bucket, "repartition")

    def distinct(self, num_partitions: Optional[int] = None) -> "RDD[T]":
        def post(bucket: List[T]) -> List[T]:
            seen = set()
            out = []
            for x in bucket:
                if x not in seen:
                    seen.add(x)
                    out.append(x)
            return out
        return self._shuffle(num_partitions, lambda x: x, post, "distinct")

    def group_by_key(self, num_partitions: Optional[int] = None) -> "RDD":
        def post(bucket: List[Tuple[K, V]]) -> List[Tuple[K, List[V]]]:
            grouped: Dict[K, List[V]] = defaultdict(list)
            for k, v in bucket:
                grouped[k].append(v)
            return list(grouped.items())
        return self._shuffle(num_partitions, lambda kv: kv[0], post,
                             "groupByKey")

    def reduce_by_key(self, fn: Callable[[V, V], V],
                      num_partitions: Optional[int] = None) -> "RDD":
        def post(bucket: List[Tuple[K, V]]) -> List[Tuple[K, V]]:
            acc: Dict[K, V] = {}
            for k, v in bucket:
                acc[k] = fn(acc[k], v) if k in acc else v
            return list(acc.items())
        return self._shuffle(num_partitions, lambda kv: kv[0], post,
                             "reduceByKey")

    def aggregate_by_key(self, zero: U, seq: Callable[[U, V], U],
                         comb: Callable[[U, U], U],
                         num_partitions: Optional[int] = None) -> "RDD":
        import copy

        def post(bucket: List[Tuple[K, V]]) -> List[Tuple[K, U]]:
            acc: Dict[K, U] = {}
            for k, v in bucket:
                if k not in acc:
                    acc[k] = copy.deepcopy(zero)
                acc[k] = seq(acc[k], v)
            return list(acc.items())
        return self._shuffle(num_partitions, lambda kv: kv[0], post,
                             "aggregateByKey")

    def cogroup(self, other: "RDD", num_partitions: Optional[int] = None) -> "RDD":
        parts = num_partitions or max(self.num_partitions,
                                      other.num_partitions)

        def compute(runner: "JobRunner", index: int):
            left = runner.shuffle(self, parts, lambda kv: kv[0])[index]
            right = runner.shuffle(other, parts, lambda kv: kv[0])[index]
            grouped: Dict[Any, Tuple[List, List]] = defaultdict(
                lambda: ([], []))
            for k, v in left:
                grouped[k][0].append(v)
            for k, v in right:
                grouped[k][1].append(v)
            return list(grouped.items())
        return RDD(self.context, parts, (self, other), compute, wide=True,
                   name="cogroup")

    def join(self, other: "RDD", num_partitions: Optional[int] = None) -> "RDD":
        def emit(item):
            key, (lefts, rights) = item
            return [(key, (lv, rv)) for lv in lefts for rv in rights]
        return self.cogroup(other, num_partitions).flat_map(emit)

    def left_outer_join(self, other: "RDD",
                        num_partitions: Optional[int] = None) -> "RDD":
        def emit(item):
            key, (lefts, rights) = item
            if not rights:
                return [(key, (lv, None)) for lv in lefts]
            return [(key, (lv, rv)) for lv in lefts for rv in rights]
        return self.cogroup(other, num_partitions).flat_map(emit)

    def sort_by(self, key_fn: Callable[[T], Any],
                ascending: bool = True) -> "RDD[T]":
        """Total sort into a single partition (fine at simulator scale)."""
        def compute(runner: "JobRunner", index: int) -> List[T]:
            everything = [x for p in runner.all_partitions(self) for x in p]
            return sorted(everything, key=key_fn, reverse=not ascending)
        return RDD(self.context, 1, (self,), compute, wide=True,
                   name="sortBy")

    # ----------------------------------------------------------------- actions
    def collect(self) -> List[T]:
        return self.context._run_job(self)

    def count(self) -> int:
        return len(self.collect())

    def take(self, n: int) -> List[T]:
        return self.collect()[:n]

    def first(self) -> T:
        result = self.take(1)
        if not result:
            raise EngineError("first() on an empty RDD")
        return result[0]

    def reduce(self, fn: Callable[[T, T], T]) -> T:
        data = self.collect()
        if not data:
            raise EngineError("reduce() on an empty RDD")
        acc = data[0]
        for x in data[1:]:
            acc = fn(acc, x)
        return acc

    def sum(self) -> float:
        return sum(self.collect())

    def mean(self) -> float:
        data = self.collect()
        if not data:
            raise EngineError("mean() on an empty RDD")
        return sum(data) / len(data)

    def top(self, n: int, key: Optional[Callable[[T], Any]] = None) -> List[T]:
        return sorted(self.collect(), key=key, reverse=True)[:n]

    def take_ordered(self, n: int,
                     key: Optional[Callable[[T], Any]] = None) -> List[T]:
        """The n smallest elements in sorted order (Spark's takeOrdered)."""
        import heapq
        if key is None:
            return heapq.nsmallest(n, self.collect())
        return heapq.nsmallest(n, self.collect(), key=key)

    def zip_with_index(self) -> "RDD[Tuple[T, int]]":
        """Pair each element with its global position (stable order)."""
        def compute(runner: "JobRunner", index: int) -> List[Tuple[T, int]]:
            parts = runner.all_partitions(self)
            offset = sum(len(p) for p in parts[:index])
            return [(x, offset + i) for i, x in enumerate(parts[index])]
        return RDD(self.context, self.num_partitions, (self,), compute,
                   name="zipWithIndex")

    def stats(self) -> Dict[str, float]:
        """count / mean / stdev / min / max of a numeric RDD, one pass."""
        def partial(part: List[T]) -> List[Tuple[int, float, float,
                                                 float, float]]:
            if not part:
                return []
            values = [float(x) for x in part]
            return [(len(values), sum(values),
                     sum(v * v for v in values),
                     min(values), max(values))]
        pieces = self.map_partitions(partial).collect()
        if not pieces:
            return {"count": 0, "mean": 0.0, "stdev": 0.0,
                    "min": 0.0, "max": 0.0}
        count = sum(p[0] for p in pieces)
        total = sum(p[1] for p in pieces)
        total_sq = sum(p[2] for p in pieces)
        mean = total / count
        variance = max(0.0, total_sq / count - mean * mean)
        return {"count": count, "mean": mean,
                "stdev": variance ** 0.5,
                "min": min(p[3] for p in pieces),
                "max": max(p[4] for p in pieces)}

    def histogram(self, num_buckets: int) -> Tuple[List[float], List[int]]:
        """Evenly spaced histogram over the RDD's numeric range."""
        if num_buckets < 1:
            raise EngineError("num_buckets must be >= 1")
        values = [float(x) for x in self.collect()]
        if not values:
            return [], []
        lo, hi = min(values), max(values)
        if hi == lo:
            return [lo, hi], [len(values)]
        width = (hi - lo) / num_buckets
        edges = [lo + i * width for i in range(num_buckets + 1)]
        counts = [0] * num_buckets
        for v in values:
            bucket = min(num_buckets - 1, int((v - lo) / width))
            counts[bucket] += 1
        return edges, counts

    def count_by_value(self) -> Dict[T, int]:
        counts: Dict[T, int] = defaultdict(int)
        for x in self.collect():
            counts[x] += 1
        return dict(counts)

    def count_by_key(self) -> Dict[Any, int]:
        counts: Dict[Any, int] = defaultdict(int)
        for k, _v in self.collect():
            counts[k] += 1
        return dict(counts)

    def collect_as_map(self) -> Dict[Any, Any]:
        return dict(self.collect())

    def save_as_json_dataset(self, dfs, directory: str) -> int:
        """Write each partition as one part file on the DFS."""
        import json
        partitions = self.context._run_job_partitions(self)
        for index, part in enumerate(partitions):
            lines = [json.dumps(rec, separators=(",", ":"), sort_keys=True)
                     for rec in part]
            dfs.create_text(f"{directory.rstrip('/')}/part-{index:05d}.jsonl",
                            "\n".join(lines) + ("\n" if lines else ""))
        return sum(len(p) for p in partitions)


class JobMetrics:
    """Counters for one job: what actually executed.

    Exposed on :class:`SparkLiteContext` as ``last_job_metrics`` so
    benchmarks (A1) and curious users can see how much work a lineage
    did — RDDs materialized, partition tasks run, records shuffled —
    without instrumenting their own closures.
    """

    def __init__(self):
        self.rdds_materialized = 0
        self.partitions_computed = 0
        self.shuffles = 0
        self.shuffle_records = 0
        self.cached_hits = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "rdds_materialized": self.rdds_materialized,
            "partitions_computed": self.partitions_computed,
            "shuffles": self.shuffles,
            "shuffle_records": self.shuffle_records,
            "cached_hits": self.cached_hits,
        }


class JobRunner:
    """Evaluates one action: memoizes partitions and shuffles per job.

    Lineage is materialized bottom-up (topological order) from the driver
    thread, so partition tasks running on the pool only ever *read* their
    parents' already-computed results — nested pool submission (a classic
    thread-pool deadlock) can't happen.
    """

    def __init__(self, context):
        import threading
        self.context = context
        self._partitions: Dict[int, List[List[Any]]] = {}
        self._shuffles: Dict[Tuple[int, int], List[List[Any]]] = {}
        self._shuffle_lock = threading.Lock()
        #: instrumentation for the job that just ran (see JobMetrics)
        self.metrics = JobMetrics()

    def _lineage(self, rdd: RDD) -> List[RDD]:
        """Ancestors-first topological order of the lineage DAG."""
        order: List[RDD] = []
        seen = set()

        def visit(node: RDD) -> None:
            if node.rdd_id in seen:
                return
            seen.add(node.rdd_id)
            for parent in node.parents:
                visit(parent)
            order.append(node)
        visit(rdd)
        return order

    def all_partitions(self, rdd: RDD) -> List[List[Any]]:
        if rdd._cached is not None:
            if rdd.rdd_id not in self._partitions:
                self._partitions[rdd.rdd_id] = rdd._cached
                self.metrics.cached_hits += 1
            return rdd._cached
        if rdd.rdd_id not in self._partitions:
            for node in self._lineage(rdd):
                self._materialize(node)
        return self._partitions[rdd.rdd_id]

    def _materialize(self, rdd: RDD) -> None:
        if rdd._cached is not None:
            self._partitions[rdd.rdd_id] = rdd._cached
            self.metrics.cached_hits += 1
            return
        if rdd.rdd_id in self._partitions:
            return
        compute = rdd._compute
        if compute is None:
            raise EngineError(f"RDD {rdd!r} has no compute function")
        results = self.context._map_indices(
            rdd.num_partitions, lambda i: compute(self, i))
        self._partitions[rdd.rdd_id] = results
        self.metrics.rdds_materialized += 1
        self.metrics.partitions_computed += rdd.num_partitions
        if rdd._cache_requested:
            rdd._cached = results

    def partition(self, rdd: RDD, index: int) -> List[Any]:
        return self.all_partitions(rdd)[index]

    def shuffle(self, rdd: RDD, num_buckets: int,
                bucket_fn: Callable[[Any], Any]) -> List[List[Any]]:
        key = (rdd.rdd_id, num_buckets)
        with self._shuffle_lock:
            if key not in self._shuffles:
                buckets: List[List[Any]] = [[] for _ in range(num_buckets)]
                moved = 0
                for part in self.all_partitions(rdd):
                    for item in part:
                        buckets[_hash_partition(bucket_fn(item),
                                                num_buckets)].append(item)
                        moved += 1
                self._shuffles[key] = buckets
                self.metrics.shuffles += 1
                self.metrics.shuffle_records += moved
        return self._shuffles[key]
