"""A thin DataFrame layer over RDDs of dict rows.

Provides the relational verbs the paper's analyses use — select, where,
with_column, group_by().agg(), join, order_by — with named aggregate
functions ("count", "sum", "avg", "min", "max", "count_distinct").
Rows are plain dicts; ``Row`` is an alias kept for readability.

The layer's own operators are picklable callable objects, so a
DataFrame pipeline runs on the process backend whenever the *user's*
functions (predicates, column expressions) pickle too.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.rdd import RDD
from repro.util.errors import EngineError

Row = Dict[str, Any]

_AGGREGATES = ("count", "sum", "avg", "min", "max", "count_distinct")


# ------------------------------------------------------------- row operators
class _Project:
    __slots__ = ("columns",)

    def __init__(self, columns):
        self.columns = columns

    def __call__(self, row: Row) -> Row:
        return {c: row.get(c) for c in self.columns}


class _Extend:
    __slots__ = ("name", "fn")

    def __init__(self, name, fn):
        self.name = name
        self.fn = fn

    def __call__(self, row: Row) -> Row:
        out = dict(row)
        out[self.name] = self.fn(row)
        return out


class _Strip:
    __slots__ = ("dropped",)

    def __init__(self, dropped):
        self.dropped = dropped

    def __call__(self, row: Row) -> Row:
        return {k: v for k, v in row.items() if k not in self.dropped}


class _ColumnOf:
    __slots__ = ("column",)

    def __init__(self, column):
        self.column = column

    def __call__(self, row: Row) -> Any:
        return row.get(self.column)


class _ColumnOrZero:
    __slots__ = ("column",)

    def __init__(self, column):
        self.column = column

    def __call__(self, row: Row) -> Any:
        return row.get(self.column) or 0


class _KeyTuple:
    __slots__ = ("keys",)

    def __init__(self, keys):
        self.keys = keys

    def __call__(self, row: Row) -> Tuple:
        return tuple(row.get(k) for k in self.keys)


class _MergeJoin:
    __slots__ = ("on",)

    def __init__(self, on):
        self.on = on

    def __call__(self, kv: Tuple[Any, Tuple[Row, Optional[Row]]]) -> Row:
        _key, (lrow, rrow) = kv
        out = dict(lrow)
        for k, v in (rrow or {}).items():
            if k != self.on:
                out[k] = v
        return out


class _AggSeq:
    __slots__ = ("specs",)

    def __init__(self, specs):
        self.specs = specs

    def __call__(self, acc: Dict, row: Row) -> Dict:
        for out_col, (in_col, fn) in self.specs.items():
            value = row.get(in_col)
            slot = acc.setdefault(out_col, _zero(fn))
            acc[out_col] = _step(fn, slot, value)
        return acc


class _AggComb:
    __slots__ = ("specs",)

    def __init__(self, specs):
        self.specs = specs

    def __call__(self, a: Dict, b: Dict) -> Dict:
        for out_col, (_in, fn) in self.specs.items():
            a[out_col] = _merge(fn, a.get(out_col, _zero(fn)),
                                b.get(out_col, _zero(fn)))
        return a


class _AggFinish:
    __slots__ = ("keys", "specs")

    def __init__(self, keys, specs):
        self.keys = keys
        self.specs = specs

    def __call__(self, kv) -> Row:
        key_values, acc = kv
        out = dict(zip(self.keys, key_values))
        for out_col, (_in, fn) in self.specs.items():
            out[out_col] = _final(fn, acc.get(out_col, _zero(fn)))
        return out


class DataFrame:
    """A named-column view over an RDD of dict rows."""

    def __init__(self, rdd: RDD, columns: Optional[Sequence[str]] = None):
        self._rdd = rdd
        self.columns = list(columns) if columns is not None else None

    # ------------------------------------------------------------ construction
    @classmethod
    def from_records(cls, context, records: Sequence[Row],
                     num_partitions: Optional[int] = None) -> "DataFrame":
        rdd = context.parallelize(records, num_partitions)
        columns = sorted(records[0].keys()) if records else []
        return cls(rdd, columns)

    @property
    def rdd(self) -> RDD:
        return self._rdd

    # ------------------------------------------------------------- transforms
    def select(self, *columns: str) -> "DataFrame":
        wanted = list(columns)
        return DataFrame(self._rdd.map(_Project(wanted)), wanted)

    def where(self, predicate: Callable[[Row], bool]) -> "DataFrame":
        return DataFrame(self._rdd.filter(predicate), self.columns)

    def with_column(self, name: str,
                    fn: Callable[[Row], Any]) -> "DataFrame":
        columns = None
        if self.columns is not None:
            columns = self.columns + ([name] if name not in self.columns else [])
        return DataFrame(self._rdd.map(_Extend(name, fn)), columns)

    def drop(self, *names: str) -> "DataFrame":
        dropped = frozenset(names)
        columns = ([c for c in self.columns if c not in dropped]
                   if self.columns is not None else None)
        return DataFrame(self._rdd.map(_Strip(dropped)), columns)

    def group_by(self, *keys: str) -> "GroupedFrame":
        if not keys:
            raise EngineError("group_by needs at least one key column")
        return GroupedFrame(self, list(keys))

    def join(self, other: "DataFrame", on: str,
             how: str = "inner") -> "DataFrame":
        """Equi-join on a shared column; 'inner' or 'left'."""
        if how not in ("inner", "left"):
            raise EngineError(f"unsupported join type: {how}")
        left = self._rdd.key_by(_ColumnOf(on))
        right = other._rdd.key_by(_ColumnOf(on))
        joined = (left.left_outer_join(right) if how == "left"
                  else left.join(right))
        return DataFrame(joined.map(_MergeJoin(on)))

    def order_by(self, column: str, ascending: bool = True) -> "DataFrame":
        return DataFrame(
            self._rdd.sort_by(_ColumnOf(column), ascending=ascending),
            self.columns)

    def limit(self, n: int) -> "DataFrame":
        rows = self._rdd.take(n)
        return DataFrame(self._rdd.context.parallelize(rows), self.columns)

    # ----------------------------------------------------------------- actions
    def collect(self) -> List[Row]:
        return self._rdd.collect()

    def count(self) -> int:
        return self._rdd.count()

    def to_pylist(self) -> List[Row]:
        return self.collect()

    def column_values(self, column: str) -> List[Any]:
        return self._rdd.map(_ColumnOf(column)).collect()

    def describe(self, column: str) -> Dict[str, float]:
        """Numeric summary (count/mean/stdev/min/max) of one column."""
        return self._rdd.map(_ColumnOrZero(column)).stats()

    def distinct_values(self, column: str) -> List[Any]:
        """Sorted distinct values of one column."""
        return sorted(self._rdd.map(_ColumnOf(column))
                      .distinct().collect(),
                      key=lambda v: (v is None, v))


class GroupedFrame:
    """Result of ``DataFrame.group_by`` — call :meth:`agg` to aggregate."""

    def __init__(self, frame: DataFrame, keys: List[str]):
        self._frame = frame
        self._keys = keys

    def agg(self, **aggregates: Tuple[str, str]) -> DataFrame:
        """Aggregate with ``out_col=(in_col, fn)`` pairs.

        Example::

            df.group_by("market").agg(n=("company_id", "count"),
                                      total=("raised_usd", "sum"))
        """
        for out_col, (in_col, fn) in aggregates.items():
            if fn not in _AGGREGATES:
                raise EngineError(
                    f"unknown aggregate {fn!r} for {out_col!r}; "
                    f"expected one of {_AGGREGATES}")
        keys = self._keys
        specs = dict(aggregates)
        keyed = self._frame.rdd.key_by(_KeyTuple(keys))
        reduced = keyed.aggregate_by_key({}, _AggSeq(specs), _AggComb(specs))
        columns = keys + list(specs)
        return DataFrame(reduced.map(_AggFinish(keys, specs)), columns)


def _zero(fn: str):
    if fn == "count":
        return 0
    if fn == "sum":
        return 0
    if fn == "avg":
        return (0, 0)
    if fn == "min":
        return None
    if fn == "max":
        return None
    if fn == "count_distinct":
        return set()
    raise EngineError(f"unknown aggregate {fn!r}")


def _step(fn: str, acc, value):
    if fn == "count":
        return acc + 1
    if fn == "sum":
        return acc + (value or 0)
    if fn == "avg":
        total, count = acc
        return (total + (value or 0), count + 1)
    if fn == "min":
        return value if acc is None or (value is not None and value < acc) else acc
    if fn == "max":
        return value if acc is None or (value is not None and value > acc) else acc
    if fn == "count_distinct":
        acc.add(value)
        return acc
    raise EngineError(f"unknown aggregate {fn!r}")


def _merge(fn: str, a, b):
    if fn in ("count", "sum"):
        return a + b
    if fn == "avg":
        return (a[0] + b[0], a[1] + b[1])
    if fn == "min":
        candidates = [x for x in (a, b) if x is not None]
        return min(candidates) if candidates else None
    if fn == "max":
        candidates = [x for x in (a, b) if x is not None]
        return max(candidates) if candidates else None
    if fn == "count_distinct":
        return a | b
    raise EngineError(f"unknown aggregate {fn!r}")


def _final(fn: str, acc):
    if fn == "avg":
        total, count = acc
        return total / count if count else 0.0
    if fn == "count_distinct":
        return len(acc)
    return acc
