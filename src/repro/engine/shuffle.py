"""The shuffle fast path: partitioners, map-side combine, sized blocks.

A wide dependency moves data in two halves. The *map* half
(:class:`MapShuffleTask`) runs once per parent partition: it splits the
partition into per-reduce-bucket lists, optionally **pre-aggregates**
each list with the stage's combiner (Spark's map-side combine — the
reason a skewed ``reduce_by_key`` ships hundreds of records instead of
millions), and optionally **seals** each list into a
:class:`ShuffleBlock` — one pickle per (map-partition, reduce-bucket),
zlib-compressed above a size threshold. The *reduce* half
(:class:`ReduceShuffleTask`) runs once per reduce bucket: it decodes
the blocks addressed to it, concatenates them in map-partition order
(which keeps every backend byte-deterministic) and applies the stage's
post operator.

Blocks matter on the process backend: the exchange payload is
serialized exactly once, on the worker that produced it, and crosses
the two remaining pickle walls (worker→driver, driver→reducer) as an
opaque ``bytes`` object instead of being re-pickled as a list of raw
records each hop.

The deterministic key hashing (`_canonical_bytes` / `_stable_hash` /
`_hash_partition`) lives here too; :mod:`repro.engine.rdd` re-exports
it unchanged — CRC32 bucket placement is frozen by regression tests.
"""

from __future__ import annotations

import bisect
import pickle
import zlib
from typing import Any, Callable, List, Optional

from repro.engine.columnar import BatchBlock

#: compress a block only when its pickle is at least this large (bytes)
DEFAULT_COMPRESS_THRESHOLD = 4096

#: sample keys taken per parent partition when planning a range sort
RANGE_SAMPLES_PER_PARTITION = 20


def stride_sample(seq: List[Any], k: int) -> List[Any]:
    """At most ``k`` elements taken at a fixed stride — no RNG, so the
    sample is a pure function of the sequence. The adaptive planner's
    size estimates (:mod:`repro.engine.planner`) sample through this —
    the same idiom :func:`plan_range_partitioner` uses for its cut
    points — which is what keeps retries, speculation and backend
    choice from ever perturbing a data-dependent plan."""
    if not seq:
        return []
    stride = max(1, len(seq) // max(1, k))
    return seq[::stride][:k]


# --------------------------------------------------------------------- hashing
def _canonical_bytes(key: Any) -> bytes:
    """Deterministic, type-tagged encoding: equal keys → equal bytes.

    Builtin ``hash`` is salted per interpreter for strings
    (``PYTHONHASHSEED``), which would make shuffle placement differ
    between runs — and between the driver and a process-pool worker.
    Numeric cross-type equality (``1 == 1.0 == True``) is normalized so
    equal keys always land in the same bucket.
    """
    if key is None:
        return b"N"
    if isinstance(key, bool):
        key = int(key)
    if isinstance(key, float) and key.is_integer() and abs(key) < 2 ** 63:
        key = int(key)
    if isinstance(key, int):
        return b"i" + str(key).encode("ascii")
    if isinstance(key, float):
        return b"f" + repr(key).encode("ascii")
    if isinstance(key, str):
        return b"s" + key.encode("utf-8", "surrogatepass")
    if isinstance(key, bytes):
        return b"b" + key
    if isinstance(key, tuple):
        parts = [_canonical_bytes(item) for item in key]
        return b"t" + b"".join(
            str(len(p)).encode("ascii") + b":" + p for p in parts)
    if isinstance(key, frozenset):
        total = sum(zlib.crc32(_canonical_bytes(item))
                    for item in key) & 0xFFFFFFFF
        return b"z" + str(total).encode("ascii")
    # last resort: types with a deterministic repr (dataclasses, enums)
    return b"r" + repr(key).encode("utf-8", "surrogatepass")


def _stable_hash(key: Any) -> int:
    return zlib.crc32(_canonical_bytes(key))


def _hash_partition(key: Any, num_partitions: int) -> int:
    return _stable_hash(key) % num_partitions


# ---------------------------------------------------------------- partitioners
class HashPartitioner:
    """CRC32 bucket placement over a key function — the default."""

    __slots__ = ("key_fn", "num_buckets")

    def __init__(self, key_fn: Callable[[Any], Any], num_buckets: int):
        self.key_fn = key_fn
        self.num_buckets = num_buckets

    def __call__(self, item: Any) -> int:
        return _hash_partition(self.key_fn(item), self.num_buckets)


class RangePartitioner:
    """Key-range bucket placement from sampled cut points.

    Ascending, ``cuts = [c0 <= c1 <= ...]`` sends a key to the first
    bucket whose cut is ``> key`` (``bisect_right``); descending
    mirrors the index so partition 0 holds the largest keys. Equal keys
    always share a bucket, which is what keeps a range sort stable.
    """

    __slots__ = ("key_fn", "cuts", "descending")

    def __init__(self, key_fn: Callable[[Any], Any], cuts: List[Any],
                 descending: bool = False):
        self.key_fn = key_fn
        self.cuts = cuts
        self.descending = descending

    def __call__(self, item: Any) -> int:
        index = bisect.bisect_right(self.cuts, self.key_fn(item))
        return len(self.cuts) - index if self.descending else index


def plan_range_partitioner(parts: List[List[Any]], num_buckets: int,
                           key_fn: Callable[[Any], Any],
                           ascending: bool = True,
                           samples_per_partition: int =
                           RANGE_SAMPLES_PER_PARTITION) -> RangePartitioner:
    """Sample keys from materialized parent partitions → cut points.

    Sampling strides deterministically through each partition (no RNG:
    same data, same cuts, every backend). Duplicate cut points are
    collapsed, so heavily repeated keys yield fewer, wider buckets
    rather than empty ones in the middle.
    """
    sample: List[Any] = []
    for part in parts:
        if not part:
            continue
        stride = max(1, len(part) // samples_per_partition)
        sample.extend(key_fn(item) for item in part[::stride])
    if not sample or num_buckets <= 1:
        return RangePartitioner(key_fn, [], descending=not ascending)
    sample.sort()
    cuts: List[Any] = []
    for i in range(1, num_buckets):
        cut = sample[min(len(sample) - 1, (i * len(sample)) // num_buckets)]
        if not cuts or cut != cuts[-1]:
            cuts.append(cut)
    return RangePartitioner(key_fn, cuts, descending=not ascending)


# --------------------------------------------------------------------- blocks
class ShuffleBlock:
    """One sealed (map-partition, reduce-bucket) exchange payload."""

    CODEC_PICKLE = 0
    CODEC_ZLIB = 1

    __slots__ = ("payload", "count", "raw_bytes", "codec", "header_bytes")

    def __init__(self, payload: bytes, count: int, raw_bytes: int,
                 codec: int, header_bytes: int = 0):
        self.payload = payload
        self.count = count
        self.raw_bytes = raw_bytes
        self.codec = codec
        self.header_bytes = header_bytes

    @classmethod
    def seal(cls, items: List[Any], compress: bool = False,
             threshold: int = DEFAULT_COMPRESS_THRESHOLD) -> "ShuffleBlock":
        payload = pickle.dumps(items, protocol=pickle.HIGHEST_PROTOCOL)
        raw_bytes = len(payload)
        codec = cls.CODEC_PICKLE
        if compress and raw_bytes >= threshold:
            squeezed = zlib.compress(payload, 6)
            if len(squeezed) < raw_bytes:
                payload, codec = squeezed, cls.CODEC_ZLIB
        block = cls(payload, len(items), raw_bytes, codec)
        block.header_bytes = block._measure_header()
        return block

    def _measure_header(self) -> int:
        """Pickled envelope size beyond the payload itself — sealed
        blocks used to report ``len(payload)`` as bytes moved, silently
        under-counting what actually crosses each pickle wall."""
        payload, self.payload = self.payload, b""
        try:
            return len(pickle.dumps(self,
                                    protocol=pickle.HIGHEST_PROTOCOL))
        finally:
            self.payload = payload

    def decode(self) -> List[Any]:
        payload = self.payload
        if self.codec == self.CODEC_ZLIB:
            payload = zlib.decompress(payload)
        return pickle.loads(payload)

    @property
    def nbytes(self) -> int:
        return len(self.payload) + self.header_bytes

    @property
    def shm_bytes(self) -> int:
        """Uniform accounting with :class:`BatchBlock`: a classic
        pickled block never moves bytes through shared memory."""
        return 0

    @property
    def pickled_nbytes(self) -> int:
        return self.nbytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        codec = "zlib" if self.codec == self.CODEC_ZLIB else "pickle"
        return (f"<ShuffleBlock {self.count} recs "
                f"{self.nbytes}/{self.raw_bytes}B {codec}>")


class MapShuffleOutput:
    """What one map task hands back: per-bucket payloads + record counts."""

    __slots__ = ("buckets", "records_in", "records_out")

    def __init__(self, buckets: List[Any], records_in: int,
                 records_out: int):
        self.buckets = buckets
        self.records_in = records_in
        self.records_out = records_out


# ---------------------------------------------------------------------- tasks
class MapShuffleTask:
    """The map half of an exchange: bucket → combine → seal.

    ``partitioner`` of ``None`` round-robins by global element position
    (repartition), which is why each task receives ``(offset, items)``
    — no shared mutable state, deterministic chunk by chunk. A
    ``combiner`` (when the stage has one) collapses each bucket list
    before anything is shipped; combined buckets hold partial
    aggregates the reduce-side post operator knows how to merge.

    Columnar mode changes two things. Buckets seal into
    :class:`~repro.engine.columnar.BatchBlock`s (batch-encoded, and
    shm-backed when ``shm_prefix`` is set) instead of pickled
    :class:`ShuffleBlock`s. And the combiner runs *per batch*: a bucket
    larger than ``batch_rows`` is combined in batch-sized slices whose
    partials are folded left-to-right with ``merge`` — the stage's
    reduce-side post operator, the one contract-bound to merge partial
    aggregates — so the result is byte-identical to combining the
    bucket in one pass.
    """

    __slots__ = ("partitioner", "num_buckets", "combiner", "seal",
                 "compress", "threshold", "columnar", "batch_rows",
                 "merge", "shm_prefix")

    def __init__(self, partitioner: Optional[Callable[[Any], int]],
                 num_buckets: int,
                 combiner: Optional[Callable[[List[Any]], List[Any]]] = None,
                 seal: bool = False, compress: bool = False,
                 threshold: int = DEFAULT_COMPRESS_THRESHOLD,
                 columnar: bool = False, batch_rows: int = 0,
                 merge: Optional[Callable[[List[Any]], List[Any]]] = None,
                 shm_prefix: Optional[str] = None):
        self.partitioner = partitioner
        self.num_buckets = num_buckets
        self.combiner = combiner
        self.seal = seal
        self.compress = compress
        self.threshold = threshold
        self.columnar = columnar
        self.batch_rows = batch_rows
        self.merge = merge
        self.shm_prefix = shm_prefix

    def _combine_batched(self, bucket: List[Any]) -> List[Any]:
        size = self.batch_rows
        combine = self.combiner
        if len(bucket) <= size:
            return combine(bucket)
        merge = self.merge
        partial: Optional[List[Any]] = None
        for start in range(0, len(bucket), size):
            piece = combine(bucket[start:start + size])
            partial = piece if partial is None else merge(partial + piece)
        return partial

    def __call__(self, chunk) -> MapShuffleOutput:
        offset, items = chunk
        n = self.num_buckets
        buckets: List[List[Any]] = [[] for _ in range(n)]
        place = self.partitioner
        if place is None:
            for i, item in enumerate(items):
                buckets[(offset + i) % n].append(item)
        else:
            for item in items:
                buckets[place(item)].append(item)
        records_in = len(items)
        combine = self.combiner
        if combine is not None:
            if self.columnar and self.batch_rows and self.merge is not None:
                buckets = [self._combine_batched(bucket) if bucket
                           else bucket for bucket in buckets]
            else:
                buckets = [combine(bucket) if bucket else bucket
                           for bucket in buckets]
        records_out = sum(len(bucket) for bucket in buckets)
        if self.seal:
            if self.columnar:
                sealed: List[Any] = [
                    BatchBlock.seal(bucket, self.compress, self.threshold,
                                    self.shm_prefix)
                    if bucket else None
                    for bucket in buckets]
            else:
                sealed = [
                    ShuffleBlock.seal(bucket, self.compress, self.threshold)
                    if bucket else None
                    for bucket in buckets]
            return MapShuffleOutput(sealed, records_in, records_out)
        return MapShuffleOutput(buckets, records_in, records_out)


def merge_pieces(pieces: List[Any]) -> List[Any]:
    """Concatenate one reduce bucket's payloads in map-partition order."""
    merged: List[Any] = []
    for piece in pieces:
        if piece is None:
            continue
        if isinstance(piece, (ShuffleBlock, BatchBlock)):
            merged.extend(piece.decode())
        else:
            merged.extend(piece)
    return merged


class ReduceShuffleTask:
    """The reduce half: decode + concatenate pieces, run the post op."""

    __slots__ = ("post",)

    def __init__(self, post: Callable[[List[Any]], List[Any]]):
        self.post = post

    def __call__(self, pieces: List[Any]) -> List[Any]:
        return self.post(merge_pieces(pieces))


# ---------------------------------------------------------------------- joins
class BroadcastHashJoinOp:
    """Probe one big-side partition against a broadcast hash table.

    The small side was collected into ``table`` (key → list of values)
    on the driver; each probe task streams its partition through the
    table — no shuffle of either side. ``small_is_right`` records which
    join operand the table came from so output pairs keep their
    ``(left_value, right_value)`` orientation.
    """

    __slots__ = ("table", "how", "small_is_right")

    def __init__(self, table, how: str, small_is_right: bool):
        self.table = table
        self.how = how
        self.small_is_right = small_is_right

    def __call__(self, part: List[Any]) -> List[Any]:
        out: List[Any] = []
        table = self.table
        if self.small_is_right:
            left_outer = self.how == "left"
            for key, left_value in part:
                matches = table.get(key)
                if matches:
                    out.extend((key, (left_value, right_value))
                               for right_value in matches)
                elif left_outer:
                    out.append((key, (left_value, None)))
        else:  # inner join probing the right side against a left table
            for key, right_value in part:
                matches = table.get(key)
                if matches:
                    out.extend((key, (left_value, right_value))
                               for left_value in matches)
        return out


class CogroupJoinTask:
    """Shuffled-join reduce task: cogroup one bucket's two sides, emit.

    Receives ``(left_pieces, right_pieces)`` for a single reduce bucket
    and reproduces the classic cogroup-then-flatten ordering: keys in
    first-appearance order (left side first), pairs in the left×right
    nested order.
    """

    __slots__ = ("how",)

    def __init__(self, how: str):
        self.how = how

    def __call__(self, sides) -> List[Any]:
        left_pieces, right_pieces = sides
        grouped = {}
        for key, value in merge_pieces(left_pieces):
            entry = grouped.get(key)
            if entry is None:
                entry = grouped[key] = ([], [])
            entry[0].append(value)
        for key, value in merge_pieces(right_pieces):
            entry = grouped.get(key)
            if entry is None:
                entry = grouped[key] = ([], [])
            entry[1].append(value)
        out: List[Any] = []
        left_outer = self.how == "left"
        for key, (lefts, rights) in grouped.items():
            if rights:
                out.extend((key, (left_value, right_value))
                           for left_value in lefts
                           for right_value in rights)
            elif left_outer:
                out.extend((key, (left_value, None))
                           for left_value in lefts)
        return out


def payload_bytes(partitions: List[List[Any]]) -> int:
    """Pickled size of a payload — what 'bytes moved' means for a
    process pool; 0 when the payload isn't picklable."""
    try:
        return len(pickle.dumps(partitions,
                                protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 0
