"""The entry point of the mini-Spark engine."""

from __future__ import annotations

import json
from typing import Any, Callable, List, Optional, Sequence

from repro.engine.backends import ExecutionBackend, resolve_backend
from repro.engine.metrics import MetricsTrace
from repro.engine.rdd import RDD, JobRunner
from repro.util.errors import EngineError


class SparkLiteContext:
    """Creates RDDs and executes jobs over a pluggable backend.

    Args:
        parallelism: worker count for the backend; also the default
            partition count for :meth:`parallelize`.
        backend: ``"serial"`` / ``"thread"`` / ``"process"`` or an
            :class:`~repro.engine.backends.ExecutionBackend` instance.
            Defaults to the thread backend — cheap and closure-friendly.
            Pick ``"process"`` for CPU-bound stages built from picklable
            (module-level) functions; pick ``"serial"`` as the reference
            semantics every other backend is differential-tested against.
        task_retries: per-partition task attempt budget beyond the
            first run (Spark-style deterministic re-execution). Extra
            attempts surface as ``task_attempts``/``retried_tasks`` in
            each job's metrics.

    Note:
        Whatever the backend, the execution *model* is Spark's —
        partitions, stages, shuffles. The A1 ablation benchmark sweeps
        backends and partition counts to measure what each buys.
    """

    def __init__(self, parallelism: int = 4,
                 backend: Any = None,
                 task_retries: int = 0):
        if parallelism < 1:
            raise EngineError("parallelism must be >= 1")
        if task_retries < 0:
            raise EngineError("task_retries must be >= 0")
        self.parallelism = parallelism
        self.backend: ExecutionBackend = resolve_backend(
            backend, parallelism, task_retries)
        self._stopped = False
        self.jobs_run = 0
        #: JobMetrics of the most recent action (None before any job).
        self.last_job_metrics = None
        #: bounded per-job metrics history (``--engine-metrics`` dumps it)
        self.metrics_trace = MetricsTrace()

    # ---------------------------------------------------------------- creation
    def parallelize(self, data: Sequence[Any],
                    num_partitions: Optional[int] = None) -> RDD:
        """Distribute an in-memory sequence into an RDD."""
        items = list(data)
        parts = max(1, min(num_partitions or self.parallelism,
                           max(1, len(items))))
        chunk = -(-len(items) // parts) if items else 1
        slices = [items[i * chunk:(i + 1) * chunk] for i in range(parts)]

        def compute(runner: JobRunner, index: int) -> List[Any]:
            return slices[index]
        return RDD(self, parts, (), compute, name="parallelize")

    def json_dataset(self, dfs, directory: str) -> RDD:
        """One RDD partition per DFS part file (like HDFS input splits)."""
        paths = dfs.glob_parts(directory)
        if not paths:
            raise EngineError(f"no part files under {directory}")

        def compute(runner: JobRunner, index: int) -> List[Any]:
            text = dfs.read_text(paths[index])
            return [json.loads(line) for line in text.splitlines() if line]
        return RDD(self, len(paths), (), compute, name=f"json:{directory}")

    def empty(self) -> RDD:
        return self.parallelize([])

    # ---------------------------------------------------------------- execution
    def _check_alive(self) -> None:
        if self._stopped:
            raise EngineError("context has been stopped")

    def _map_indices(self, count: int,
                     fn: Callable[[int], List[Any]]) -> List[List[Any]]:
        """Legacy shim: run an indexed driver closure on the backend."""
        self._check_alive()
        return self.backend.run_local(fn, count)

    def _run_job_partitions(self, rdd: RDD) -> List[List[Any]]:
        self._check_alive()
        self.jobs_run += 1
        runner = JobRunner(self)
        result = runner.all_partitions(rdd)
        self.last_job_metrics = runner.metrics
        self.metrics_trace.append(runner.metrics)
        return result

    def _run_job(self, rdd: RDD) -> List[Any]:
        return [x for part in self._run_job_partitions(rdd) for x in part]

    def stop(self) -> None:
        self.backend.close()
        self._stopped = True

    def __enter__(self) -> "SparkLiteContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
