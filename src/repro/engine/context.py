"""The entry point of the mini-Spark engine."""

from __future__ import annotations

import json
from typing import Any, Callable, List, Optional, Sequence

from repro.engine.backends import (ExecutionBackend, SupervisePolicy,
                                   resolve_backend)
from repro.engine.cache import CacheManager
from repro.engine.checkpoint import CheckpointManager
from repro.engine.metrics import MetricsTrace
from repro.engine.columnar import DEFAULT_BATCH_ROWS, shm_available
from repro.engine.planner import (DEFAULT_BROADCAST_CAPACITY,
                                  DEFAULT_TARGET_PARTITION_BYTES,
                                  AdaptivePlanner)
from repro.engine.rdd import RDD, JobRunner
from repro.engine.shuffle import DEFAULT_COMPRESS_THRESHOLD
from repro.util.errors import EngineError


class SparkLiteContext:
    """Creates RDDs and executes jobs over a pluggable backend.

    Args:
        parallelism: worker count for the backend; also the default
            partition count for :meth:`parallelize`.
        backend: ``"serial"`` / ``"thread"`` / ``"process"`` or an
            :class:`~repro.engine.backends.ExecutionBackend` instance.
            Defaults to the thread backend — cheap and closure-friendly.
            Pick ``"process"`` for CPU-bound stages built from picklable
            (module-level) functions; pick ``"serial"`` as the reference
            semantics every other backend is differential-tested against.
        task_retries: per-partition task attempt budget beyond the
            first run (Spark-style deterministic re-execution). Extra
            attempts surface as ``task_attempts``/``retried_tasks`` in
            each job's metrics.
        shuffle_combine: run map-side combiners on stages that declare
            one (``reduce_by_key`` & co.). On by default; turning it off
            is for A/B measurement — results are identical either way.
        shuffle_compress: zlib-compress shuffle blocks whose serialized
            size is at least ``shuffle_compress_threshold`` bytes.
        broadcast_join_threshold: serialized-size ceiling (bytes) under
            which one side of a ``join`` is broadcast instead of
            shuffling both sides. 0 disables broadcast joins (default —
            platform configs opt in).
        cache_budget: LRU byte budget for ``persist()``-ed partitions;
            ``None`` means unbounded. Over-budget entries spill to
            ``cache_dfs`` when one is attached, else drop (recompute).
        cache_dfs: a :class:`~repro.dfs.filesystem.MiniDfs` for cache
            spill and ``persist(storage="dfs")``.
        task_deadline: wall-second budget per partition task; a task
            running longer is declared a zombie and replaced by an
            in-driver attempt (the job never wedges on a stuck
            executor). ``None`` disables deadlines.
        speculation: launch deterministic backup attempts for straggler
            tasks once three quarters of a stage has completed;
            first result wins, outputs stay byte-identical.
        engine_faults: a :class:`~repro.net.faults.FaultSchedule` whose
            engine specs (``kill_worker`` / ``hang_task``) are injected
            into partition tasks — chaos testing for the supervisor.
        checkpoint_dir: DFS directory for :meth:`RDD.checkpoint`;
            ``None`` leaves checkpointing unconfigured.
        checkpoint_dfs: the MiniDfs holding checkpoints (defaults to
            ``cache_dfs``).
        engine_columnar: run the columnar hot path — elementwise narrow
            ops execute batch-at-a-time, shuffle buckets combine per
            batch and seal into
            :class:`~repro.engine.columnar.BatchBlock`s. Results are
            byte-identical to the row engine (differential-tested);
            only the execution strategy changes.
        batch_rows: rows per record batch for the columnar engine
            (narrow-op slices, per-batch combiner chunks, batch-native
            dataset scans).
        shuffle_shm: move sealed columnar blocks through
            ``multiprocessing.shared_memory`` instead of pickling their
            bytes. ``None`` (default) auto-enables exactly when it
            helps: columnar engine on, a backend whose tasks live in
            other processes, and a platform that can create segments.
            ``False`` forces the pickle path; ``True`` requests shm but
            still degrades cleanly to pickled payloads when the
            platform refuses.
        engine_adaptive: adaptive, cost-based planning (see
            :mod:`repro.engine.planner`): runtime stats sampling at
            every stage boundary, post-shuffle coalescing of undersized
            reduce partitions, skew-split of hot buckets, an
            observed-size broadcast join decision that *replaces* the
            static ``broadcast_join_threshold``, and filter/projection
            pushdown into dataset scans. Action results stay
            byte-identical to the naive plans (differential-tested);
            only the physical execution — bytes moved, tasks run,
            part-file layout of saved datasets — changes.
        target_partition_bytes: the adaptive planner's coalesce/split
            target — merge adjacent reduce buckets until they reach
            this many serialized bytes, split hot buckets back down
            toward it.
        broadcast_capacity: serialized-size ceiling for the adaptive
            broadcast decision (only consulted when
            ``engine_adaptive`` is on).

    Note:
        Whatever the backend, the execution *model* is Spark's —
        partitions, stages, shuffles. The A1 ablation benchmark sweeps
        backends and partition counts to measure what each buys.
    """

    def __init__(self, parallelism: int = 4,
                 backend: Any = None,
                 task_retries: int = 0,
                 shuffle_combine: bool = True,
                 shuffle_compress: bool = False,
                 shuffle_compress_threshold: int = DEFAULT_COMPRESS_THRESHOLD,
                 broadcast_join_threshold: int = 0,
                 cache_budget: Optional[int] = None,
                 cache_dfs: Any = None,
                 task_deadline: Optional[float] = None,
                 speculation: bool = False,
                 engine_faults: Any = None,
                 checkpoint_dir: Optional[str] = None,
                 checkpoint_dfs: Any = None,
                 engine_columnar: bool = False,
                 batch_rows: int = DEFAULT_BATCH_ROWS,
                 shuffle_shm: Optional[bool] = None,
                 engine_adaptive: bool = False,
                 target_partition_bytes: int = DEFAULT_TARGET_PARTITION_BYTES,
                 broadcast_capacity: int = DEFAULT_BROADCAST_CAPACITY):
        if parallelism < 1:
            raise EngineError("parallelism must be >= 1")
        if batch_rows < 1:
            raise EngineError("batch_rows must be >= 1")
        if task_retries < 0:
            raise EngineError("task_retries must be >= 0")
        if broadcast_join_threshold < 0:
            raise EngineError("broadcast_join_threshold must be >= 0")
        if target_partition_bytes < 1:
            raise EngineError("target_partition_bytes must be >= 1")
        if broadcast_capacity < 0:
            raise EngineError("broadcast_capacity must be >= 0")
        if cache_budget is not None and cache_budget < 0:
            raise EngineError("cache_budget must be >= 0")
        if task_deadline is not None and task_deadline <= 0:
            raise EngineError("task_deadline must be > 0 seconds")
        self.parallelism = parallelism
        #: how every stage batch is supervised (see engine.supervisor)
        self.supervise_policy = SupervisePolicy(
            task_deadline_s=task_deadline,
            speculation=speculation,
            engine_faults=engine_faults)
        self.backend: ExecutionBackend = resolve_backend(
            backend, parallelism, task_retries, self.supervise_policy)
        self.shuffle_combine = shuffle_combine
        self.shuffle_compress = shuffle_compress
        self.shuffle_compress_threshold = shuffle_compress_threshold
        self.broadcast_join_threshold = broadcast_join_threshold
        self.engine_columnar = engine_columnar
        self.batch_rows = batch_rows
        self.shuffle_shm = shuffle_shm
        self.engine_adaptive = engine_adaptive
        #: the JobRunner consults this (None = every adaptive pass off)
        self.adaptive_planner = AdaptivePlanner(
            target_partition_bytes=target_partition_bytes,
            broadcast_capacity=broadcast_capacity) \
            if engine_adaptive else None
        #: cross-job partition store backing RDD.persist()/cache()
        self.cache_manager = CacheManager(budget_bytes=cache_budget,
                                          dfs=cache_dfs)
        #: durable lineage truncation backing RDD.checkpoint()
        self.checkpoint_manager: Optional[CheckpointManager] = None
        if checkpoint_dir is not None:
            self.set_checkpoint_dir(checkpoint_dir,
                                    checkpoint_dfs or cache_dfs)
        self._stopped = False
        self.jobs_run = 0
        #: JobMetrics of the most recent action (None before any job).
        self.last_job_metrics = None
        #: bounded per-job metrics history (``--engine-metrics`` dumps it)
        self.metrics_trace = MetricsTrace()
        #: dataset-scan RDDs keyed by (dfs, dir, part files) so repeated
        #: reads of one directory share a lineage node — and its cache
        self._datasets = {}

    @property
    def shm_enabled(self) -> bool:
        """Should exchanges back their sealed blocks with shared memory?

        Tri-state resolution of ``shuffle_shm``: an explicit ``False``
        wins outright; otherwise shm needs the columnar engine, a
        working ``multiprocessing.shared_memory``, and — when left on
        auto (``None``) — a backend whose tasks actually live in other
        processes (shm buys nothing on serial/thread).
        """
        if not self.engine_columnar or self.shuffle_shm is False:
            return False
        if self.shuffle_shm is None \
                and not getattr(self.backend, "supports_shm", False):
            return False
        return shm_available()

    def set_checkpoint_dir(self, directory: str, dfs: Any) -> None:
        """Configure where :meth:`RDD.checkpoint` persists partitions."""
        if dfs is None:
            raise EngineError(
                "checkpointing needs a MiniDfs; pass checkpoint_dfs= or "
                "cache_dfs= to the context")
        self.checkpoint_manager = CheckpointManager(dfs, directory)

    # ---------------------------------------------------------------- creation
    def parallelize(self, data: Sequence[Any],
                    num_partitions: Optional[int] = None) -> RDD:
        """Distribute an in-memory sequence into an RDD."""
        items = list(data)
        parts = max(1, min(num_partitions or self.parallelism,
                           max(1, len(items))))
        chunk = -(-len(items) // parts) if items else 1
        slices = [items[i * chunk:(i + 1) * chunk] for i in range(parts)]

        def compute(runner: JobRunner, index: int) -> List[Any]:
            return slices[index]
        return RDD(self, parts, (), compute, name="parallelize")

    def json_dataset(self, dfs, directory: str) -> RDD:
        """One RDD partition per DFS part file (like HDFS input splits).

        Scans of the same directory with the same part files return the
        *same* RDD node, so ``dataset.persist()`` in one analysis is
        honored when another analysis re-opens the directory — the
        pipeline reads each dataset once, not once per job.
        """
        paths = dfs.glob_parts(directory)
        if not paths:
            raise EngineError(f"no part files under {directory}")
        key = (id(dfs), directory, tuple(paths))
        rdd = self._datasets.get(key)
        if rdd is not None:
            return rdd

        def compute(runner: JobRunner, index: int) -> List[Any]:
            text = dfs.read_text(paths[index])
            return [json.loads(line) for line in text.splitlines() if line]
        rdd = RDD(self, len(paths), (), compute, name=f"json:{directory}")
        # lets the adaptive planner fuse adjacent filter/map ops into
        # the read itself (repro.dfs.jsonlines.read_part_pushdown)
        rdd.scan_info = {"dfs": dfs, "paths": tuple(paths), "kind": "rows"}
        self._datasets[key] = rdd
        return rdd

    def json_batches(self, dfs, directory: str,
                     batch_rows: Optional[int] = None,
                     predicate: Optional[Callable] = None,
                     projection: Any = None) -> RDD:
        """Batch-native scan: one partition per part file, each a list
        of :class:`~repro.engine.columnar.RecordBatch`es of at most
        ``batch_rows`` records (defaults to the context's).

        ``flat_map(batch_to_rows)`` recovers the row view; pipelines
        that aggregate per batch skip the per-row object churn
        entirely.

        Explicit scan pushdown: ``predicate`` filters records during
        the read (their on-disk bytes count into the job's
        ``scan_bytes_skipped``); ``projection`` is a per-record
        callable or a sequence of field names to keep — the latter
        prunes whole columns from each built batch
        (``scan_fields_pruned`` counts the cut cells).
        """
        from repro.dfs.jsonlines import ScanCounters, read_part_batches
        paths = dfs.glob_parts(directory)
        if not paths:
            raise EngineError(f"no part files under {directory}")
        rows = batch_rows or self.batch_rows
        pushdown = ()
        if predicate is not None:
            pushdown += ("pred", id(predicate))
        if projection is not None:
            pushdown += (("proj", id(projection))
                         if callable(projection)
                         else ("proj", tuple(projection)))
        key = (id(dfs), directory, tuple(paths), "batches", rows, pushdown)
        rdd = self._datasets.get(key)
        if rdd is not None:
            return rdd

        def compute(runner: JobRunner, index: int) -> List[Any]:
            counters = ScanCounters()
            batches = read_part_batches(dfs, paths[index], rows,
                                        predicate=predicate,
                                        projection=projection,
                                        counters=counters)
            if predicate is not None or projection is not None:
                runner.record_scan_pushdown(
                    counters.bytes_skipped, counters.fields_pruned,
                    filters=1 if predicate is not None else 0,
                    projections=1 if projection is not None else 0)
            return batches
        rdd = RDD(self, len(paths), (), compute,
                  name=f"jsonb:{directory}")
        self._datasets[key] = rdd
        return rdd

    def json_files(self, dfs, paths: Sequence[str],
                   name: str = "files") -> RDD:
        """Scan an explicit list of JSON-lines files, one partition each.

        Unlike :meth:`json_dataset` this takes the exact file list, not
        a directory — the delta-aware incremental pipeline uses it to
        read only the delta parts an upsert dataset gained since a
        watermark (its deltas are not ``part-*`` files, and a directory
        scan would drag the whole base back in).
        """
        paths = list(paths)
        if not paths:
            raise EngineError("json_files needs at least one path")
        key = (id(dfs), "files", tuple(paths))
        rdd = self._datasets.get(key)
        if rdd is not None:
            return rdd

        def compute(runner: JobRunner, index: int) -> List[Any]:
            text = dfs.read_text(paths[index])
            return [json.loads(line) for line in text.splitlines() if line]
        rdd = RDD(self, len(paths), (), compute, name=f"jsonf:{name}")
        rdd.scan_info = {"dfs": dfs, "paths": tuple(paths), "kind": "rows"}
        self._datasets[key] = rdd
        return rdd

    def empty(self) -> RDD:
        return self.parallelize([])

    # ---------------------------------------------------------------- execution
    def _check_alive(self) -> None:
        if self._stopped:
            raise EngineError("context has been stopped")

    def _map_indices(self, count: int,
                     fn: Callable[[int], List[Any]]) -> List[List[Any]]:
        """Legacy shim: run an indexed driver closure on the backend."""
        self._check_alive()
        return self.backend.run_local(fn, count)

    def _run_job_partitions(self, rdd: RDD) -> List[List[Any]]:
        self._check_alive()
        self.jobs_run += 1
        runner = JobRunner(self)
        try:
            result = runner.all_partitions(rdd)
        finally:
            # shm segments must not outlive the job, even a failed one —
            # decoded results are plain row lists with no references in
            runner.release_shuffle_segments()
        self.last_job_metrics = runner.metrics
        self.metrics_trace.append(runner.metrics)
        return result

    def _run_job(self, rdd: RDD) -> List[Any]:
        return [x for part in self._run_job_partitions(rdd) for x in part]

    def _run_job_take(self, rdd: RDD, n: int) -> List[Any]:
        """A short-circuiting job: stop once ``n`` elements are gathered."""
        self._check_alive()
        self.jobs_run += 1
        runner = JobRunner(self)
        try:
            result = runner.take(rdd, n)
        finally:
            runner.release_shuffle_segments()
        self.last_job_metrics = runner.metrics
        self.metrics_trace.append(runner.metrics)
        return result

    def stop(self) -> None:
        self.backend.close()
        self._stopped = True

    def __enter__(self) -> "SparkLiteContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
