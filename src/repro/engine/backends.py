"""Pluggable execution backends for the SparkLite engine.

The engine's job runner hands each stage to an :class:`ExecutionBackend`
as a batch of independent tasks — ``fn`` applied to each element of
``inputs``. Three implementations ship:

* :class:`SerialBackend` — one task at a time on the driver thread.
  The reference semantics every other backend is tested against.
* :class:`ThreadBackend` — a ``ThreadPoolExecutor``. The historical
  behaviour: cheap, shares memory, but GIL-bound for CPU work.
* :class:`ProcessBackend` — a ``ProcessPoolExecutor``. Partition tasks
  are pickled to worker processes, so CPU-bound stages scale past the
  GIL *when the stage's functions pickle* (module-level functions,
  ``operator`` callables, the engine's own operator objects). Tasks
  that will not pickle — lambdas, local closures — transparently fall
  back to in-driver execution, and the fallback is counted in the
  job's metrics rather than hidden.

Backends are selected by name (``"serial"`` / ``"thread"`` /
``"process"``) or by passing an instance to
``SparkLiteContext(backend=...)``.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, List, Optional, Tuple

from repro.util.errors import EngineError


class ExecutionBackend:
    """How a stage's partition tasks are executed.

    ``run`` applies a picklable-or-not callable to each input element
    and returns ``(results, fell_back)``; ``run_local`` is for driver
    closures that must stay in-process (they read the job runner's
    state) and therefore never cross a process boundary.
    """

    name = "abstract"

    def __init__(self, parallelism: Optional[int] = None):
        self._parallelism = parallelism

    # ------------------------------------------------------------ lifecycle
    def configure(self, parallelism: int) -> None:
        """Adopt the context's parallelism unless one was given."""
        if self._parallelism is None:
            self._parallelism = parallelism

    @property
    def parallelism(self) -> int:
        return self._parallelism or 1

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    # ------------------------------------------------------------ execution
    def run(self, fn: Callable[[Any], Any],
            inputs: List[Any]) -> Tuple[List[Any], bool]:
        raise NotImplementedError

    def run_local(self, fn: Callable[[int], Any], count: int) -> List[Any]:
        raise NotImplementedError


class SerialBackend(ExecutionBackend):
    """Everything on the driver thread — the semantics oracle."""

    name = "serial"

    def run(self, fn, inputs):
        return [fn(x) for x in inputs], False

    def run_local(self, fn, count):
        return [fn(i) for i in range(count)]


class ThreadBackend(ExecutionBackend):
    """A thread pool: concurrency without pickling constraints."""

    name = "thread"

    def __init__(self, parallelism: Optional[int] = None):
        super().__init__(parallelism)
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> Optional[ThreadPoolExecutor]:
        if self.parallelism <= 1:
            return None
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.parallelism)
        return self._pool

    def run(self, fn, inputs):
        pool = self._ensure_pool()
        if pool is None or len(inputs) <= 1:
            return [fn(x) for x in inputs], False
        return list(pool.map(fn, inputs)), False

    def run_local(self, fn, count):
        pool = self._ensure_pool()
        if pool is None or count <= 1:
            return [fn(i) for i in range(count)]
        return list(pool.map(fn, range(count)))

    def close(self):
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessBackend(ExecutionBackend):
    """A process pool: true parallelism for picklable partition tasks.

    Unpicklable tasks (closures over local state) run in-driver and are
    reported via the ``fell_back`` flag so :class:`JobMetrics` can count
    them — the engine never fails a job over a pickling constraint.
    """

    name = "process"

    def __init__(self, parallelism: Optional[int] = None,
                 chunked: bool = True):
        super().__init__(parallelism)
        self.chunked = chunked
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.parallelism)
        return self._pool

    @staticmethod
    def _picklable(obj: Any) -> bool:
        try:
            pickle.dumps(obj)
            return True
        except Exception:
            return False

    def run(self, fn, inputs):
        if self.parallelism <= 1 or len(inputs) <= 1:
            return [fn(x) for x in inputs], False
        if not self._picklable(fn):
            return [fn(x) for x in inputs], True
        chunksize = 1
        if self.chunked:
            chunksize = max(1, len(inputs) // (self.parallelism * 2))
        try:
            pool = self._ensure_pool()
            return list(pool.map(fn, inputs, chunksize=chunksize)), False
        except (pickle.PicklingError, TypeError, AttributeError):
            # unpicklable *data* (or results); redo safely in-driver
            return [fn(x) for x in inputs], True
        except BrokenProcessPool:
            self._pool = None  # rebuild lazily on the next stage
            return [fn(x) for x in inputs], True

    def run_local(self, fn, count):
        # Driver closures read runner state; never cross the pickle wall.
        return [fn(i) for i in range(count)]

    def close(self):
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


#: registry used by ``resolve_backend`` and the CLI/benchmark flags
BACKENDS = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def resolve_backend(spec: Any, parallelism: int) -> ExecutionBackend:
    """Turn a backend name or instance into a configured backend."""
    if isinstance(spec, ExecutionBackend):
        spec.configure(parallelism)
        return spec
    if spec is None:
        spec = ThreadBackend.name
    if isinstance(spec, str):
        try:
            backend = BACKENDS[spec]()
        except KeyError:
            raise EngineError(
                f"unknown backend {spec!r}; expected one of "
                f"{sorted(BACKENDS)}")
        backend.configure(parallelism)
        return backend
    raise EngineError(f"backend must be a name or ExecutionBackend, "
                      f"got {type(spec).__name__}")
