"""Pluggable execution backends for the SparkLite engine.

The engine's job runner hands each stage to an :class:`ExecutionBackend`
as a batch of independent tasks — ``fn`` applied to each element of
``inputs``. Three implementations ship:

* :class:`SerialBackend` — one task at a time on the driver thread.
  The reference semantics every other backend is tested against.
* :class:`ThreadBackend` — a ``ThreadPoolExecutor``. The historical
  behaviour: cheap, shares memory, but GIL-bound for CPU work.
* :class:`ProcessBackend` — a ``ProcessPoolExecutor``. Partition tasks
  are pickled to worker processes, so CPU-bound stages scale past the
  GIL *when the stage's functions pickle* (module-level functions,
  ``operator`` callables, the engine's own operator objects). Tasks
  that will not pickle — lambdas, local closures — transparently fall
  back to in-driver execution, and the fallback is counted in the
  job's metrics rather than hidden.

Fault tolerance, Spark-style task re-execution: every backend gives
each partition task an *attempt budget* (``task_retries`` extra runs).
A task that raises is deterministically re-executed — partition tasks
are pure functions of their input — and the extra attempts surface in
:class:`~repro.engine.metrics.JobMetrics` as ``task_attempts`` /
``retried_tasks``. The process backend additionally survives crashed
workers: a ``BrokenProcessPool`` tears the pool down, rebuilds it, and
re-runs the batch before giving up and finishing in-driver.

Backends are selected by name (``"serial"`` / ``"thread"`` /
``"process"``) or by passing an instance to
``SparkLiteContext(backend=...)``.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.util.errors import EngineError


@dataclass
class RunResult:
    """What one stage batch actually did."""

    results: List[Any] = field(default_factory=list)
    fell_back: bool = False
    attempts: int = 0   # total task executions, including re-runs
    retried: int = 0    # tasks that needed more than one attempt


class _Attempted:
    """Run one task under an attempt budget; returns ``(attempts, result)``.

    A callable object (not a closure) so it pickles to a process pool
    whenever the wrapped function does. Re-execution is deterministic
    because partition tasks are pure: same input, same output.
    """

    __slots__ = ("fn", "retries")

    def __init__(self, fn: Callable[[Any], Any], retries: int):
        self.fn = fn
        self.retries = retries

    def __call__(self, x: Any) -> Tuple[int, Any]:
        attempt = 0
        while True:
            attempt += 1
            try:
                return attempt, self.fn(x)
            except Exception:
                if attempt > self.retries:
                    raise


def _gather(pairs: List[Tuple[int, Any]],
            fell_back: bool = False) -> RunResult:
    return RunResult(
        results=[result for _attempts, result in pairs],
        fell_back=fell_back,
        attempts=sum(attempts for attempts, _result in pairs),
        retried=sum(1 for attempts, _result in pairs if attempts > 1))


class ExecutionBackend:
    """How a stage's partition tasks are executed.

    ``run`` applies a picklable-or-not callable to each input element
    and returns a :class:`RunResult`; ``run_local`` is for driver
    closures that must stay in-process (they read the job runner's
    state) and therefore never cross a process boundary.
    """

    name = "abstract"
    #: True when partition tasks cross a process boundary, i.e. shuffle
    #: payloads should be sealed into ShuffleBlocks (serialize-once)
    #: instead of re-pickled as raw record lists on every hop.
    shuffle_blocks = False

    def __init__(self, parallelism: Optional[int] = None,
                 task_retries: Optional[int] = None):
        self._parallelism = parallelism
        self._task_retries = task_retries

    # ------------------------------------------------------------ lifecycle
    def configure(self, parallelism: int, task_retries: int = 0) -> None:
        """Adopt the context's settings unless explicit ones were given."""
        if self._parallelism is None:
            self._parallelism = parallelism
        if self._task_retries is None:
            self._task_retries = task_retries

    @property
    def parallelism(self) -> int:
        return self._parallelism or 1

    @property
    def task_retries(self) -> int:
        return self._task_retries or 0

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    # ------------------------------------------------------------ execution
    def run(self, fn: Callable[[Any], Any],
            inputs: List[Any]) -> RunResult:
        raise NotImplementedError

    def run_local(self, fn: Callable[[int], Any], count: int) -> List[Any]:
        raise NotImplementedError


class SerialBackend(ExecutionBackend):
    """Everything on the driver thread — the semantics oracle."""

    name = "serial"

    def run(self, fn, inputs):
        wrapped = _Attempted(fn, self.task_retries)
        return _gather([wrapped(x) for x in inputs])

    def run_local(self, fn, count):
        wrapped = _Attempted(fn, self.task_retries)
        return [wrapped(i)[1] for i in range(count)]


class ThreadBackend(ExecutionBackend):
    """A thread pool: concurrency without pickling constraints."""

    name = "thread"

    def __init__(self, parallelism: Optional[int] = None,
                 task_retries: Optional[int] = None):
        super().__init__(parallelism, task_retries)
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> Optional[ThreadPoolExecutor]:
        if self.parallelism <= 1:
            return None
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.parallelism)
        return self._pool

    def run(self, fn, inputs):
        wrapped = _Attempted(fn, self.task_retries)
        pool = self._ensure_pool()
        if pool is None or len(inputs) <= 1:
            return _gather([wrapped(x) for x in inputs])
        return _gather(list(pool.map(wrapped, inputs)))

    def run_local(self, fn, count):
        wrapped = _Attempted(fn, self.task_retries)
        pool = self._ensure_pool()
        if pool is None or count <= 1:
            return [wrapped(i)[1] for i in range(count)]
        return [result for _a, result in pool.map(wrapped, range(count))]

    def close(self):
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessBackend(ExecutionBackend):
    """A process pool: true parallelism for picklable partition tasks.

    Unpicklable tasks (closures over local state) run in-driver and are
    reported via ``fell_back`` so :class:`JobMetrics` can count them —
    the engine never fails a job over a pickling constraint. A crashed
    worker (``BrokenProcessPool``) triggers pool recovery: the dead pool
    is discarded, a fresh one is built, and the batch re-runs; only when
    rebuilds are exhausted does the batch finish in-driver.
    """

    name = "process"
    shuffle_blocks = True

    def __init__(self, parallelism: Optional[int] = None,
                 task_retries: Optional[int] = None,
                 chunked: bool = True):
        super().__init__(parallelism, task_retries)
        self.chunked = chunked
        self._pool: Optional[ProcessPoolExecutor] = None
        #: how many times a broken pool was torn down and rebuilt
        self.pool_rebuilds = 0

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.parallelism)
        return self._pool

    @staticmethod
    def _picklable(obj: Any) -> bool:
        try:
            pickle.dumps(obj)
            return True
        except Exception:
            return False

    def run(self, fn, inputs):
        wrapped = _Attempted(fn, self.task_retries)
        if self.parallelism <= 1 or len(inputs) <= 1:
            return _gather([wrapped(x) for x in inputs])
        if not self._picklable(wrapped):
            return _gather([wrapped(x) for x in inputs], fell_back=True)
        chunksize = 1
        if self.chunked:
            chunksize = max(1, len(inputs) // (self.parallelism * 2))
        rebuilds_left = max(1, self.task_retries)
        batch_attempts = 0
        while True:
            try:
                pool = self._ensure_pool()
                result = _gather(
                    list(pool.map(wrapped, inputs, chunksize=chunksize)))
                result.attempts += batch_attempts
                if batch_attempts:
                    result.retried = max(result.retried, len(inputs))
                return result
            except (pickle.PicklingError, TypeError, AttributeError):
                # unpicklable *data* (or results); redo safely in-driver
                result = _gather([wrapped(x) for x in inputs],
                                 fell_back=True)
                result.attempts += batch_attempts
                return result
            except BrokenProcessPool:
                # a worker died mid-batch: recover the pool and re-run
                self._pool = None
                self.pool_rebuilds += 1
                batch_attempts += len(inputs)
                if rebuilds_left <= 0:
                    result = _gather([wrapped(x) for x in inputs],
                                     fell_back=True)
                    result.attempts += batch_attempts
                    result.retried = max(result.retried, len(inputs))
                    return result
                rebuilds_left -= 1

    def run_local(self, fn, count):
        # Driver closures read runner state; never cross the pickle wall.
        wrapped = _Attempted(fn, self.task_retries)
        return [wrapped(i)[1] for i in range(count)]

    def close(self):
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


#: registry used by ``resolve_backend`` and the CLI/benchmark flags
BACKENDS = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def resolve_backend(spec: Any, parallelism: int,
                    task_retries: int = 0) -> ExecutionBackend:
    """Turn a backend name or instance into a configured backend."""
    if isinstance(spec, ExecutionBackend):
        spec.configure(parallelism, task_retries)
        return spec
    if spec is None:
        spec = ThreadBackend.name
    if isinstance(spec, str):
        try:
            backend = BACKENDS[spec]()
        except KeyError:
            raise EngineError(
                f"unknown backend {spec!r}; expected one of "
                f"{sorted(BACKENDS)}")
        backend.configure(parallelism, task_retries)
        return backend
    raise EngineError(f"backend must be a name or ExecutionBackend, "
                      f"got {type(spec).__name__}")
