"""Pluggable execution backends for the SparkLite engine.

The engine's job runner hands each stage to an :class:`ExecutionBackend`
as a batch of independent tasks — ``fn`` applied to each element of
``inputs``. Three implementations ship:

* :class:`SerialBackend` — one task at a time on the driver thread.
  The reference semantics every other backend is tested against.
* :class:`ThreadBackend` — a ``ThreadPoolExecutor``. The historical
  behaviour: cheap, shares memory, but GIL-bound for CPU work.
* :class:`ProcessBackend` — a ``ProcessPoolExecutor``. Partition tasks
  are pickled to worker processes, so CPU-bound stages scale past the
  GIL *when the stage's functions pickle* (module-level functions,
  ``operator`` callables, the engine's own operator objects). Tasks
  that will not pickle — lambdas, local closures — transparently fall
  back to in-driver execution, and the fallback is counted in the
  job's metrics rather than hidden.

Fault tolerance is delegated to the
:class:`~repro.engine.supervisor.TaskSupervisor`, which watches each
partition task individually: per-task attempt budgets (``task_retries``
deterministic re-executions), per-task deadlines with zombie
replacement, quantile-based speculative execution, and fine-grained
executor-loss recovery. The process backend survives crashed workers at
partition granularity — a ``BrokenProcessPool`` tears the pool down,
rebuilds it (bounded by ``pool_rebuild_budget``), and relaunches *only
the unresolved partitions*; results already gathered are never
recomputed. Everything the supervisor observed surfaces in
:class:`~repro.engine.metrics.JobMetrics` (``task_attempts``,
``retried_tasks``, ``lost_executors``, ``recomputed_partitions``,
``speculative_launched``/``_won``, ``zombie_tasks``,
``pool_rebuilds``).

Backends are selected by name (``"serial"`` / ``"thread"`` /
``"process"``) or by passing an instance to
``SparkLiteContext(backend=...)``.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, List, Optional

from repro.engine.supervisor import (ExecutorLostError, RunResult,
                                     SupervisePolicy, TaskSupervisor,
                                     _Attempted)
from repro.util.errors import EngineError

__all__ = ["RunResult", "ExecutionBackend", "SerialBackend",
           "ThreadBackend", "ProcessBackend", "BACKENDS",
           "resolve_backend", "ExecutorLostError", "SupervisePolicy"]


class ExecutionBackend:
    """How a stage's partition tasks are executed.

    ``run`` applies a picklable-or-not callable to each input element
    and returns a :class:`RunResult`; ``run_local`` is for driver
    closures that must stay in-process (they read the job runner's
    state) and therefore never cross a process boundary.
    """

    name = "abstract"
    #: True when partition tasks cross a process boundary, i.e. shuffle
    #: payloads should be sealed into ShuffleBlocks (serialize-once)
    #: instead of re-pickled as raw record lists on every hop.
    shuffle_blocks = False
    #: True when tasks run in other processes on the same machine, so a
    #: columnar exchange can move sealed batches through
    #: ``multiprocessing.shared_memory`` instead of pickling the bytes.
    #: Serial/thread backends share the driver heap — shm would only
    #: add copies there.
    supports_shm = False

    def __init__(self, parallelism: Optional[int] = None,
                 task_retries: Optional[int] = None):
        self._parallelism = parallelism
        self._task_retries = task_retries
        self._policy: Optional[SupervisePolicy] = None

    # ------------------------------------------------------------ lifecycle
    def configure(self, parallelism: int, task_retries: int = 0,
                  policy: Optional[SupervisePolicy] = None) -> None:
        """Adopt the context's settings unless explicit ones were given."""
        if self._parallelism is None:
            self._parallelism = parallelism
        if self._task_retries is None:
            self._task_retries = task_retries
        if policy is not None:
            self._policy = policy

    @property
    def parallelism(self) -> int:
        return self._parallelism or 1

    @property
    def task_retries(self) -> int:
        return self._task_retries or 0

    @property
    def policy(self) -> SupervisePolicy:
        if self._policy is None:
            self._policy = SupervisePolicy()
        return self._policy

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    # ------------------------------------------------------------ execution
    def supervisor(self, fn: Callable[[Any], Any], inputs: List[Any],
                   stage_key: Optional[str] = None) -> TaskSupervisor:
        return TaskSupervisor(fn, inputs, self.task_retries, self.policy,
                              stage_key)

    def run(self, fn: Callable[[Any], Any], inputs: List[Any],
            stage_key: Optional[str] = None) -> RunResult:
        raise NotImplementedError

    def run_local(self, fn: Callable[[int], Any], count: int) -> List[Any]:
        raise NotImplementedError


class SerialBackend(ExecutionBackend):
    """Everything on the driver thread — the semantics oracle."""

    name = "serial"

    def run(self, fn, inputs, stage_key=None):
        return self.supervisor(fn, inputs, stage_key).run_serial()

    def run_local(self, fn, count):
        wrapped = _Attempted(fn, self.task_retries)
        return [wrapped(i)[1] for i in range(count)]


class ThreadBackend(ExecutionBackend):
    """A thread pool: concurrency without pickling constraints."""

    name = "thread"

    def __init__(self, parallelism: Optional[int] = None,
                 task_retries: Optional[int] = None):
        super().__init__(parallelism, task_retries)
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> Optional[ThreadPoolExecutor]:
        if self.parallelism <= 1:
            return None
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.parallelism)
        return self._pool

    def run(self, fn, inputs, stage_key=None):
        watcher = self.supervisor(fn, inputs, stage_key)
        pool = self._ensure_pool()
        if pool is None or len(inputs) <= 1:
            return watcher.run_serial()
        return watcher.run_pool(pool.submit)

    def run_local(self, fn, count):
        wrapped = _Attempted(fn, self.task_retries)
        pool = self._ensure_pool()
        if pool is None or count <= 1:
            return [wrapped(i)[1] for i in range(count)]
        return [result for _a, result in pool.map(wrapped, range(count))]

    def close(self):
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessBackend(ExecutionBackend):
    """A process pool: true parallelism for picklable partition tasks.

    Unpicklable tasks (closures over local state) run in-driver and are
    reported via ``fell_back`` so :class:`JobMetrics` can count them —
    the engine never fails a job over a pickling constraint.

    Worker crashes are recovered at partition granularity: a
    ``BrokenProcessPool`` discards the dead pool, and — up to
    ``pool_rebuild_budget`` times per batch — builds a fresh one and
    relaunches only the partitions whose results were lost. The budget
    is deliberately *independent of* ``task_retries``: losing a worker
    is never the task's fault, so even ``task_retries=0`` gets one free
    rebuild (the pre-supervisor code expressed this as
    ``rebuilds_left = max(1, task_retries)``; the coupling was
    accidental and is now an explicit constructor knob). Once the
    budget is exhausted the remaining partitions finish in-driver with
    ``fell_back`` set. Rebuilds are counted separately from retries in
    ``JobMetrics.pool_rebuilds``.
    """

    name = "process"
    shuffle_blocks = True
    supports_shm = True

    def __init__(self, parallelism: Optional[int] = None,
                 task_retries: Optional[int] = None,
                 chunked: bool = True,
                 pool_rebuild_budget: int = 1):
        super().__init__(parallelism, task_retries)
        #: legacy knob from the pool.map era; supervised runs submit one
        #: future per partition (recovery needs per-task granularity),
        #: so chunking no longer changes execution. Accepted for compat.
        self.chunked = chunked
        if pool_rebuild_budget < 0:
            raise EngineError(f"pool_rebuild_budget must be >= 0, "
                              f"got {pool_rebuild_budget}")
        #: fresh pools granted per batch after worker crashes
        self.pool_rebuild_budget = pool_rebuild_budget
        self._pool: Optional[ProcessPoolExecutor] = None
        #: how many times a broken pool was torn down and rebuilt
        self.pool_rebuilds = 0

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.parallelism)
        return self._pool

    @staticmethod
    def _picklable(obj: Any) -> bool:
        try:
            pickle.dumps(obj)
            return True
        except Exception:
            return False

    def _submit(self, task, arg):
        return self._ensure_pool().submit(task, arg)

    def run(self, fn, inputs, stage_key=None):
        watcher = self.supervisor(fn, inputs, stage_key)
        if self.parallelism <= 1 or len(inputs) <= 1:
            return watcher.run_serial()
        if not self._picklable(_Attempted(fn, self.task_retries)):
            return watcher.run_serial(fell_back=True)
        rebuilds_left = [self.pool_rebuild_budget]

        def recover() -> bool:
            self._pool = None  # the old pool is dead; drop it
            if rebuilds_left[0] <= 0:
                return False
            rebuilds_left[0] -= 1
            self.pool_rebuilds += 1
            return True

        return watcher.run_pool(self._submit, recover)

    def run_local(self, fn, count):
        # Driver closures read runner state; never cross the pickle wall.
        wrapped = _Attempted(fn, self.task_retries)
        return [wrapped(i)[1] for i in range(count)]

    def close(self):
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


#: registry used by ``resolve_backend`` and the CLI/benchmark flags
BACKENDS = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def resolve_backend(spec: Any, parallelism: int, task_retries: int = 0,
                    policy: Optional[SupervisePolicy] = None,
                    ) -> ExecutionBackend:
    """Turn a backend name or instance into a configured backend."""
    if isinstance(spec, ExecutionBackend):
        spec.configure(parallelism, task_retries, policy)
        return spec
    if spec is None:
        spec = ThreadBackend.name
    if isinstance(spec, str):
        try:
            backend = BACKENDS[spec]()
        except KeyError:
            raise EngineError(
                f"unknown backend {spec!r}; expected one of "
                f"{sorted(BACKENDS)}")
        backend.configure(parallelism, task_retries, policy)
        return backend
    raise EngineError(f"backend must be a name or ExecutionBackend, "
                      f"got {type(spec).__name__}")
