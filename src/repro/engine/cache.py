"""Cross-job partition cache: LRU byte budget + optional MiniDfs spill.

``RDD.cache()`` used to be a flag on the RDD object — partitions were
kept on the node and reused, but nothing bounded driver memory and
nothing survived an eviction. The :class:`CacheManager` gives each
:class:`~repro.engine.context.SparkLiteContext` one shared store:

* ``storage="memory"`` entries live in an LRU dict accounted in pickled
  bytes; pushing the store over ``budget_bytes`` evicts the coldest
  entries — spilling them to the DFS when one is attached, dropping
  them (to be recomputed) otherwise;
* ``storage="dfs"`` entries are written through to MiniDfs immediately
  (one pickled, zlib-compressed part file per partition under
  ``/engine/cache/rdd-<id>/``), so they survive memory pressure and
  cost no budget;
* unpicklable partitions (e.g. file handles) are pinned in memory at
  zero accounted cost — evicting them would lose data we can't restore.

The manager only stores and serves ``List[List[Any]]`` partition sets;
lineage bookkeeping (which RDD wants caching, cut ancestors when an
entry is present) stays in :class:`~repro.engine.rdd.JobRunner`.
"""

from __future__ import annotations

import pickle
import zlib
from collections import OrderedDict
from typing import Any, Dict, List, Optional

STORAGE_MEMORY = "memory"
STORAGE_DFS = "dfs"


class _Entry:
    __slots__ = ("partitions", "nbytes", "storage", "part_count", "pinned")

    def __init__(self, partitions, nbytes, storage, part_count, pinned):
        self.partitions = partitions  # None once spilled / for dfs-only
        self.nbytes = nbytes
        self.storage = storage
        self.part_count = part_count
        self.pinned = pinned


class CacheManager:
    """LRU-budgeted partition store shared by all jobs of one context."""

    def __init__(self, budget_bytes: Optional[int] = None, dfs=None,
                 spill_dir: str = "/engine/cache"):
        self.budget_bytes = budget_bytes
        self.dfs = dfs
        self.spill_dir = spill_dir.rstrip("/")
        self._entries: "OrderedDict[int, _Entry]" = OrderedDict()
        #: lifetime counters, surfaced via :meth:`stats`
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.spills = 0

    # -------------------------------------------------------------- accounting
    @property
    def bytes_in_memory(self) -> int:
        return sum(e.nbytes for e in self._entries.values()
                   if e.partitions is not None)

    def stats(self) -> Dict[str, int]:
        return {"entries": len(self._entries),
                "bytes_in_memory": self.bytes_in_memory,
                "hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "spills": self.spills}

    # ------------------------------------------------------------------- store
    def put(self, rdd_id: int, partitions: List[List[Any]],
            storage: str = STORAGE_MEMORY) -> None:
        payload = None
        try:
            payload = pickle.dumps(partitions,
                                   protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            pass  # unpicklable → pin in memory, cannot spill
        if storage == STORAGE_DFS and self.dfs is not None \
                and payload is not None:
            self._write_parts(rdd_id, partitions)
            self._entries[rdd_id] = _Entry(None, 0, STORAGE_DFS,
                                           len(partitions), pinned=False)
            self._entries.move_to_end(rdd_id)
            return
        nbytes = len(payload) if payload is not None else 0
        self._entries[rdd_id] = _Entry(partitions, nbytes, STORAGE_MEMORY,
                                       len(partitions),
                                       pinned=payload is None)
        self._entries.move_to_end(rdd_id)
        self._shrink()

    def _write_parts(self, rdd_id: int, partitions: List[List[Any]]) -> None:
        # tagged row codec: columnar-packable partitions spill as one
        # RecordBatch buffer, irregular ones as a pickle — the decoder
        # dispatches on the tag byte, so old readers never see this
        from repro.engine.columnar import encode_rows
        for index, part in enumerate(partitions):
            blob = zlib.compress(encode_rows(part), 6)
            self.dfs.write_atomic(self._part_path(rdd_id, index), blob)

    def _part_path(self, rdd_id: int, index: int) -> str:
        return f"{self.spill_dir}/rdd-{rdd_id}/part-{index:05d}.pkl"

    def _shrink(self) -> None:
        if self.budget_bytes is None:
            return
        while self.bytes_in_memory > self.budget_bytes:
            victim = next(
                (rid for rid, e in self._entries.items()
                 if e.partitions is not None and not e.pinned), None)
            if victim is None:
                return  # only pinned entries left; nothing evictable
            entry = self._entries[victim]
            self.evictions += 1
            if self.dfs is not None:
                self._write_parts(victim, entry.partitions)
                entry.storage = STORAGE_DFS
                entry.partitions = None
                entry.nbytes = 0
                self.spills += 1
            else:
                del self._entries[victim]

    # ------------------------------------------------------------------- fetch
    def get(self, rdd_id: int) -> Optional[List[List[Any]]]:
        entry = self._entries.get(rdd_id)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(rdd_id)
        if entry.partitions is not None:
            self.hits += 1
            return entry.partitions
        partitions = self._read_parts(rdd_id, entry.part_count)
        if partitions is None:
            del self._entries[rdd_id]
            self.misses += 1
            return None
        self.hits += 1
        return partitions

    def _read_parts(self, rdd_id: int,
                    part_count: int) -> Optional[List[List[Any]]]:
        if self.dfs is None:
            return None
        from repro.engine.columnar import decode_rows
        try:
            return [decode_rows(zlib.decompress(
                self.dfs.read(self._part_path(rdd_id, index))))
                for index in range(part_count)]
        except Exception:
            return None  # lost/corrupt spill → recompute from lineage

    def __contains__(self, rdd_id: int) -> bool:
        return rdd_id in self._entries

    # ------------------------------------------------------------------ remove
    def unpersist(self, rdd_id: int) -> None:
        entry = self._entries.pop(rdd_id, None)
        if entry is None or self.dfs is None:
            return
        prefix = f"{self.spill_dir}/rdd-{rdd_id}"
        for path in list(self.dfs.listdir(prefix)):
            try:
                self.dfs.delete(path)
            except Exception:
                pass

    def clear(self) -> None:
        for rdd_id in list(self._entries):
            self.unpersist(rdd_id)
