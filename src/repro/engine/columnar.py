"""Columnar record batches and the shared-memory shuffle blocks.

The engine's hot path used to move rows as per-row Python objects: a
shuffle pickled a ``list`` of tuples per (map-partition, reduce-bucket)
and a narrow stage called the user's function row by row over whatever
heap layout the previous stage left behind. This module is the columnar
replacement, stdlib only:

* :class:`RecordBatch` — a batch of rows decomposed into typed columns.
  ``pack()`` serializes the batch into one contiguous ``bytes`` buffer:
  fixed-width columns as ``array('q')``/``array('d')`` dumps, booleans
  and null masks as bitmaps, strings/bytes as an offsets array over a
  varlen heap, and anything irregular (mixed types, nesting, big ints)
  as a pickled OBJECT column. ``unpack()`` reverses it exactly — the
  round-trip preserves concrete Python types (``bool`` never collapses
  into ``int``, ``1`` and ``1.0`` stay distinct), which is what keeps
  the columnar engine byte-identical to the row oracle.
* :class:`BatchBlock` — the sealed exchange payload built on top:
  batch-encoded (or pickled when the rows are irregular), optionally
  zlib-compressed, and optionally *shared-memory backed* so the process
  backend moves a tiny descriptor across the pickle wall instead of the
  data itself.
* segment bookkeeping — job-scoped shm name prefixes, a
  :class:`ShmRegistry` the job runner tracks returned segments in, and
  a ``/dev/shm`` prefix sweep that also reclaims segments created by
  workers that died before their descriptor reached the driver.

Shared-memory lifetime: a worker creates a segment at seal time and
closes its mapping immediately; reducers (and retried or speculative
reducers — a block may be read several times) attach, copy, and close;
the *driver* unlinks every segment at job end. CPython registers a
segment with the multiprocessing resource tracker on create *and* on
attach (the tracker's name set is shared across the process tree and
registration is idempotent), and ``unlink()`` unregisters — so the
single driver-side unlink leaves the tracker balanced with no spurious
"leaked shared_memory" warnings at interpreter shutdown.
"""

from __future__ import annotations

import itertools
import os
import pickle
import struct
import zlib
from array import array
from multiprocessing import shared_memory
from typing import Any, Iterable, List, Optional, Sequence, Tuple

__all__ = ["RecordBatch", "BatchBlock", "ShmRegistry",
           "shm_available", "new_job_prefix", "list_segments",
           "release_segments", "encode_rows", "decode_rows",
           "batch_to_rows", "project_batch",
           "SHM_BASE_PREFIX", "DEFAULT_BATCH_ROWS"]

#: rows per batch for batched narrow ops / per-batch combiners
DEFAULT_BATCH_ROWS = 4096

# ------------------------------------------------------------- batch layout
#: how a row maps onto columns
MODE_SCALAR = 0   # one column of bare values
MODE_TUPLE = 1    # fixed-width tuples, one column per slot
MODE_DICT = 2     # same-keyed dicts, one column per key

#: column physical types
TAG_INT64 = 0     # array('q') dump; ints outside int64 fall back to OBJ
TAG_FLOAT64 = 1   # array('d') dump
TAG_BOOL = 2      # bitmap
TAG_STRING = 3    # offsets + utf-8 (surrogatepass) heap
TAG_BYTES = 4     # offsets + raw heap
TAG_OBJECT = 5    # pickled value list — the always-correct fallback

_MAGIC = b"RB1\x00"
_HEADER = struct.Struct("<4sBIH")   # magic, mode, nrows, ncols
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_COL = struct.Struct("<BB")          # tag, flags (bit0 = has nulls)
_FLAG_NULLS = 1

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

# array typecode sanity: the layout assumes 8-byte 'q'/'d' items; on an
# exotic libc where that does not hold, ints/floats fall back to OBJECT
_FIXED_OK = array("q").itemsize == 8 and array("d").itemsize == 8


def _pack_bits(flags: Sequence[bool]) -> bytes:
    out = bytearray((len(flags) + 7) // 8)
    for i, flag in enumerate(flags):
        if flag:
            out[i >> 3] |= 1 << (i & 7)
    return bytes(out)


def _unpack_bits(buf, n: int) -> List[bool]:
    return [bool(buf[i >> 3] & (1 << (i & 7))) for i in range(n)]


def _infer_tag(values: Sequence[Any]) -> Tuple[int, bool]:
    """Pick one physical tag for a column; mixed columns become OBJECT.

    Exact ``type()`` checks on purpose: ``isinstance(True, int)`` holds
    but a bool stored through ``array('q')`` would come back as ``1``,
    breaking byte-identity with the row oracle.
    """
    tag = None
    has_null = False
    for v in values:
        if v is None:
            has_null = True
            continue
        t = type(v)
        if t is int:
            if not _FIXED_OK or not _INT64_MIN <= v <= _INT64_MAX:
                return TAG_OBJECT, has_null
            vt = TAG_INT64
        elif t is float:
            vt = TAG_FLOAT64 if _FIXED_OK else TAG_OBJECT
        elif t is bool:
            vt = TAG_BOOL
        elif t is str:
            vt = TAG_STRING
        elif t is bytes:
            vt = TAG_BYTES
        else:
            return TAG_OBJECT, has_null
        if tag is None:
            tag = vt
        elif tag is not vt and tag != vt:
            return TAG_OBJECT, has_null
    if tag is None:          # empty or all-None column
        tag = TAG_OBJECT
    return tag, has_null


class RecordBatch:
    """A batch of rows stored column-wise, packable to one buffer."""

    __slots__ = ("mode", "keys", "columns", "nrows")

    def __init__(self, mode: int, keys: Optional[Tuple[str, ...]],
                 columns: List[List[Any]], nrows: int):
        self.mode = mode
        self.keys = keys
        self.columns = columns
        self.nrows = nrows

    # ------------------------------------------------------------ building
    @classmethod
    def from_rows(cls, rows: Sequence[Any]) -> "RecordBatch":
        """Decompose rows into columns.

        Uniform-width tuples split one column per slot (the shuffle's
        ``(key, value)`` pairs), same-keyed dicts one column per key
        (JSON records); anything else is a single scalar column whose
        irregular values will pack as OBJECT.
        """
        rows = rows if isinstance(rows, list) else list(rows)
        n = len(rows)
        if n and all(type(r) is tuple for r in rows):
            width = len(rows[0])
            if width and all(len(r) == width for r in rows):
                return cls(MODE_TUPLE, None,
                           [list(col) for col in zip(*rows)], n)
        if n and all(type(r) is dict for r in rows):
            keys = tuple(rows[0])
            if keys and all(tuple(r) == keys for r in rows):
                return cls(MODE_DICT, keys,
                           [[r[k] for r in rows] for k in keys], n)
        return cls(MODE_SCALAR, None, [list(rows)], n)

    @classmethod
    def from_records(cls, records: Sequence[dict]) -> "RecordBatch":
        """``from_rows`` for dict records — the dataset-scan entry point."""
        return cls.from_rows(records)

    # ------------------------------------------------------------- reading
    def to_rows(self) -> List[Any]:
        if self.mode == MODE_SCALAR:
            return list(self.columns[0])
        if not self.nrows:
            return []
        if self.mode == MODE_TUPLE:
            return list(zip(*self.columns))
        keys = self.keys
        return [dict(zip(keys, vals)) for vals in zip(*self.columns)]

    def to_records(self) -> List[dict]:
        return self.to_rows()

    def column(self, index: int) -> List[Any]:
        return self.columns[index]

    def column_tags(self) -> List[int]:
        return [_infer_tag(col)[0] for col in self.columns]

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    def __len__(self) -> int:
        return self.nrows

    def __eq__(self, other: Any) -> bool:
        return (isinstance(other, RecordBatch)
                and self.mode == other.mode
                and self.keys == other.keys
                and self.nrows == other.nrows
                and self.columns == other.columns)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mode = {MODE_SCALAR: "scalar", MODE_TUPLE: "tuple",
                MODE_DICT: "dict"}[self.mode]
        return (f"<RecordBatch {mode} rows={self.nrows} "
                f"cols={len(self.columns)}>")

    # ------------------------------------------------------------- slicing
    def slice(self, start: int, stop: Optional[int] = None) -> "RecordBatch":
        stop = self.nrows if stop is None else min(stop, self.nrows)
        start = max(0, start)
        cols = [col[start:stop] for col in self.columns]
        return RecordBatch(self.mode, self.keys, cols,
                           max(0, stop - start))

    @classmethod
    def concat(cls, batches: Iterable["RecordBatch"]) -> "RecordBatch":
        batches = list(batches)
        if not batches:
            return cls.from_rows([])
        first = batches[0]
        if all(b.mode == first.mode and b.keys == first.keys
               and len(b.columns) == len(first.columns)
               for b in batches[1:]):
            cols = [list(itertools.chain.from_iterable(
                b.columns[i] for b in batches))
                for i in range(len(first.columns))]
            return cls(first.mode, first.keys, cols,
                       sum(b.nrows for b in batches))
        rows: List[Any] = []
        for b in batches:
            rows.extend(b.to_rows())
        return cls.from_rows(rows)

    # ----------------------------------------------------------- pack/unpack
    def pack(self) -> bytes:
        """Serialize to one contiguous buffer (layout documented above)."""
        n = self.nrows
        out = bytearray(_HEADER.pack(_MAGIC, self.mode, n,
                                     len(self.columns)))
        if self.mode == MODE_DICT:
            key_blob = pickle.dumps(self.keys,
                                    protocol=pickle.HIGHEST_PROTOCOL)
            out += _U32.pack(len(key_blob))
            out += key_blob
        for values in self.columns:
            tag, has_null = _infer_tag(values)
            if tag == TAG_OBJECT:
                blob = pickle.dumps(list(values),
                                    protocol=pickle.HIGHEST_PROTOCOL)
                out += _COL.pack(TAG_OBJECT, 0)
                out += _U64.pack(len(blob))
                out += blob
                continue
            out += _COL.pack(tag, _FLAG_NULLS if has_null else 0)
            if has_null:
                out += _pack_bits([v is not None for v in values])
            if tag == TAG_INT64:
                out += array("q", [0 if v is None else v
                                   for v in values]).tobytes()
            elif tag == TAG_FLOAT64:
                out += array("d", [0.0 if v is None else v
                                   for v in values]).tobytes()
            elif tag == TAG_BOOL:
                out += _pack_bits([bool(v) for v in values])
            else:  # TAG_STRING / TAG_BYTES: offsets + heap
                heap = bytearray()
                offsets = array("Q", bytes(8 * (n + 1)))
                pos = 0
                for i, v in enumerate(values):
                    if v is not None:
                        piece = (v.encode("utf-8", "surrogatepass")
                                 if tag == TAG_STRING else v)
                        heap += piece
                        pos += len(piece)
                    offsets[i + 1] = pos
                out += offsets.tobytes()
                out += bytes(heap)
        return bytes(out)

    @classmethod
    def unpack(cls, data) -> "RecordBatch":
        view = memoryview(data)
        magic, mode, n, ncols = _HEADER.unpack_from(view, 0)
        if magic != _MAGIC:
            raise ValueError("not a RecordBatch buffer")
        pos = _HEADER.size
        keys = None
        if mode == MODE_DICT:
            (key_len,) = _U32.unpack_from(view, pos)
            pos += _U32.size
            keys = pickle.loads(view[pos:pos + key_len])
            pos += key_len
        columns: List[List[Any]] = []
        null_len = (n + 7) // 8
        for _ in range(ncols):
            tag, flags = _COL.unpack_from(view, pos)
            pos += _COL.size
            if tag == TAG_OBJECT:
                (blob_len,) = _U64.unpack_from(view, pos)
                pos += _U64.size
                columns.append(pickle.loads(view[pos:pos + blob_len]))
                pos += blob_len
                continue
            valid = None
            if flags & _FLAG_NULLS:
                valid = _unpack_bits(view[pos:pos + null_len], n)
                pos += null_len
            if tag == TAG_INT64:
                arr = array("q")
                arr.frombytes(view[pos:pos + 8 * n])
                pos += 8 * n
                values: List[Any] = arr.tolist()
            elif tag == TAG_FLOAT64:
                arr = array("d")
                arr.frombytes(view[pos:pos + 8 * n])
                pos += 8 * n
                values = arr.tolist()
            elif tag == TAG_BOOL:
                values = _unpack_bits(view[pos:pos + null_len], n)
                pos += null_len
            else:
                offsets = array("Q")
                offsets.frombytes(view[pos:pos + 8 * (n + 1)])
                pos += 8 * (n + 1)
                heap = view[pos:pos + (offsets[-1] if n else 0)]
                pos += offsets[-1] if n else 0
                if tag == TAG_STRING:
                    values = [str(heap[offsets[i]:offsets[i + 1]],
                                  "utf-8", "surrogatepass")
                              for i in range(n)]
                else:
                    values = [bytes(heap[offsets[i]:offsets[i + 1]])
                              for i in range(n)]
            if valid is not None:
                values = [v if ok else None
                          for v, ok in zip(values, valid)]
            columns.append(values)
        return cls(mode, keys, columns, n)


def batch_to_rows(batch: "RecordBatch") -> List[Any]:
    """Module-level (picklable) adapter for ``rdd.flat_map`` over
    batch-native scans: one batch in, its rows out."""
    return batch.to_rows()


def project_batch(batch: "RecordBatch",
                  keys: Sequence[str]) -> Tuple["RecordBatch", int]:
    """Columnar projection: keep only ``keys``, in the requested order.

    For a dict-mode batch this drops whole columns without touching a
    single row — the batch-native half of the scan-pushdown contract.
    Batches whose rows were too irregular for dict columns fall back to
    a row-wise rebuild with identical results. Returns ``(projected,
    cells_cut)`` where ``cells_cut`` counts the dropped fields (columns
    removed x rows), and raises ``KeyError`` for a requested key the
    records lack — the same error the row-wise ``{k: r[k] ...}``
    projection would raise.
    """
    keys = tuple(keys)
    if batch.mode == MODE_DICT and batch.keys is not None:
        index = {k: i for i, k in enumerate(batch.keys)}
        for k in keys:
            if k not in index:
                raise KeyError(k)
        columns = [batch.columns[index[k]] for k in keys]
        cells_cut = (len(batch.keys) - len(keys)) * batch.nrows
        return RecordBatch(MODE_DICT, keys, columns, batch.nrows), cells_cut
    rows = batch.to_rows()
    cells_cut = 0
    projected = []
    for row in rows:
        new = {k: row[k] for k in keys}
        cells_cut += max(0, len(row) - len(new))
        projected.append(new)
    return RecordBatch.from_rows(projected), cells_cut


# ------------------------------------------------------- row codec for spill
def encode_rows(rows: List[Any]) -> bytes:
    """Tagged row encoding for cache/checkpoint spill: ``b"B"`` + packed
    batch when the rows have columnar structure, ``b"P"`` + pickle when
    they would only pack as one OBJECT column (a pickle wrapped in a
    batch header buys nothing)."""
    batch = RecordBatch.from_rows(rows)
    if batch.mode == MODE_SCALAR and batch.column_tags() == [TAG_OBJECT]:
        return b"P" + pickle.dumps(rows, protocol=pickle.HIGHEST_PROTOCOL)
    return b"B" + batch.pack()


def decode_rows(blob: bytes) -> List[Any]:
    if blob[:1] == b"B":
        return RecordBatch.unpack(memoryview(blob)[1:]).to_rows()
    return pickle.loads(blob[1:])


# ------------------------------------------------------------ shm plumbing
#: every segment the engine creates starts with this — the sweep target
SHM_BASE_PREFIX = "rpshm"
_SHM_DIR = "/dev/shm"

_job_serials = itertools.count(1)
_segment_serials = itertools.count(1)

_shm_probe: Optional[bool] = None


def shm_available() -> bool:
    """One cached probe: can this platform create shared memory at all?"""
    global _shm_probe
    if _shm_probe is None:
        try:
            seg = shared_memory.SharedMemory(create=True, size=1)
            seg.close()
            seg.unlink()
            _shm_probe = True
        except Exception:
            _shm_probe = False
    return _shm_probe


def new_job_prefix() -> str:
    """A job-scoped segment name prefix, unique per driver process.

    Short on purpose: POSIX shm names cap at 31 chars on macOS, and the
    full segment name appends worker pid + a per-process serial."""
    return f"{SHM_BASE_PREFIX}{os.getpid():x}j{next(_job_serials):x}"


def _next_segment_name(prefix: str) -> str:
    return f"{prefix}w{os.getpid():x}c{next(_segment_serials):x}"


def list_segments(prefix: str = SHM_BASE_PREFIX) -> List[str]:
    """Engine-owned segments currently live, by ``/dev/shm`` listing.

    Empty on platforms without a visible shm filesystem — there the
    registry of returned names is the only cleanup source."""
    try:
        names = os.listdir(_SHM_DIR)
    except OSError:
        return []
    return sorted(name for name in names if name.startswith(prefix))


def _unlink_segment(name: str) -> int:
    try:
        seg = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError):
        return 0
    try:
        seg.close()
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover - lost a race
        return 0
    return 1


def release_segments(prefix: Optional[str] = None,
                     names: Iterable[str] = ()) -> int:
    """Unlink tracked segments plus anything left under ``prefix``.

    The prefix sweep is what reclaims segments whose descriptors never
    made it back to the driver — a worker killed between sealing and
    returning, or a speculative attempt whose result lost the race.
    Returns how many segments were actually unlinked."""
    released = 0
    for name in set(names):
        released += _unlink_segment(name)
    if prefix:
        for name in list_segments(prefix):
            released += _unlink_segment(name)
    return released


class ShmRegistry:
    """Driver-side ledger of one job's shared-memory segments."""

    __slots__ = ("prefix", "names")

    def __init__(self, prefix: Optional[str] = None):
        self.prefix = prefix if prefix is not None else new_job_prefix()
        self.names: set = set()

    def track(self, name: Optional[str]) -> None:
        if name:
            self.names.add(name)

    def release(self) -> int:
        """Unlink everything this job created; idempotent."""
        released = release_segments(self.prefix, self.names)
        self.names.clear()
        return released

    def __len__(self) -> int:
        return len(self.names)


# ------------------------------------------------------------ sealed blocks
class BatchBlock:
    """One sealed exchange payload, columnar and optionally shm-backed.

    The pickled form of a ``BatchBlock`` whose payload lives in shared
    memory is just the descriptor — name, size, codec — so on the
    process backend the exchange data crosses the worker→driver and
    driver→reducer pickle walls by reference. ``payload`` carries the
    bytes inline when shm is off or segment creation failed (the
    fallback keeps results identical, only slower).
    """

    ENC_BATCH = 0    # payload is RecordBatch.pack() output
    ENC_PICKLE = 1   # irregular rows: payload is a pickled row list
    CODEC_RAW = 0
    CODEC_ZLIB = 1

    __slots__ = ("payload", "shm_name", "shm_size", "count", "raw_bytes",
                 "codec", "encoding", "header_bytes")

    def __init__(self, payload: Optional[bytes], shm_name: Optional[str],
                 shm_size: int, count: int, raw_bytes: int, codec: int,
                 encoding: int, header_bytes: int = 0):
        self.payload = payload
        self.shm_name = shm_name
        self.shm_size = shm_size
        self.count = count
        self.raw_bytes = raw_bytes
        self.codec = codec
        self.encoding = encoding
        self.header_bytes = header_bytes

    @classmethod
    def seal(cls, items: List[Any], compress: bool = False,
             threshold: int = 4096,
             shm_prefix: Optional[str] = None) -> "BatchBlock":
        batch = RecordBatch.from_rows(items)
        if (batch.mode == MODE_SCALAR
                and batch.column_tags() == [TAG_OBJECT]):
            encoding = cls.ENC_PICKLE
            raw = pickle.dumps(items, protocol=pickle.HIGHEST_PROTOCOL)
        else:
            encoding = cls.ENC_BATCH
            raw = batch.pack()
        payload, codec = raw, cls.CODEC_RAW
        if compress and len(raw) >= threshold:
            squeezed = zlib.compress(raw, 6)
            if len(squeezed) < len(raw):
                payload, codec = squeezed, cls.CODEC_ZLIB
        block = cls(payload, None, 0, len(items), len(raw), codec,
                    encoding)
        if shm_prefix:
            try:
                seg = shared_memory.SharedMemory(
                    name=_next_segment_name(shm_prefix), create=True,
                    size=max(1, len(payload)))
            except Exception:
                pass  # no shm here: ship the payload inline instead
            else:
                seg.buf[:len(payload)] = payload
                block.shm_name = seg.name
                block.shm_size = len(payload)
                block.payload = None
                seg.close()
        block.header_bytes = block._measure_header()
        return block

    def _measure_header(self) -> int:
        """Size of the pickled envelope around the data — what crossing
        a pickle wall costs beyond the payload itself."""
        payload, self.payload = self.payload, b""
        try:
            return len(pickle.dumps(self,
                                    protocol=pickle.HIGHEST_PROTOCOL))
        finally:
            self.payload = payload

    def decode(self) -> List[Any]:
        if self.shm_name is not None:
            seg = shared_memory.SharedMemory(name=self.shm_name)
            try:
                data: Any = bytes(seg.buf[:self.shm_size])
            finally:
                seg.close()
        else:
            data = self.payload
        if self.codec == self.CODEC_ZLIB:
            data = zlib.decompress(data)
        if self.encoding == self.ENC_BATCH:
            return RecordBatch.unpack(data).to_rows()
        return pickle.loads(data)

    # ----------------------------------------------------------- accounting
    @property
    def via_shm(self) -> bool:
        return self.shm_name is not None

    @property
    def shm_bytes(self) -> int:
        return self.shm_size if self.shm_name is not None else 0

    @property
    def nbytes(self) -> int:
        data = (self.shm_size if self.shm_name is not None
                else len(self.payload or b""))
        return data + self.header_bytes

    @property
    def pickled_nbytes(self) -> int:
        """Bytes that actually cross a pickle wall: the envelope always,
        the data only when it is not shm-backed."""
        return self.nbytes - self.shm_bytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        where = f"shm:{self.shm_name}" if self.via_shm else "inline"
        codec = "zlib" if self.codec == self.CODEC_ZLIB else "raw"
        return (f"<BatchBlock {self.count} recs "
                f"{self.nbytes}/{self.raw_bytes}B {codec} {where}>")
