"""Structured job instrumentation: per-stage and per-job counters.

Every action run by :class:`~repro.engine.rdd.JobRunner` produces one
:class:`JobMetrics` holding a :class:`StageMetrics` row per materialized
RDD — what kind of stage it was (narrow / shuffle / task / cached), how
many partitions ran, how many records came out, how much shuffle data
moved, how long it took, and whether the process backend had to fall
back to in-driver execution because a closure would not pickle.

The context keeps the most recent job on ``last_job_metrics`` and a
bounded trace of past jobs that ``python -m repro ... --engine-metrics``
dumps as JSON.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List

#: stage kinds recorded by the runner
STAGE_NARROW = "narrow"          # partition-wise op, parent partition -> child
STAGE_SHUFFLE = "shuffle"        # map-side exchange + reduce-side post op
STAGE_TASK = "task"              # generic driver-side compute closure
STAGE_CACHED = "cached"          # partitions served from a cache() result
STAGE_CHECKPOINT = "checkpoint"  # partitions restored from a DFS checkpoint


@dataclass
class StageMetrics:
    """What one materialized RDD actually did during a job."""

    stage_id: int
    rdd_id: int
    name: str
    kind: str
    partitions: int = 0
    records_out: int = 0
    shuffle_records: int = 0        # records entering the exchange (pre-combine)
    shuffle_records_moved: int = 0  # records actually shipped (post-combine)
    shuffle_bytes: int = 0          # bytes actually moved (post-compress),
    #                                 including sealed-block envelopes
    shuffle_bytes_raw: int = 0      # serialized size before compression
    shuffle_bytes_shm: int = 0      # moved by shared-memory reference
    shuffle_bytes_pickled: int = 0  # moved through a pickle wall
    wall_s: float = 0.0
    cache_hit: bool = False
    fallback: bool = False
    broadcast: bool = False  # join served by a broadcast table, no shuffle
    broadcast_bytes: int = 0  # serialized size of the broadcast table
    # ---- adaptive-planner counters (see repro.engine.planner) ----
    coalesced_from: int = 0   # declared bucket count before coalescing
    coalesced_to: int = 0     # reduce groups that actually ran
    skew_splits: int = 0      # hot buckets split into parallel tasks
    scan_bytes_skipped: int = 0   # input bytes a pushed-down filter dropped
    scan_fields_pruned: int = 0   # dict fields a pushed-down projection cut
    attempts: int = 0   # task executions, including retried attempts
    retried: int = 0    # tasks that needed more than one attempt
    # ---- supervision counters (see repro.engine.supervisor) ----
    lost_executors: int = 0          # worker deaths observed (real/injected)
    recomputed_partitions: int = 0   # partitions relaunched after a loss
    speculative_launched: int = 0    # straggler backup attempts started
    speculative_won: int = 0         # backups that beat the original
    zombie_tasks: int = 0            # tasks past their deadline, replaced
    pool_rebuilds: int = 0           # process pools torn down and rebuilt

    def add_run(self, run: Any) -> None:
        """Fold one backend :class:`RunResult`'s counters into this stage.

        A stage can issue several runs (map exchange + reduce post, the
        legs of a cogroup), so counters accumulate rather than assign.
        """
        self.attempts += run.attempts
        self.retried += run.retried
        self.fallback = self.fallback or run.fell_back
        self.lost_executors += run.lost_executors
        self.recomputed_partitions += run.recomputed_partitions
        self.speculative_launched += run.speculative_launched
        self.speculative_won += run.speculative_won
        self.zombie_tasks += run.zombie_tasks
        self.pool_rebuilds += run.pool_rebuilds

    def as_dict(self) -> Dict[str, Any]:
        return {
            "stage_id": self.stage_id,
            "rdd_id": self.rdd_id,
            "name": self.name,
            "kind": self.kind,
            "partitions": self.partitions,
            "records_out": self.records_out,
            "shuffle_records": self.shuffle_records,
            "shuffle_records_moved": self.shuffle_records_moved,
            "shuffle_bytes": self.shuffle_bytes,
            "shuffle_bytes_raw": self.shuffle_bytes_raw,
            "shuffle_bytes_shm": self.shuffle_bytes_shm,
            "shuffle_bytes_pickled": self.shuffle_bytes_pickled,
            "wall_s": round(self.wall_s, 6),
            "cache_hit": self.cache_hit,
            "fallback": self.fallback,
            "broadcast": self.broadcast,
            "broadcast_bytes": self.broadcast_bytes,
            "coalesced_from": self.coalesced_from,
            "coalesced_to": self.coalesced_to,
            "skew_splits": self.skew_splits,
            "scan_bytes_skipped": self.scan_bytes_skipped,
            "scan_fields_pruned": self.scan_fields_pruned,
            "attempts": self.attempts,
            "retried": self.retried,
            "lost_executors": self.lost_executors,
            "recomputed_partitions": self.recomputed_partitions,
            "speculative_launched": self.speculative_launched,
            "speculative_won": self.speculative_won,
            "zombie_tasks": self.zombie_tasks,
            "pool_rebuilds": self.pool_rebuilds,
        }


class JobMetrics:
    """Counters for one job: what actually executed.

    Exposed on :class:`SparkLiteContext` as ``last_job_metrics`` so
    benchmarks (A1) and curious users can see how much work a lineage
    did — RDDs materialized, partition tasks run, records shuffled —
    without instrumenting their own closures. ``stages`` holds one
    :class:`StageMetrics` per materialized RDD, in execution order.
    """

    def __init__(self, backend: str = ""):
        self.backend = backend
        self.stages: List[StageMetrics] = []
        self.rdds_materialized = 0
        self.partitions_computed = 0
        self.shuffles = 0
        self.shuffle_records = 0
        self.shuffle_records_moved = 0
        self.shuffle_bytes = 0
        self.shuffle_bytes_raw = 0
        self.shuffle_bytes_shm = 0
        self.shuffle_bytes_pickled = 0
        self.broadcast_joins = 0
        self.broadcast_bytes = 0
        self.cached_hits = 0
        self.fallbacks = 0
        self.task_attempts = 0
        self.retried_tasks = 0
        self.lost_executors = 0
        self.recomputed_partitions = 0
        self.speculative_launched = 0
        self.speculative_won = 0
        self.zombie_tasks = 0
        self.pool_rebuilds = 0
        self.checkpoint_hits = 0
        self.checkpoint_writes = 0
        # ---- adaptive planner (all zero when engine_adaptive is off) ----
        self.adaptive_coalesces = 0          # shuffle stages coalesced
        self.adaptive_partitions_merged = 0  # reduce buckets merged away
        self.skew_splits = 0                 # hot buckets split
        self.skew_split_tasks = 0            # reduce tasks the splits ran
        self.scan_bytes_skipped = 0          # filter-pushdown bytes dropped
        self.scan_fields_pruned = 0          # projection-pushdown fields cut
        self.pushed_filters = 0              # filter ops fused into scans
        self.pushed_projections = 0          # map ops fused into scans
        self.stats_sampled_partitions = 0    # stage-boundary samples taken
        self.stats_sampled_rows = 0          # rows pickled for estimates
        self.stats_repeat_observations = 0   # idempotent-guard cache hits
        self.wall_s = 0.0

    # ------------------------------------------------------------- recording
    def record_stage(self, stage: StageMetrics) -> StageMetrics:
        """Append one stage row and roll its counters into the job totals.

        Shuffle volume is *not* aggregated here — the runner reports it
        through :meth:`record_shuffle` at exchange time (a generic stage
        like cogroup can contain several shuffles), and the stage row
        merely carries its share for per-stage display.
        """
        self.stages.append(stage)
        if stage.cache_hit:
            if stage.kind == STAGE_CHECKPOINT:
                self.checkpoint_hits += 1
            else:
                self.cached_hits += 1
        else:
            self.rdds_materialized += 1
            self.partitions_computed += stage.partitions
        if stage.fallback:
            self.fallbacks += 1
        self.task_attempts += stage.attempts
        self.retried_tasks += stage.retried
        self.lost_executors += stage.lost_executors
        self.recomputed_partitions += stage.recomputed_partitions
        self.speculative_launched += stage.speculative_launched
        self.speculative_won += stage.speculative_won
        self.zombie_tasks += stage.zombie_tasks
        self.pool_rebuilds += stage.pool_rebuilds
        self.wall_s += stage.wall_s
        return stage

    def record_shuffle(self, records: int, nbytes: int,
                       records_moved: int = None,
                       raw_bytes: int = None,
                       shm_bytes: int = 0,
                       pickled_bytes: int = None) -> None:
        """One exchange: ``records`` entered it (pre-combine) and
        ``records_moved`` actually crossed it (defaults to ``records``
        when no combiner ran); ``nbytes`` moved on the wire against a
        ``raw_bytes`` uncompressed size. ``shm_bytes`` of that moved by
        shared-memory reference, the rest — ``pickled_bytes``, which
        defaults to all of ``nbytes`` — through a pickle wall."""
        self.shuffles += 1
        self.shuffle_records += records
        self.shuffle_records_moved += (records if records_moved is None
                                       else records_moved)
        self.shuffle_bytes += nbytes
        self.shuffle_bytes_raw += nbytes if raw_bytes is None else raw_bytes
        self.shuffle_bytes_shm += shm_bytes
        self.shuffle_bytes_pickled += (nbytes - shm_bytes
                                       if pickled_bytes is None
                                       else pickled_bytes)

    def record_broadcast_join(self, nbytes: int = 0) -> None:
        """One join served by a broadcast table of ``nbytes`` serialized
        bytes (the exact ``payload_bytes`` of the side that crossed)."""
        self.broadcast_joins += 1
        self.broadcast_bytes += nbytes

    def record_adaptive_reduce(self, merged_away: int, splits: int,
                               split_tasks: int) -> None:
        """One shuffle stage executed under an adaptive reduce plan."""
        if merged_away:
            self.adaptive_coalesces += 1
            self.adaptive_partitions_merged += merged_away
        self.skew_splits += splits
        self.skew_split_tasks += split_tasks

    def record_scan_pushdown(self, bytes_skipped: int, fields_pruned: int,
                             filters: int = 0, projections: int = 0) -> None:
        """One scan executed with filters/projections pushed into it."""
        self.scan_bytes_skipped += bytes_skipped
        self.scan_fields_pruned += fields_pruned
        self.pushed_filters += filters
        self.pushed_projections += projections

    def next_stage_id(self) -> int:
        return len(self.stages)

    # ------------------------------------------------------------ reporting
    def as_dict(self, include_stages: bool = False) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "rdds_materialized": self.rdds_materialized,
            "partitions_computed": self.partitions_computed,
            "shuffles": self.shuffles,
            "shuffle_records": self.shuffle_records,
            "shuffle_records_moved": self.shuffle_records_moved,
            "shuffle_bytes": self.shuffle_bytes,
            "shuffle_bytes_raw": self.shuffle_bytes_raw,
            "shuffle_bytes_shm": self.shuffle_bytes_shm,
            "shuffle_bytes_pickled": self.shuffle_bytes_pickled,
            "broadcast_joins": self.broadcast_joins,
            "broadcast_bytes": self.broadcast_bytes,
            "cached_hits": self.cached_hits,
            "fallbacks": self.fallbacks,
            "task_attempts": self.task_attempts,
            "retried_tasks": self.retried_tasks,
            "lost_executors": self.lost_executors,
            "recomputed_partitions": self.recomputed_partitions,
            "speculative_launched": self.speculative_launched,
            "speculative_won": self.speculative_won,
            "zombie_tasks": self.zombie_tasks,
            "pool_rebuilds": self.pool_rebuilds,
            "checkpoint_hits": self.checkpoint_hits,
            "checkpoint_writes": self.checkpoint_writes,
            "adaptive_coalesces": self.adaptive_coalesces,
            "adaptive_partitions_merged": self.adaptive_partitions_merged,
            "skew_splits": self.skew_splits,
            "skew_split_tasks": self.skew_split_tasks,
            "scan_bytes_skipped": self.scan_bytes_skipped,
            "scan_fields_pruned": self.scan_fields_pruned,
            "pushed_filters": self.pushed_filters,
            "pushed_projections": self.pushed_projections,
            "stats_sampled_partitions": self.stats_sampled_partitions,
            "stats_sampled_rows": self.stats_sampled_rows,
            "stats_repeat_observations": self.stats_repeat_observations,
            "backend": self.backend,
            "wall_s": round(self.wall_s, 6),
        }
        if include_stages:
            out["stages"] = [s.as_dict() for s in self.stages]
        return out

    def to_json(self, include_stages: bool = True, indent: int = 2) -> str:
        return json.dumps(self.as_dict(include_stages=include_stages),
                          indent=indent, sort_keys=True)


@dataclass
class MetricsTrace:
    """A bounded record of the jobs a context has run."""

    maxlen: int = 1024
    _jobs: Deque[JobMetrics] = field(default_factory=deque, repr=False)

    def append(self, job: JobMetrics) -> None:
        self._jobs.append(job)
        while len(self._jobs) > self.maxlen:
            self._jobs.popleft()

    def __len__(self) -> int:
        return len(self._jobs)

    def jobs(self) -> List[JobMetrics]:
        return list(self._jobs)

    def as_dict(self, include_stages: bool = True) -> Dict[str, Any]:
        return {"jobs": [j.as_dict(include_stages=include_stages)
                         for j in self._jobs]}

    def to_json(self, include_stages: bool = True, indent: int = 2) -> str:
        return json.dumps(self.as_dict(include_stages=include_stages),
                          indent=indent, sort_keys=True)
