"""Task supervision: deadlines, executor loss, speculative execution.

The backends used to treat a stage batch as all-or-nothing: a crashed
process pool re-ran the *whole* batch. The :class:`TaskSupervisor`
replaces that with Spark-style fine-grained recovery — one batch is a
set of independent partition tasks, each watched individually:

* **executor loss** — a task whose executor dies (a real worker crash
  surfacing as ``BrokenProcessPool``, or an injected
  :class:`ExecutorLostError` on the in-process backends) is re-launched
  on its own; finished partitions are never recomputed. Pool rebuilds
  are bounded by the backend's *rebuild budget*, after which the
  remaining tasks finish in-driver.
* **zombie detection** — with a ``task_deadline_s`` set, a task that
  outlives its deadline is declared a zombie: its eventual result is
  discarded and a replacement attempt runs in-driver immediately, so a
  wedged executor can never wedge the job. (Partition tasks are pure,
  so the replacement's result is byte-identical by construction.)
* **speculative execution** — once a quantile of the stage's tasks has
  completed, any task running longer than ``multiplier × median`` of
  the completed runtimes gets a backup attempt; first result wins, ties
  broken deterministically in favor of the earlier attempt. Purity
  again guarantees the output does not depend on which attempt wins.
* **fault injection** — a :class:`~repro.net.faults.FaultSchedule` with
  engine specs (``kill_worker`` / ``hang_task``) claims task keys
  deterministically; a claimed task's *first* attempt dies or wedges,
  and every recovery path above is exercised by the chaos harness.

Everything the supervisor observed lands in the batch's
:class:`RunResult` and from there in ``JobMetrics`` (``lost_executors``,
``recomputed_partitions``, ``speculative_launched``, ``speculative_won``,
``zombie_tasks``, ``pool_rebuilds``).
"""

from __future__ import annotations

import math
import os
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.net.faults import FAULT_HANG_TASK, FAULT_KILL_WORKER


class ExecutorLostError(RuntimeError):
    """The executor running a task died mid-flight (real or injected).

    Raised *instead of* a task failure: losing an executor is never the
    task's fault, so it does not consume the task's retry budget — the
    supervisor relaunches the partition and counts it as recomputed.
    """


@dataclass
class SupervisePolicy:
    """How a backend watches a stage batch (off by default)."""

    #: a task running longer than this many wall seconds is a zombie;
    #: ``None``/``0`` disables deadlines
    task_deadline_s: Optional[float] = None
    #: launch backup attempts for stragglers
    speculation: bool = False
    #: fraction of the stage that must complete before speculating
    speculation_quantile: float = 0.75
    #: straggler threshold: ``multiplier × median`` completed runtime
    speculation_multiplier: float = 2.0
    #: never speculate on tasks younger than this (seconds)
    speculation_min_runtime_s: float = 0.05
    #: monitor tick while tasks are in flight (seconds)
    heartbeat_s: float = 0.02
    #: a FaultSchedule whose ``engine_specs`` claim task keys
    engine_faults: Any = None

    @property
    def engine_specs(self) -> list:
        return list(getattr(self.engine_faults, "engine_specs", ()) or ())

    @property
    def monitoring(self) -> bool:
        """True when the batch needs a watchdog tick, not just a wait."""
        return bool(self.task_deadline_s) or self.speculation

    @property
    def active(self) -> bool:
        return self.monitoring or bool(self.engine_specs)


@dataclass
class RunResult:
    """What one stage batch actually did."""

    results: List[Any] = field(default_factory=list)
    fell_back: bool = False
    attempts: int = 0   # total task executions, including re-runs
    retried: int = 0    # tasks that needed more than one attempt
    # ---- supervision counters (see module docstring) ----
    lost_executors: int = 0          # worker deaths observed (real/injected)
    recomputed_partitions: int = 0   # partitions relaunched after a loss
    speculative_launched: int = 0    # backup attempts started
    speculative_won: int = 0         # backups that beat the original
    zombie_tasks: int = 0            # tasks past their deadline, replaced
    pool_rebuilds: int = 0           # process pools torn down and rebuilt


class _Attempted:
    """Run one task under an attempt budget; returns ``(attempts, result)``.

    A callable object (not a closure) so it pickles to a process pool
    whenever the wrapped function does. Re-execution is deterministic
    because partition tasks are pure: same input, same output.
    ``ExecutorLostError`` passes straight through — executor loss is the
    supervisor's to handle and must not consume the task's budget.
    """

    __slots__ = ("fn", "retries")

    def __init__(self, fn: Callable[[Any], Any], retries: int):
        self.fn = fn
        self.retries = retries

    def __call__(self, x: Any) -> Tuple[int, Any]:
        attempt = 0
        while True:
            attempt += 1
            try:
                return attempt, self.fn(x)
            except ExecutorLostError:
                raise
            except Exception:
                if attempt > self.retries:
                    raise


class _InjectedTask:
    """A task's first attempt, carrying one scheduled engine fault.

    ``kill_worker`` takes the host down: ``os._exit`` in a pool worker
    (a real ``BrokenProcessPool``), an :class:`ExecutorLostError` on the
    in-process backends (threads cannot be killed, so the loss is
    simulated at the same decision point). ``hang_task`` wedges for
    ``duration`` seconds before computing, long enough to trip a task
    deadline or a speculation threshold when one is configured.
    """

    __slots__ = ("task", "kind", "duration")

    def __init__(self, task: Callable[[Any], Any], kind: str,
                 duration: float):
        self.task = task
        self.kind = kind
        self.duration = duration

    def __call__(self, x: Any) -> Any:
        if self.kind == FAULT_KILL_WORKER:
            import multiprocessing
            if multiprocessing.current_process().name != "MainProcess":
                os._exit(1)  # a real worker death, mid-stage
            raise ExecutorLostError("injected executor loss")
        if self.kind == FAULT_HANG_TASK:
            time.sleep(self.duration)
        return self.task(x)


class _Attempt:
    """One in-flight submission of one partition task."""

    __slots__ = ("index", "serial", "started", "speculative", "zombie")

    def __init__(self, index: int, serial: int, started: float,
                 speculative: bool):
        self.index = index
        self.serial = serial
        self.started = started
        self.speculative = speculative
        self.zombie = False


#: exceptions that mean "this payload would not cross the pickle wall"
_PICKLE_ERRORS = (pickle.PicklingError, TypeError, AttributeError)


class TaskSupervisor:
    """Supervises one stage batch on behalf of a backend.

    ``run_serial`` executes tasks one at a time on the calling thread
    (the serial backend, small batches, and in-driver fallbacks);
    ``run_pool`` drives a futures pool with per-task recovery, deadlines
    and speculation. Both return a :class:`RunResult` whose ``results``
    are in input order on every path — determinism never depends on
    which executor, attempt, or recovery route produced a partition.
    """

    def __init__(self, fn: Callable[[Any], Any], inputs: List[Any],
                 retries: int, policy: Optional[SupervisePolicy] = None,
                 stage_key: Optional[str] = None):
        self.fn = fn
        self.inputs = inputs
        self.retries = retries
        self.policy = policy or SupervisePolicy()
        self.stage_key = stage_key or "anon"
        #: fault claimed by the schedule for each index's FIRST attempt
        self._injected: List[Any] = [None] * len(inputs)
        faults = self.policy.engine_faults
        if faults is not None and self.policy.engine_specs:
            for i in range(len(inputs)):
                self._injected[i] = faults.engine_fault_at(
                    f"{self.stage_key}:{i}")

    # ------------------------------------------------------------- task build
    def make_task(self, index: int, first: bool) -> Callable[[Any], Any]:
        """The callable for one submission of partition ``index``.

        Only the very first submission carries an injected fault;
        relaunches, backups, and in-driver replacements run the bare
        task — the fault hit the *executor*, not the data.
        """
        task = _Attempted(self.fn, self.retries)
        spec = self._injected[index] if first else None
        if spec is not None:
            return _InjectedTask(task, spec.kind, spec.duration)
        return task

    # ------------------------------------------------------------ serial path
    def run_serial(self, fell_back: bool = False) -> RunResult:
        out = RunResult(fell_back=fell_back)
        for index, x in enumerate(self.inputs):
            out.attempts += 1
            lost = False
            try:
                attempts, value = self.make_task(index, first=True)(x)
            except ExecutorLostError:
                lost = True
                out.lost_executors += 1
                out.recomputed_partitions += 1
                out.attempts += 1
                attempts, value = self.make_task(index, first=False)(x)
            out.attempts += attempts - 1
            if lost or attempts > 1:
                out.retried += 1
            out.results.append(value)
        return out

    # -------------------------------------------------------------- pool path
    def run_pool(self, submit: Callable[..., Any],
                 recover: Optional[Callable[[], bool]] = None) -> RunResult:
        """Drive the batch through a futures pool.

        ``submit(task, arg)`` returns a Future; ``recover()`` (process
        pools only) rebuilds a broken pool and returns False once the
        rebuild budget is exhausted — remaining partitions then finish
        in-driver with ``fell_back`` set.
        """
        policy = self.policy
        n = len(self.inputs)
        out = RunResult(results=[None] * n)
        resolved = [False] * n
        launches = [0] * n        # submissions + driver runs per index
        extra_attempts = [0] * n  # in-worker retries reported by _Attempted
        speculated = [False] * n
        durations: List[float] = []
        active: dict = {}         # Future -> _Attempt
        serial = 0
        pending = n
        deadline = policy.task_deadline_s or 0.0
        tick = policy.heartbeat_s if policy.monitoring else None

        def launch(index: int, first: bool,
                   speculative: bool = False) -> bool:
            nonlocal serial
            task = self.make_task(index, first)
            try:
                future = submit(task, self.inputs[index])
            except BrokenProcessPool:
                return False
            launches[index] += 1
            serial += 1
            active[future] = _Attempt(index, serial, time.monotonic(),
                                      speculative)
            return True

        def resolve(index: int, value: Any, attempt: Optional[_Attempt],
                    now: float) -> None:
            nonlocal pending
            out.results[index] = value
            resolved[index] = True
            pending -= 1
            if attempt is not None:
                durations.append(now - attempt.started)
                if attempt.speculative:
                    out.speculative_won += 1

        def run_in_driver(index: int) -> None:
            launches[index] += 1
            attempts, value = self.make_task(index, first=False)(
                self.inputs[index])
            extra_attempts[index] += attempts - 1
            resolve(index, value, None, time.monotonic())

        def handle_pool_loss() -> None:
            """The pool died, taking every in-flight task with it.

            A broken pool fails all pending futures at once, so this is
            handled as one loss event: rebuild (budget allowing), then
            relaunch only the *unresolved* partitions — results already
            gathered are kept, which is the whole point of fine-grained
            recovery.
            """
            out.lost_executors += 1
            active.clear()
            recovered = recover is not None and recover()
            if recovered:
                out.pool_rebuilds += 1
            else:
                out.fell_back = True
            for index in range(n):
                if resolved[index]:
                    continue
                if launches[index] > 0:  # actually lost, not just queued
                    out.recomputed_partitions += 1
                if not recovered or not launch(index, first=False):
                    run_in_driver(index)

        pool_lost = False
        for index in range(n):
            if not launch(index, first=True):
                pool_lost = True
                break
        if pool_lost:
            handle_pool_loss()

        while pending:
            if not active:
                # nothing in flight can resolve the remainder
                for index in range(n):
                    if not resolved[index]:
                        out.fell_back = True
                        run_in_driver(index)
                break
            done, _ = wait(list(active), timeout=tick,
                           return_when=FIRST_COMPLETED)
            now = time.monotonic()
            pool_lost = False
            # deterministic tie-break: earlier attempts win equal finishes
            for future in sorted(done, key=lambda f: active[f].serial):
                attempt = active.pop(future)
                index = attempt.index
                if future.cancelled():
                    continue
                error = future.exception()
                if resolved[index]:
                    # a losing twin or a late zombie: executed, ignored
                    if error is None:
                        extra_attempts[index] += future.result()[0]
                    continue
                if error is None:
                    attempts, value = future.result()
                    extra_attempts[index] += attempts - 1
                    resolve(index, value, attempt, now)
                elif isinstance(error, ExecutorLostError):
                    out.lost_executors += 1
                    out.recomputed_partitions += 1
                    if not launch(index, first=False):
                        pool_lost = True
                elif isinstance(error, BrokenProcessPool):
                    pool_lost = True
                elif isinstance(error, _PICKLE_ERRORS):
                    # unpicklable data or result: this partition stays
                    # in-driver (a genuine task TypeError re-raises here)
                    out.fell_back = True
                    run_in_driver(index)
                else:
                    raise error
            if pool_lost:
                handle_pool_loss()
                now = time.monotonic()
            if deadline > 0:
                for future, attempt in list(active.items()):
                    if (attempt.zombie or resolved[attempt.index]
                            or now - attempt.started <= deadline):
                        continue
                    attempt.zombie = True
                    out.zombie_tasks += 1
                    future.cancel()
                    run_in_driver(attempt.index)
            if policy.speculation and pending and durations:
                completed = n - pending
                if completed >= max(1, math.ceil(
                        policy.speculation_quantile * n)):
                    median = sorted(durations)[len(durations) // 2]
                    cutoff = max(policy.speculation_min_runtime_s,
                                 policy.speculation_multiplier * median)
                    for attempt in list(active.values()):
                        index = attempt.index
                        if (resolved[index] or speculated[index]
                                or attempt.speculative or attempt.zombie
                                or now - attempt.started <= cutoff):
                            continue
                        speculated[index] = True
                        if launch(index, first=False, speculative=True):
                            out.speculative_launched += 1

        out.attempts = sum(launches) + sum(extra_attempts)
        out.retried = sum(
            1 for index in range(n)
            if launches[index] + extra_attempts[index] > 1)
        return out
