"""A miniature Spark: lazy RDDs, shuffles, and a thin DataFrame layer.

The paper runs its cleaning/merging/analytics as Spark queries over HDFS
JSON. :class:`SparkLiteContext` reproduces that programming model in one
process: transformations build a lazy lineage DAG, actions trigger a job,
narrow transformations fuse within a partition, and wide transformations
(reduceByKey / join / groupByKey / sortBy / distinct) run a hash-partition
shuffle. Partition tasks run on a pluggable
:class:`~repro.engine.backends.ExecutionBackend` — serial (reference
semantics), thread (default) or process (true parallelism for picklable
stages) — and results of ``persist()``-ed RDDs are served across jobs
from an LRU-budgeted :class:`~repro.engine.cache.CacheManager` (with
optional MiniDfs spill). Shuffles take the fast path where it exists:
map-side combiners for ``reduce_by_key`` / ``aggregate_by_key`` /
``distinct`` / ``count_by_key``, serialize-once (optionally compressed)
:class:`~repro.engine.shuffle.ShuffleBlock` payloads on the process
backend, sampled range partitioning for ``sort_by``, and an adaptive
broadcast-hash ``join`` when one side fits under a size threshold.
With ``engine_columnar=True`` the hot path goes columnar: elementwise
narrow ops run batch-at-a-time, combiners fold per
:class:`~repro.engine.columnar.RecordBatch`, exchanges seal typed
:class:`~repro.engine.columnar.BatchBlock`s, and on the process backend
the blocks ride ``multiprocessing.shared_memory`` so only descriptors
cross the pickle walls — with byte-identical results either way.
Every action leaves a per-stage
:class:`~repro.engine.metrics.JobMetrics` on
``context.last_job_metrics``, including records/bytes shuffled both
before and after combining/compression.

Example::

    sc = SparkLiteContext(parallelism=4, backend="process")
    counts = (sc.parallelize(words)
                .map(lambda w: (w, 1))
                .reduce_by_key(lambda a, b: a + b)
                .collect())
"""

from repro.engine.backends import (BACKENDS, ExecutionBackend,
                                   ProcessBackend, SerialBackend,
                                   ThreadBackend, resolve_backend)
from repro.engine.cache import CacheManager
from repro.engine.checkpoint import CheckpointManager
from repro.engine.columnar import (BatchBlock, RecordBatch, ShmRegistry,
                                   batch_to_rows, shm_available)
from repro.engine.context import SparkLiteContext
from repro.engine.dataframe import DataFrame, Row
from repro.engine.metrics import JobMetrics, MetricsTrace, StageMetrics
from repro.engine.rdd import RDD
from repro.engine.shuffle import (HashPartitioner, RangePartitioner,
                                  ShuffleBlock)
from repro.engine.supervisor import (ExecutorLostError, RunResult,
                                     SupervisePolicy, TaskSupervisor)

__all__ = ["SparkLiteContext", "RDD", "DataFrame", "Row",
           "ExecutionBackend", "SerialBackend", "ThreadBackend",
           "ProcessBackend", "BACKENDS", "resolve_backend",
           "JobMetrics", "StageMetrics", "MetricsTrace",
           "CacheManager", "CheckpointManager", "ShuffleBlock",
           "RecordBatch", "BatchBlock", "ShmRegistry", "batch_to_rows",
           "shm_available", "HashPartitioner", "RangePartitioner",
           "ExecutorLostError", "RunResult", "SupervisePolicy",
           "TaskSupervisor"]
