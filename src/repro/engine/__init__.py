"""A miniature Spark: lazy RDDs, shuffles, and a thin DataFrame layer.

The paper runs its cleaning/merging/analytics as Spark queries over HDFS
JSON. :class:`SparkLiteContext` reproduces that programming model in one
process: transformations build a lazy lineage DAG, actions trigger a job,
narrow transformations fuse within a partition, and wide transformations
(reduceByKey / join / groupByKey / sortBy / distinct) run a hash-partition
shuffle. Partitions of a job run on a thread pool; results of ``cache()``d
RDDs are reused across jobs.

Example::

    sc = SparkLiteContext(parallelism=4)
    counts = (sc.parallelize(words)
                .map(lambda w: (w, 1))
                .reduce_by_key(lambda a, b: a + b)
                .collect())
"""

from repro.engine.context import SparkLiteContext
from repro.engine.rdd import RDD
from repro.engine.dataframe import DataFrame, Row

__all__ = ["SparkLiteContext", "RDD", "DataFrame", "Row"]
