"""Configuration for the synthetic world generator.

Every constant here is traceable to a number reported in the paper; the
comment on each field cites the section it calibrates against. ``scale``
shrinks the population (paper scale = 1.0) while preserving distributional
shape, so a laptop run reproduces the same analyses in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import ConfigError

#: Population sizes reported in §3 of the paper.
PAPER_NUM_COMPANIES = 744_036
PAPER_NUM_USERS = 1_109_441
PAPER_NUM_CRUNCHBASE = 10_156


@dataclass
class CalibrationParams:
    """Latent-quality model parameters (see DESIGN.md §5).

    Success is drawn from a logistic model over social presence, demo
    video, and a per-company engagement latent; engagement metrics (likes,
    tweets, followers) are lognormal with the same latent. The defaults
    were tuned numerically so the Figure 6 conditional success rates
    emerge from the joint distribution rather than being looked up.
    """

    # --- social presence marginals (Figure 6, column 2) ---
    p_facebook: float = 0.0507          # 37,762 / 744,036
    p_twitter_given_fb: float = 0.8620  # so that P(fb ∧ tw) = 4.37%
    p_twitter_given_no_fb: float = 0.0538  # so that P(tw) = 9.48%
    p_video_given_social: float = 0.35  # overall video rate 4.88%
    p_video_given_no_social: float = 0.0148

    # --- success logistic (Figure 6, column 3) ---
    # Constants below were fit by tools/tune_calibration.py (random search
    # against the 11 Figure 6 rows; final relative-error score 0.021).
    success_base: float = -5.5575        # no-social success ≈ 0.4%
    success_fb: float = 2.3387
    success_tw: float = 2.5042
    success_both_penalty: float = -1.6313  # diminishing returns of both
    success_video: float = 0.7762         # video row ≈ 10.4% vs 0.9%
    success_engagement: float = 0.6694    # >median splits: 18 / 14.7 / 15.2 / 22.2

    # --- engagement metric lognormals (medians from Figure 6) ---
    likes_log_median: float = 6.48      # e^6.48 ≈ 652 likes
    likes_log_sigma: float = 1.7
    tweets_log_median: float = 5.84     # e^5.84 ≈ 343 tweets
    tweets_log_sigma: float = 1.6
    tw_followers_log_median: float = 5.83  # e^5.83 ≈ 339 followers
    tw_followers_log_sigma: float = 1.8
    engagement_metric_coupling: float = 0.8953  # latent → log-metric loading

    # --- investor behaviour (§3, §5.1) ---
    investor_fraction: float = 0.043    # 47,345 / 1,109,441
    founder_fraction: float = 0.183
    employee_fraction: float = 0.442
    active_investor_fraction: float = 0.992  # 46,966 / 47,345 make ≥1 investment
    investments_zipf_alpha: float = 1.98  # mean ≈ 3.3, median 1 after truncation
    global_popularity_alpha: float = 0.55  # spread of non-herd investments
    investments_max: int = 1000         # "most active investor ≈ 1000" (§3)
    mean_follows: float = 247.0         # per investor (§3)
    follows_zipf_alpha: float = 0.9

    # --- planted investor communities (§5.2/§5.3) ---
    num_communities: int = 96           # CoDA found 96
    community_size_mean: float = 190.2  # average community size
    community_size_sigma: float = 0.9   # lognormal spread
    herd_strength_strong: float = 0.95  # strongest communities
    herd_strength_weak: float = 0.04
    strong_community_fraction: float = 0.25
    membership_size_bias: float = 0.3   # whale weighting when joining
    p_syndicate_disclosed: float = 0.6  # investors listing their syndicate
    community_pool_factor: float = 1.6  # hot-list companies per member
    pool_weight_alpha: float = 0.55     # concentration within a pool
    p_invest_in_community_pool: float = 1.0  # scales every herd strength

    # --- company-side investment targets (§5.1) ---
    invested_company_fraction: float = 0.0806  # 59,953 / 744,036
    investors_per_company_mean: float = 2.64   # 158,199 / 59,953


@dataclass
class WorldConfig:
    """Top-level knobs for :func:`repro.world.generate_world`."""

    scale: float = 1.0 / 16.0
    seed: int = 20160626  # ExploreDB'16 opening day
    params: CalibrationParams = field(default_factory=CalibrationParams)
    #: fraction of AngelList companies that also have a CrunchBase profile
    #: *with funding data* beyond what AngelList shows (§3: 10,156 / 744,036
    #: were used for augmentation, but every successful company must be
    #: discoverable via CrunchBase for the success column to be computable).
    crunchbase_extra_fraction: float = 0.003
    #: probability an AngelList profile links its CrunchBase URL directly
    #: (the rest must be found by the name-search fallback in the augmenter).
    p_crunchbase_url_on_angellist: float = 0.6
    #: fraction of currently fundraising companies (the public AngelList
    #: listing endpoint returns only these; §3 says "about 4000" ≈ 0.54%).
    p_currently_raising: float = 0.0054

    def __post_init__(self) -> None:
        if not 0 < self.scale <= 1.0:
            raise ConfigError(f"scale must be in (0, 1], got {self.scale}")

    @property
    def num_companies(self) -> int:
        return max(50, int(round(PAPER_NUM_COMPANIES * self.scale)))

    @property
    def num_users(self) -> int:
        return max(80, int(round(PAPER_NUM_USERS * self.scale)))

    @property
    def num_communities(self) -> int:
        """Community count shrinks with sqrt(scale) so sizes stay meaningful."""
        return max(6, int(round(self.params.num_communities * self.scale ** 0.5)))

    @property
    def community_size_mean(self) -> float:
        return max(8.0, self.params.community_size_mean * self.scale ** 0.5)

    @property
    def mean_follows(self) -> float:
        """Follow fan-out shrinks with sqrt(scale) to keep the graph sparse."""
        return max(8.0, self.params.mean_follows * self.scale ** 0.5)

    @property
    def investments_max(self) -> int:
        return max(20, int(round(self.params.investments_max * self.scale ** 0.5)))

    @classmethod
    def tiny(cls, seed: int = 7) -> "WorldConfig":
        """A few-thousand-entity world for unit tests (< 1 s to build)."""
        return cls(scale=0.003, seed=seed)

    @classmethod
    def small(cls, seed: int = 7) -> "WorldConfig":
        """~1/80 scale: big enough for stable statistics, quick to build."""
        return cls(scale=0.0125, seed=seed)

    @classmethod
    def default(cls, seed: int = 20160626) -> "WorldConfig":
        """The benchmark scale: 1/16 of the paper's crawl."""
        return cls(scale=1.0 / 16.0, seed=seed)

    @classmethod
    def paper(cls, seed: int = 20160626) -> "WorldConfig":
        """Full paper scale (744k companies); needs several GB of RAM."""
        return cls(scale=1.0, seed=seed)
