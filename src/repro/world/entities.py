"""Ground-truth entity records for the synthetic world.

These are the *world-side* objects. The simulated APIs project them into
per-source JSON documents (an AngelList startup record, a CrunchBase
organization, a Facebook page, a Twitter profile) — crawlers and analyses
only ever see those projections, mirroring how the paper's pipeline only
saw API responses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class FundingRound:
    """One financing event, as CrunchBase would report it."""

    round_id: int
    company_id: int
    round_type: str          # "seed", "series_a", ...
    amount_usd: int
    announced_day: int       # simulated day offset
    investor_ids: List[int] = field(default_factory=list)

    def to_json(self) -> Dict:
        return {
            "round_id": self.round_id,
            "company_id": self.company_id,
            "round_type": self.round_type,
            "amount_usd": self.amount_usd,
            "announced_day": self.announced_day,
            "investor_ids": list(self.investor_ids),
        }


@dataclass
class Investment:
    """A single investor → company investment edge (ground truth)."""

    investor_id: int
    company_id: int
    day: int = 0

    def to_json(self) -> Dict:
        return {
            "investor_id": self.investor_id,
            "company_id": self.company_id,
            "day": self.day,
        }


@dataclass
class FacebookPage:
    """A company's Facebook page, served by the simulated Graph API."""

    page_id: int
    company_id: int
    name: str
    likes: int
    location: str
    post_count: int
    recent_posts: List[str] = field(default_factory=list)

    def to_json(self) -> Dict:
        return {
            "id": str(self.page_id),
            "name": self.name,
            "fan_count": self.likes,
            "location": {"city": self.location},
            "posts_count": self.post_count,
            "recent_posts": list(self.recent_posts),
        }


@dataclass
class TwitterProfile:
    """A company's Twitter account, served by the simulated REST API."""

    profile_id: int
    company_id: int
    screen_name: str
    created_day: int
    followers_count: int
    friends_count: int
    listed_count: int
    statuses_count: int
    latest_status: str = ""
    latest_status_day: int = 0

    def to_json(self) -> Dict:
        return {
            "id": self.profile_id,
            "screen_name": self.screen_name,
            "created_at_day": self.created_day,
            "followers_count": self.followers_count,
            "friends_count": self.friends_count,
            "listed_count": self.listed_count,
            "statuses_count": self.statuses_count,
            "status": {
                "text": self.latest_status,
                "created_at_day": self.latest_status_day,
            },
        }


@dataclass
class Company:
    """A startup as it exists in the world (superset of any one API view)."""

    company_id: int
    name: str
    slug: str
    market: str
    location: str
    quality: float                 # latent; never exposed through an API
    engagement_latent: float       # latent; drives social metrics + success
    created_day: int
    currently_raising: bool
    raised_funding: bool           # ground truth for "fundraising success"
    has_video: bool
    follower_count: int = 0
    facebook_page_id: Optional[int] = None
    twitter_profile_id: Optional[int] = None
    crunchbase_id: Optional[int] = None
    #: whether the AngelList profile links its CrunchBase URL (if absent the
    #: augmenter must fall back to name search, as in §3 of the paper).
    links_crunchbase: bool = False
    rounds: List[FundingRound] = field(default_factory=list)

    def angellist_json(self, fb_url: Optional[str], tw_url: Optional[str],
                       cb_url: Optional[str]) -> Dict:
        """Project into the document the simulated AngelList API returns."""
        video_url = (
            f"https://angel.example/videos/{self.slug}" if self.has_video else None
        )
        return {
            "id": self.company_id,
            "name": self.name,
            "angellist_url": f"https://angel.example/{self.slug}",
            "market": self.market,
            "location": self.location,
            "created_at_day": self.created_day,
            "follower_count": self.follower_count,
            "currently_raising": self.currently_raising,
            "video_url": video_url,
            "facebook_url": fb_url,
            "twitter_url": tw_url,
            "crunchbase_url": cb_url,
        }


@dataclass
class User:
    """An AngelList user: investor, founder, employee, or onlooker."""

    user_id: int
    name: str
    roles: List[str]
    follows_companies: List[int] = field(default_factory=list)
    follows_users: List[int] = field(default_factory=list)
    investments: List[int] = field(default_factory=list)  # company ids
    community_ids: List[int] = field(default_factory=list)  # planted truth
    #: the one community whose pool this investor actually herds with;
    #: None for non-investors and members who never invested.
    primary_community_id: Optional[int] = None
    #: whether the investor lists their syndicate on their profile
    #: (AngelList syndicates are public but not everyone joins one).
    syndicate_disclosed: bool = False

    @property
    def is_investor(self) -> bool:
        return "investor" in self.roles

    def angellist_json(self) -> Dict:
        syndicate = (self.primary_community_id
                     if self.syndicate_disclosed else None)
        return {
            "id": self.user_id,
            "name": self.name,
            "roles": list(self.roles),
            "follows_company_count": len(self.follows_companies),
            "follows_user_count": len(self.follows_users),
            "investment_count": len(self.investments),
            "syndicate_id": syndicate,
        }
