"""Temporal evolution of the world, for longitudinal studies (§7).

The paper's future work proposes daily snapshots of fundraising companies
so that *causality* — does engagement precede money, or follow it? — can
be separated from correlation. :class:`WorldDynamics` advances the world
one simulated day at a time with a planted causal structure:

* companies that are currently raising occasionally post / tweet; a burst
  of engagement **raises the hazard of closing a round in the following
  days** (engagement → funding, the causal direction the paper wants to
  detect);
* funded companies also get a *reverse* bump (more followers after the
  announcement) so the analysis has the confound the paper warns about.

:class:`repro.crawl.snapshots.SnapshotScheduler` crawls the evolving
world daily, and :mod:`repro.analysis.longitudinal` runs the panel
analysis over the snapshot series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.util.rng import RngStream
from repro.world.entities import FundingRound
from repro.world.generator import World


@dataclass
class DayLog:
    """What happened in the world on one simulated day."""

    day: int
    engagement_events: int = 0
    rounds_closed: int = 0
    new_campaigns: int = 0


@dataclass
class WorldDynamics:
    """Advance a :class:`World` day by day with planted causality.

    Args:
        world: the world to mutate in place.
        seed: RNG seed (independent of the world's own seed).
        engagement_to_funding_lift: multiplicative hazard lift per unit of
            recent-engagement z-score — the planted causal effect.
        base_close_hazard: per-day probability a raising company with no
            recent engagement closes a round.
    """

    world: World
    seed: int = 97
    engagement_to_funding_lift: float = 2.5
    base_close_hazard: float = 0.004
    reverse_follower_bump: int = 40
    logs: List[DayLog] = field(default_factory=list)
    _recent_engagement: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._rng = RngStream(self.seed, "dynamics")
        self._next_round_id = 1_000_000

    def step(self) -> DayLog:
        """Advance one day; returns a log of the day's events."""
        world = self.world
        world.day += 1
        npr = self._rng.np
        log = DayLog(day=world.day)

        for company in world.companies.values():
            # Engagement decays; raising companies generate fresh activity.
            recent = self._recent_engagement.get(company.company_id, 0.0) * 0.8
            if company.currently_raising:
                if npr.random() < 0.25:
                    burst = float(npr.exponential(1.0))
                    recent += burst
                    log.engagement_events += 1
                    self._apply_engagement(company, burst)
                hazard = self.base_close_hazard * (
                    1.0 + self.engagement_to_funding_lift * recent)
                if npr.random() < min(0.5, hazard):
                    self._close_round(company)
                    log.rounds_closed += 1
            elif not company.raised_funding and npr.random() < 0.0004:
                company.currently_raising = True
                log.new_campaigns += 1
            self._recent_engagement[company.company_id] = recent

        self.logs.append(log)
        return log

    def run(self, days: int) -> List[DayLog]:
        """Advance ``days`` days and return the per-day logs."""
        return [self.step() for _ in range(days)]

    def _apply_engagement(self, company, burst: float) -> None:
        world = self.world
        # Buzz is visible on AngelList itself: follower count ticks up,
        # so the panel has an engagement signal even for companies with
        # no linked social accounts.
        company.follower_count += max(1, int(round(burst * 3)))
        if company.twitter_profile_id is not None:
            profile = world.twitter_profiles[company.twitter_profile_id]
            profile.statuses_count += max(1, int(round(burst * 3)))
            profile.followers_count += max(0, int(round(burst * 5)))
            profile.latest_status = f"Campaign update from {company.name}"
            profile.latest_status_day = world.day
        if company.facebook_page_id is not None:
            page = world.facebook_pages[company.facebook_page_id]
            page.post_count += max(1, int(round(burst * 2)))
            page.likes += max(0, int(round(burst * 8)))

    def _close_round(self, company) -> None:
        world = self.world
        company.currently_raising = False
        company.raised_funding = True
        amount = int(np.exp(12.0 + 0.8 * float(self._rng.np.standard_normal())))
        company.rounds.append(FundingRound(
            round_id=self._next_round_id, company_id=company.company_id,
            round_type="seed", amount_usd=amount, announced_day=world.day))
        self._next_round_id += 1
        if company.crunchbase_id is None:
            existing = [c.crunchbase_id for c in world.companies.values()
                        if c.crunchbase_id is not None]
            company.crunchbase_id = (max(existing) + 1) if existing else 1
        # Reverse effect: the announcement itself attracts followers.
        company.follower_count += self.reverse_follower_bump
