"""Save/load a generated world to gzipped JSON on the local filesystem.

Large worlds (the 1/16 default takes a few seconds to generate, paper
scale minutes) can be generated once and reloaded by benchmarks, the
CLI, and notebooks. The format is a plain JSON document — stable,
diffable, and independent of pickle.
"""

from __future__ import annotations

import gzip
import json
from typing import Dict

from repro.world.config import CalibrationParams, WorldConfig
from repro.world.entities import (Company, FacebookPage, FundingRound,
                                  Investment, TwitterProfile, User)
from repro.world.generator import PlantedCommunity, World

FORMAT_VERSION = 1


def save_world(world: World, path: str) -> None:
    """Serialize ``world`` to ``path`` (gzipped JSON)."""
    document = {
        "format_version": FORMAT_VERSION,
        "config": {
            "scale": world.config.scale,
            "seed": world.config.seed,
            "crunchbase_extra_fraction":
                world.config.crunchbase_extra_fraction,
            "p_crunchbase_url_on_angellist":
                world.config.p_crunchbase_url_on_angellist,
            "p_currently_raising": world.config.p_currently_raising,
            "params": vars(world.config.params),
        },
        "day": world.day,
        "companies": [_company_doc(c) for c in world.companies.values()],
        "users": [_user_doc(u) for u in world.users.values()],
        "investments": [inv.to_json() for inv in world.investments],
        "facebook_pages": [_page_doc(p)
                           for p in world.facebook_pages.values()],
        "twitter_profiles": [_profile_doc(p)
                             for p in world.twitter_profiles.values()],
        "planted_communities": [
            {"community_id": c.community_id,
             "member_ids": c.member_ids,
             "pool_company_ids": c.pool_company_ids,
             "herd_strength": c.herd_strength}
            for c in world.planted_communities],
    }
    with gzip.open(path, "wt", encoding="utf-8") as handle:
        json.dump(document, handle, separators=(",", ":"))


def load_world(path: str) -> World:
    """Reconstruct a world saved by :func:`save_world`."""
    with gzip.open(path, "rt", encoding="utf-8") as handle:
        document = json.load(handle)
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported world format version: {version}")

    config_doc = document["config"]
    config = WorldConfig(
        scale=config_doc["scale"], seed=config_doc["seed"],
        params=CalibrationParams(**config_doc["params"]),
        crunchbase_extra_fraction=config_doc["crunchbase_extra_fraction"],
        p_crunchbase_url_on_angellist=config_doc[
            "p_crunchbase_url_on_angellist"],
        p_currently_raising=config_doc["p_currently_raising"])
    world = World(config=config, day=document["day"])

    for doc in document["companies"]:
        company = _company_from(doc)
        world.companies[company.company_id] = company
    for doc in document["users"]:
        user = _user_from(doc)
        world.users[user.user_id] = user
    world.investments = [
        Investment(investor_id=d["investor_id"], company_id=d["company_id"],
                   day=d["day"])
        for d in document["investments"]]
    for doc in document["facebook_pages"]:
        page = _page_from(doc)
        world.facebook_pages[page.page_id] = page
    for doc in document["twitter_profiles"]:
        profile = _profile_from(doc)
        world.twitter_profiles[profile.profile_id] = profile
    world.planted_communities = [
        PlantedCommunity(community_id=d["community_id"],
                         member_ids=d["member_ids"],
                         pool_company_ids=d["pool_company_ids"],
                         herd_strength=d["herd_strength"])
        for d in document["planted_communities"]]
    return world


# ------------------------------------------------------------------ helpers

def _company_doc(company: Company) -> Dict:
    doc = {k: getattr(company, k) for k in (
        "company_id", "name", "slug", "market", "location", "quality",
        "engagement_latent", "created_day", "currently_raising",
        "raised_funding", "has_video", "follower_count",
        "facebook_page_id", "twitter_profile_id", "crunchbase_id",
        "links_crunchbase")}
    doc["rounds"] = [r.to_json() for r in company.rounds]
    return doc


def _company_from(doc: Dict) -> Company:
    rounds = [FundingRound(round_id=r["round_id"],
                           company_id=r["company_id"],
                           round_type=r["round_type"],
                           amount_usd=r["amount_usd"],
                           announced_day=r["announced_day"],
                           investor_ids=r["investor_ids"])
              for r in doc.pop("rounds")]
    return Company(rounds=rounds, **doc)


def _user_doc(user: User) -> Dict:
    return {k: getattr(user, k) for k in (
        "user_id", "name", "roles", "follows_companies", "follows_users",
        "investments", "community_ids", "primary_community_id",
        "syndicate_disclosed")}


def _user_from(doc: Dict) -> User:
    return User(**doc)


def _page_doc(page: FacebookPage) -> Dict:
    return {k: getattr(page, k) for k in (
        "page_id", "company_id", "name", "likes", "location",
        "post_count", "recent_posts")}


def _page_from(doc: Dict) -> FacebookPage:
    return FacebookPage(**doc)


def _profile_doc(profile: TwitterProfile) -> Dict:
    return {k: getattr(profile, k) for k in (
        "profile_id", "company_id", "screen_name", "created_day",
        "followers_count", "friends_count", "listed_count",
        "statuses_count", "latest_status", "latest_status_day")}


def _profile_from(doc: Dict) -> TwitterProfile:
    return TwitterProfile(**doc)
