"""Generator for the synthetic crowdfunding world.

The generative model (DESIGN.md §5) works latent-first:

1. Every company gets an *engagement latent* ``e ~ N(0,1)`` and a quality
   score. Social-media presence is drawn with the marginal rates of
   Figure 6; engagement metrics (likes / tweets / followers) are lognormal
   with medians 652 / 343 / 339 and loading ``engagement_metric_coupling``
   on ``e``; fundraising success is a logistic in (presence, video, e).
   The Figure 6 table therefore *emerges* from a joint distribution — the
   analysis pipeline has to rediscover it from crawled JSON.
2. Users get roles with the §3 fractions. Active investors draw an
   activity budget from a truncated Zipf (mean ≈ 3.3, median 1).
3. Overlapping investor communities are planted with heterogeneous "herd
   strength": members of a strong community spend most investment slots
   on the community's hot list, producing the Figure 4/5/7 structure that
   CoDA must later detect.
4. Follow edges (user→company, user→user) give the BFS crawler of §3 a
   graph to expand over; every company gets at least one follower and
   every user at least one followed company so the crawl can cover the
   world the way the paper's crawl covered AngelList.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.util.rng import RngStream
from repro.world.config import WorldConfig
from repro.world.entities import (
    Company,
    FacebookPage,
    FundingRound,
    Investment,
    TwitterProfile,
    User,
)

_MARKETS = (
    "fintech", "healthcare", "education", "ecommerce", "saas", "biotech",
    "gaming", "logistics", "security", "media", "energy", "travel",
)
_CITIES = (
    "San Francisco", "New York", "Boston", "Austin", "Seattle", "Chicago",
    "Los Angeles", "Philadelphia", "Denver", "Atlanta",
)
_ROUND_TYPES = ("seed", "series_a", "series_b")


@dataclass
class PlantedCommunity:
    """Ground-truth investor community planted by the generator."""

    community_id: int
    member_ids: List[int]
    pool_company_ids: List[int]
    herd_strength: float

    @property
    def size(self) -> int:
        return len(self.member_ids)


@dataclass
class World:
    """The complete ground-truth ecosystem; sources serve views of this."""

    config: WorldConfig
    companies: Dict[int, Company] = field(default_factory=dict)
    users: Dict[int, User] = field(default_factory=dict)
    investments: List[Investment] = field(default_factory=list)
    facebook_pages: Dict[int, FacebookPage] = field(default_factory=dict)
    twitter_profiles: Dict[int, TwitterProfile] = field(default_factory=dict)
    planted_communities: List[PlantedCommunity] = field(default_factory=list)
    day: int = 0

    def primary_communities(self) -> Dict[int, List[int]]:
        """Planted truth at the behavioural level: community id → the
        investors who actually herd with that community's pool."""
        groups: Dict[int, List[int]] = {}
        for user in self.users.values():
            if user.primary_community_id is not None:
                groups.setdefault(user.primary_community_id,
                                  []).append(user.user_id)
        return groups

    def company_followers(self) -> Dict[int, List[int]]:
        """Invert the follow graph: company id → follower user ids."""
        followers: Dict[int, List[int]] = {cid: [] for cid in self.companies}
        for user in self.users.values():
            for cid in user.follows_companies:
                followers[cid].append(user.user_id)
        return followers

    def summary(self) -> Dict[str, float]:
        """Headline ground-truth statistics (compare with DESIGN.md §5)."""
        n_companies = len(self.companies)
        n_users = len(self.users)
        investors = [u for u in self.users.values() if u.is_investor]
        active = [u for u in investors if u.investments]
        invested_companies = {inv.company_id for inv in self.investments}
        per_investor = [len(set(u.investments)) for u in active]
        raised = sum(1 for c in self.companies.values() if c.raised_funding)
        return {
            "companies": n_companies,
            "users": n_users,
            "investors": len(investors),
            "active_investors": len(active),
            "investment_edges": len(self.investments),
            "invested_companies": len(invested_companies),
            "mean_investments_per_active_investor": (
                float(np.mean(per_investor)) if per_investor else 0.0
            ),
            "median_investments_per_active_investor": (
                float(np.median(per_investor)) if per_investor else 0.0
            ),
            "max_investments": max(per_investor) if per_investor else 0,
            "mean_investors_per_invested_company": (
                len(self.investments) / len(invested_companies)
                if invested_companies else 0.0
            ),
            "raised_funding": raised,
            "success_rate": raised / n_companies if n_companies else 0.0,
            "facebook_pages": len(self.facebook_pages),
            "twitter_profiles": len(self.twitter_profiles),
            "planted_communities": len(self.planted_communities),
        }


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


def _weighted_indices(cumulative: np.ndarray, rng: np.random.Generator,
                      size: int) -> np.ndarray:
    """Sample ``size`` indices ∝ weights given their cumulative sum."""
    draws = rng.random(size) * cumulative[-1]
    return np.searchsorted(cumulative, draws, side="right")


def _truncated_zipf_counts(rng: RngStream, alpha: float, max_value: int,
                           size: int) -> np.ndarray:
    """Per-entity activity budgets from a bounded discrete power law."""
    return rng.zipf_bounded(alpha, max_value, size=size)


def generate_world(config: Optional[WorldConfig] = None) -> World:
    """Build a complete world from ``config`` (deterministic in the seed)."""
    config = config or WorldConfig.default()
    params = config.params
    root = RngStream(config.seed, "world")
    world = World(config=config)

    _generate_companies(world, root.child("companies"))
    _generate_users(world, root.child("users"))
    _plant_communities(world, root.child("communities"))
    _generate_investments(world, root.child("investments"))
    _generate_follows(world, root.child("follows"))
    _generate_social_accounts(world, root.child("social"))
    _generate_rounds(world, root.child("rounds"))
    return world


# ---------------------------------------------------------------------------
# companies
# ---------------------------------------------------------------------------

def _generate_companies(world: World, rng: RngStream) -> None:
    config = world.config
    params = config.params
    n = config.num_companies
    npr = rng.np

    engagement = npr.standard_normal(n)
    quality_noise = npr.standard_normal(n)
    quality = _sigmoid(0.9 * engagement + 0.7 * quality_noise)

    has_fb = npr.random(n) < params.p_facebook
    p_tw = np.where(has_fb, params.p_twitter_given_fb,
                    params.p_twitter_given_no_fb)
    has_tw = npr.random(n) < p_tw
    any_social = has_fb | has_tw
    p_video = np.where(any_social, params.p_video_given_social,
                       params.p_video_given_no_social)
    has_video = npr.random(n) < p_video

    logit = (
        params.success_base
        + params.success_fb * has_fb
        + params.success_tw * has_tw
        + params.success_both_penalty * (has_fb & has_tw)
        + params.success_video * has_video
        + params.success_engagement * engagement * any_social
    )
    raised = npr.random(n) < _sigmoid(logit)
    raising = npr.random(n) < config.p_currently_raising
    created = npr.integers(0, 2500, size=n)

    names = _company_names(rng, n)
    for i in range(n):
        company = Company(
            company_id=i,
            name=names[i],
            slug=f"{names[i].lower().replace(' ', '-')}-{i}",
            market=_MARKETS[i % len(_MARKETS)],
            location=_CITIES[int(npr.integers(0, len(_CITIES)))],
            quality=float(quality[i]),
            engagement_latent=float(engagement[i]),
            created_day=int(created[i]),
            currently_raising=bool(raising[i]),
            raised_funding=bool(raised[i]),
            has_video=bool(has_video[i]),
        )
        world.companies[i] = company

    # Stash presence flags for the social-account pass without recomputing.
    world._has_fb = has_fb          # type: ignore[attr-defined]
    world._has_tw = has_tw          # type: ignore[attr-defined]


def _company_names(rng: RngStream, n: int) -> List[str]:
    prefixes = ("Nova", "Blue", "Quant", "Hyper", "Neo", "Bright", "Deep",
                "Swift", "True", "Open", "Clear", "Peak", "Iron", "Atlas",
                "Echo", "Lumen")
    suffixes = ("Labs", "Works", "Metrics", "Grid", "Stack", "Pay", "Health",
                "Data", "Logic", "Flow", "Cart", "Desk", "Link", "Base",
                "Scale", "Sense")
    names = []
    for i in range(n):
        prefix = prefixes[i % len(prefixes)]
        suffix = suffixes[(i // len(prefixes)) % len(suffixes)]
        names.append(f"{prefix}{suffix} {i}")
    return names


# ---------------------------------------------------------------------------
# users
# ---------------------------------------------------------------------------

def _generate_users(world: World, rng: RngStream) -> None:
    config = world.config
    params = config.params
    n = config.num_users
    npr = rng.np

    p_inv = params.investor_fraction
    p_founder = params.founder_fraction
    p_employee = params.employee_fraction
    draws = npr.random(n)
    for i in range(n):
        roles: List[str] = []
        if draws[i] < p_inv:
            roles.append("investor")
        elif draws[i] < p_inv + p_founder:
            roles.append("founder")
        elif draws[i] < p_inv + p_founder + p_employee:
            roles.append("employee")
        else:
            roles.append("observer")
        world.users[i] = User(user_id=i, name=f"user-{i}", roles=roles)


# ---------------------------------------------------------------------------
# planted communities + investments
# ---------------------------------------------------------------------------

def _plant_communities(world: World, rng: RngStream) -> None:
    config = world.config
    params = config.params
    npr = rng.np

    investors = [u.user_id for u in world.users.values() if u.is_investor]
    if not investors:
        return
    active_mask = npr.random(len(investors)) < params.active_investor_fraction
    active = [uid for uid, keep in zip(investors, active_mask) if keep]
    if not active:
        active = investors[:1]

    # Activity budgets: bounded Zipf; whales (budget up to investments_max)
    # exist but are rare. Stored for the investment pass and used to bias
    # community membership toward active investors (syndicate leads).
    budgets = _truncated_zipf_counts(
        rng, params.investments_zipf_alpha, config.investments_max, len(active))
    world._active_investors = list(active)            # type: ignore[attr-defined]
    world._budgets = {uid: int(b) for uid, b in zip(active, budgets)}  # type: ignore[attr-defined]

    # Investable companies: a quality-biased subset sized so ~87% end up
    # with at least one investor, matching §5.1's 59,953 / 744,036.
    companies = np.array(sorted(world.companies), dtype=np.int64)
    quality = np.array([world.companies[int(c)].quality for c in companies])
    target = int(round(len(companies) * params.invested_company_fraction * 1.15))
    target = max(10, min(target, len(companies)))
    ranked = companies[np.argsort(-(quality + 0.25 * npr.random(len(companies))))]
    investable = ranked[:target]
    world._investable = investable                     # type: ignore[attr-defined]

    n_comm = config.num_communities
    weights = np.array([world._budgets[uid] for uid in active], dtype=np.float64)
    # Mild size bias: active investors join syndicates more often, but a
    # pair of whales in one pool would blow the shared-size average far
    # past the paper's 2.1 (see DESIGN.md §5 calibration).
    weights = weights ** params.membership_size_bias
    cum_members = np.cumsum(weights)

    sizes = npr.lognormal(
        mean=np.log(config.community_size_mean) - params.community_size_sigma ** 2 / 2,
        sigma=params.community_size_sigma, size=n_comm)
    sizes = np.clip(np.round(sizes).astype(int), 4, max(4, len(active)))

    n_strong = max(1, int(round(n_comm * params.strong_community_fraction)))
    for cid in range(n_comm):
        member_idx = np.unique(
            _weighted_indices(cum_members, npr, int(sizes[cid])))
        members = [active[int(i)] for i in member_idx]
        if cid < n_strong:
            herd = params.herd_strength_strong * (0.75 + 0.25 * npr.random())
        else:
            herd = params.herd_strength_weak * (0.5 + 1.5 * npr.random())
        pool_size = max(12, int(round(params.community_pool_factor
                                      * len(members))))
        pool_idx = npr.choice(len(investable),
                              size=min(pool_size, len(investable)),
                              replace=False)
        community = PlantedCommunity(
            community_id=cid,
            member_ids=members,
            pool_company_ids=[int(investable[int(i)]) for i in pool_idx],
            herd_strength=float(herd),
        )
        world.planted_communities.append(community)
        for uid in members:
            world.users[uid].community_ids.append(cid)


def _generate_investments(world: World, rng: RngStream) -> None:
    config = world.config
    params = config.params
    npr = rng.np
    # Disclosure flags come from an independent child stream so adding
    # profile attributes never perturbs the investment structure.
    disclose_rng = rng.child("disclosure").np
    active: List[int] = getattr(world, "_active_investors", [])
    if not active:
        return
    budgets: Dict[int, int] = world._budgets            # type: ignore[attr-defined]
    investable: np.ndarray = world._investable          # type: ignore[attr-defined]

    # Global popularity over investable companies: Zipf-ish weights so a
    # few hot startups attract many independent investors.
    global_weights = (
        np.arange(1, len(investable) + 1, dtype=np.float64)
        ** -params.global_popularity_alpha)
    npr.shuffle(global_weights)
    cum_global = np.cumsum(global_weights)

    # Per-community pool weights: mildly concentrated, so herd slots
    # spread over most of the pool (raising the ≥2-shared-investor
    # percentage) instead of piling onto a few hot companies.
    pool_cums = []
    for community in world.planted_communities:
        w = (np.arange(1, len(community.pool_company_ids) + 1,
                       dtype=np.float64) ** -params.pool_weight_alpha)
        pool_cums.append(np.cumsum(w))

    membership: Dict[int, List[int]] = {uid: [] for uid in active}
    for community in world.planted_communities:
        for uid in community.member_ids:
            membership[uid].append(community.community_id)

    day_counter = 0
    for uid in active:
        user = world.users[uid]
        chosen: set = set()
        communities = membership[uid]
        budget = budgets[uid]
        # An investor herds with one *primary* syndicate even when they
        # appear in several communities — this is what makes detected
        # communities cohesive rather than blurred across pools.
        primary = None
        if communities:
            primary = communities[int(npr.integers(0, len(communities)))]
            user.primary_community_id = primary
            user.syndicate_disclosed = bool(
                disclose_rng.random() < params.p_syndicate_disclosed)
        for _ in range(budget):
            picked = None
            if primary is not None:
                community = world.planted_communities[primary]
                herd = (community.herd_strength
                        * params.p_invest_in_community_pool)
                if npr.random() < herd:
                    pool = community.pool_company_ids
                    idx = int(_weighted_indices(pool_cums[primary],
                                                npr, 1)[0])
                    picked = pool[idx]
            if picked is None:
                idx = int(_weighted_indices(cum_global, npr, 1)[0])
                picked = int(investable[idx])
            if picked in chosen:
                continue
            chosen.add(picked)
            day_counter = (day_counter + 1) % 2500
            world.investments.append(
                Investment(investor_id=uid, company_id=picked,
                           day=day_counter))
        user.investments = sorted(chosen)


# ---------------------------------------------------------------------------
# follows
# ---------------------------------------------------------------------------

def _generate_follows(world: World, rng: RngStream) -> None:
    config = world.config
    params = config.params
    npr = rng.np
    n_companies = len(world.companies)
    company_ids = np.arange(n_companies, dtype=np.int64)

    # Popularity for follows: engagement-driven, so socially active
    # companies accumulate followers (consistent with the paper's framing).
    latent = np.array(
        [world.companies[int(c)].engagement_latent for c in company_ids])
    pop = np.exp(0.8 * latent + 0.6 * npr.standard_normal(n_companies))
    cum_pop = np.cumsum(pop)

    user_ids = sorted(world.users)
    mean_follows_inv = config.mean_follows
    for uid in user_ids:
        user = world.users[uid]
        if user.is_investor:
            count = max(1, int(npr.exponential(mean_follows_inv)))
        else:
            count = max(1, int(npr.exponential(8.0)))
        count = min(count, n_companies)
        picks = np.unique(_weighted_indices(cum_pop, npr, count))
        user.follows_companies = [int(c) for c in picks]
        # user → user follows keep the BFS frontier expanding through people.
        n_user_follows = int(npr.integers(0, 6))
        if n_user_follows:
            targets = npr.integers(0, len(user_ids), size=n_user_follows)
            user.follows_users = sorted(
                {int(t) for t in targets if int(t) != uid})

    # Coverage guarantees (see module docstring): each investor follows the
    # companies they invested in; each company has at least one follower.
    for user in world.users.values():
        if user.investments:
            merged = set(user.follows_companies) | set(user.investments)
            user.follows_companies = sorted(merged)

    followed = set()
    for user in world.users.values():
        followed.update(user.follows_companies)
    orphans = [cid for cid in world.companies if cid not in followed]
    if orphans:
        adopters = npr.integers(0, len(user_ids), size=len(orphans))
        for cid, uidx in zip(orphans, adopters):
            user = world.users[user_ids[int(uidx)]]
            user.follows_companies = sorted(
                set(user.follows_companies) | {cid})

    for cid, followers in world.company_followers().items():
        world.companies[cid].follower_count = len(followers)


# ---------------------------------------------------------------------------
# social accounts
# ---------------------------------------------------------------------------

def _generate_social_accounts(world: World, rng: RngStream) -> None:
    params = world.config.params
    npr = rng.np
    has_fb: np.ndarray = getattr(world, "_has_fb")
    has_tw: np.ndarray = getattr(world, "_has_tw")
    coupling = params.engagement_metric_coupling
    residual = float(np.sqrt(max(0.0, 1.0 - coupling ** 2)))

    page_id = 100_000
    profile_id = 500_000
    for cid, company in world.companies.items():
        shock = coupling * company.engagement_latent
        if has_fb[cid]:
            z = shock + residual * float(npr.standard_normal())
            likes = int(round(np.exp(
                params.likes_log_median + params.likes_log_sigma * z)))
            posts = max(0, int(round(np.exp(
                3.5 + 1.2 * (shock + residual * float(npr.standard_normal()))))))
            page = FacebookPage(
                page_id=page_id, company_id=cid, name=company.name,
                likes=max(0, likes), location=company.location,
                post_count=posts,
                recent_posts=[f"{company.name} update #{k}"
                              for k in range(min(3, posts))],
            )
            world.facebook_pages[page_id] = page
            company.facebook_page_id = page_id
            page_id += 1
        if has_tw[cid]:
            z1 = shock + residual * float(npr.standard_normal())
            z2 = shock + residual * float(npr.standard_normal())
            statuses = int(round(np.exp(
                params.tweets_log_median + params.tweets_log_sigma * z1)))
            followers = int(round(np.exp(
                params.tw_followers_log_median
                + params.tw_followers_log_sigma * z2)))
            friends = max(1, int(followers * 0.6))
            profile = TwitterProfile(
                profile_id=profile_id, company_id=cid,
                screen_name=f"{company.slug[:15]}_{cid}",
                created_day=company.created_day,
                followers_count=max(0, followers),
                friends_count=friends,
                listed_count=max(0, int(followers * 0.02)),
                statuses_count=max(0, statuses),
                latest_status=f"News from {company.name}",
                latest_status_day=world.day,
            )
            world.twitter_profiles[profile_id] = profile
            company.twitter_profile_id = profile_id
            profile_id += 1


# ---------------------------------------------------------------------------
# funding rounds + CrunchBase linkage
# ---------------------------------------------------------------------------

def _generate_rounds(world: World, rng: RngStream) -> None:
    config = world.config
    npr = rng.np
    by_company: Dict[int, List[int]] = {}
    for inv in world.investments:
        by_company.setdefault(inv.company_id, []).append(inv.investor_id)

    round_id = 0
    crunchbase_id = 1
    for cid, company in world.companies.items():
        in_crunchbase = company.raised_funding or (
            npr.random() < config.crunchbase_extra_fraction)
        if not in_crunchbase:
            continue
        company.crunchbase_id = crunchbase_id
        crunchbase_id += 1
        company.links_crunchbase = (
            npr.random() < config.p_crunchbase_url_on_angellist)
        if not company.raised_funding:
            continue
        n_rounds = 1 + int(npr.random() < 0.35) + int(npr.random() < 0.10)
        investors = by_company.get(cid, [])
        day = company.created_day
        for r in range(n_rounds):
            day += int(npr.integers(30, 400))
            amount = int(np.exp(
                12.2 + 1.3 * r + 0.8 * float(npr.standard_normal())))
            company.rounds.append(FundingRound(
                round_id=round_id, company_id=cid,
                round_type=_ROUND_TYPES[min(r, len(_ROUND_TYPES) - 1)],
                amount_usd=amount, announced_day=day,
                investor_ids=sorted(set(investors))[:12],
            ))
            round_id += 1
