"""Synthetic crowdfunding ecosystem.

This package is the substitute for the live AngelList / CrunchBase /
Facebook / Twitter sites the paper crawled (see DESIGN.md §2). It generates
a ground-truth world — companies, users, follow edges, investments with
planted investor communities, social-media accounts, funding rounds —
calibrated to every population statistic the paper reports, at a
configurable scale. The simulated APIs in :mod:`repro.sources` serve views
of this world; the crawlers never touch it directly.
"""

from repro.world.config import CalibrationParams, WorldConfig
from repro.world.entities import (
    Company,
    FacebookPage,
    FundingRound,
    Investment,
    TwitterProfile,
    User,
)
from repro.world.generator import World, generate_world
from repro.world.dynamics import WorldDynamics

__all__ = [
    "CalibrationParams",
    "WorldConfig",
    "Company",
    "FacebookPage",
    "FundingRound",
    "Investment",
    "TwitterProfile",
    "User",
    "World",
    "generate_world",
    "WorldDynamics",
]
