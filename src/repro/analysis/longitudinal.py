"""§7 extension: panel analysis over the daily snapshots.

The paper's causality plan: track fundraising startups daily, record
engagement and funding events, and ask whether engagement *precedes*
money. Over the snapshot datasets this module:

1. reconstructs each tracked startup's panel (per-day engagement
   metrics and raising status);
2. detects **close events** — the day ``currently_raising`` flips off;
3. runs an event study: mean engagement growth in the ``window`` days
   *before* a close vs the same-length windows of still-raising
   company-days (the control), giving a pre-event lift ratio;
4. measures the **reverse effect** — follower growth right after the
   close — which is the confound the paper warns correlation studies
   about.

With the planted dynamics of :class:`repro.world.WorldDynamics`, the
pre-event lift should be clearly > 1 (engagement raises the closing
hazard) and the post-event follower bump > 0 (the confound exists too).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dfs.filesystem import MiniDfs
from repro.dfs.jsonlines import iter_json_dataset


@dataclass
class LongitudinalResult:
    """Event-study summary over the snapshot panel."""

    days: int
    tracked_startups: int
    close_events: int
    pre_event_engagement_mean: float
    control_engagement_mean: float
    post_event_follower_bump: float

    @property
    def pre_event_lift(self) -> float:
        """Engagement growth before a close vs control windows (>1 ⇒
        engagement precedes funding)."""
        if self.control_engagement_mean <= 0:
            return float("inf") if self.pre_event_engagement_mean > 0 else 1.0
        return self.pre_event_engagement_mean / self.control_engagement_mean


def analyze_snapshots(dfs: MiniDfs, root: str = "/snapshots",
                      window: int = 3) -> LongitudinalResult:
    """Run the event study over every ``day=N`` dataset under ``root``."""
    day_dirs = _snapshot_days(dfs, root)
    if not day_dirs:
        raise ValueError(f"no snapshot datasets under {root}")

    panels: Dict[int, Dict[int, Dict]] = defaultdict(dict)
    for day, directory in day_dirs:
        for record in iter_json_dataset(dfs, directory):
            panels[int(record["startup_id"])][day] = record

    days = [d for d, _dir in day_dirs]
    close_events: List[Tuple[int, int]] = []
    for sid, panel in panels.items():
        previous_raising: Optional[bool] = None
        for day in days:
            record = panel.get(day)
            if record is None:
                continue
            raising = bool(record["currently_raising"])
            if previous_raising and not raising:
                close_events.append((sid, day))
            previous_raising = raising

    pre_deltas: List[float] = []
    control_deltas: List[float] = []
    post_bumps: List[float] = []
    closed_days = {(sid, day) for sid, day in close_events}

    # Pre-event windows end the day *before* the close so the funding
    # announcement itself (the reverse effect) cannot leak into them.
    for sid, panel in panels.items():
        for day in days:
            end = panel.get(day - 1)
            start = panel.get(day - 1 - window)
            if end is None or start is None:
                continue
            delta = _engagement_delta(start, end)
            if delta is None:
                continue
            if (sid, day) in closed_days:
                pre_deltas.append(delta)
            elif (panel.get(day) is not None
                  and panel[day]["currently_raising"]
                  and end["currently_raising"]):
                control_deltas.append(delta)

    for sid, day in close_events:
        before = panels[sid].get(day - 1)
        after = panels[sid].get(day)
        if before is not None and after is not None:
            post_bumps.append(float(after["follower_count"]
                                    - before["follower_count"]))

    return LongitudinalResult(
        days=len(days),
        tracked_startups=len(panels),
        close_events=len(close_events),
        pre_event_engagement_mean=_mean(pre_deltas),
        control_engagement_mean=_mean(control_deltas),
        post_event_follower_bump=_mean(post_bumps),
    )


def _snapshot_days(dfs: MiniDfs, root: str) -> List[Tuple[int, str]]:
    root = root.rstrip("/")
    days = set()
    for path in dfs.listdir(root):
        remainder = path[len(root) + 1:]
        head = remainder.split("/", 1)[0]
        if head.startswith("day="):
            days.add(int(head[len("day="):]))
    return [(day, f"{root}/day={day}") for day in sorted(days)]


def _engagement_delta(earlier: Dict, later: Dict) -> Optional[float]:
    """Growth in observable activity between two snapshots.

    Uses social-media posting when the company links accounts, plus the
    AngelList follower count (available for every company), so panels
    without social links still carry a signal.
    """
    total = 0.0
    seen = False
    for key in ("tw_statuses", "fb_posts", "follower_count"):
        if key in earlier and key in later:
            total += float(later[key]) - float(earlier[key])
            seen = True
    return total if seen else None


def _mean(values: List[float]) -> float:
    return float(np.mean(values)) if values else 0.0
