"""§5.2–§5.3 and Figures 4/5/7: the community-strength study.

Pipeline, exactly as the paper runs it:

1. keep investors with ≥ 4 investments ("to make the cluster
   statistically meaningful");
2. detect overlapping communities with CoDA;
3. score each community on both §5.3 metrics;
4. Figure 4 — compare the shared-investment-size CDFs of the top
   strong communities against an i.i.d.-pair global sample (800,000
   pairs at paper scale, scaled down proportionally) with a DKW bound;
5. Figure 5 — the PDF across communities of the K=2 shared-investor
   percentage, plus the randomized-communities control;
6. Figure 7 — pick the strongest community and a weak community and
   render both as SVG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.community.coda import CoDA, CodaResult
from repro.community.random_baseline import random_communities
from repro.graph.bipartite import BipartiteGraph
from repro.metrics.bounds import dkw_epsilon
from repro.metrics.ecdf import EmpiricalCDF, estimate_pdf
from repro.metrics.shared import (CommunityStrength, community_strength,
                                  pairwise_shared_sizes,
                                  sampled_shared_sizes,
                                  shared_investor_percentage)
from repro.util.rng import RngStream
from repro.viz.svg import render_community_svg


@dataclass
class CommunityStudy:
    """Everything Figures 4, 5 and 7 need."""

    coda: CodaResult
    strengths: List[CommunityStrength]
    #: community id → ECDF of pairwise shared sizes (top strong ones)
    strong_cdfs: Dict[int, EmpiricalCDF]
    global_cdf: EmpiricalCDF
    global_pairs_sampled: int
    dkw_bound: float
    #: per-community K=2 shared-investor percentages (Figure 5's sample)
    shared_pcts: List[float]
    mean_shared_pct: float
    randomized_mean_shared_pct: float
    strong_community_id: int
    weak_community_id: int

    def strength(self, community_id: int) -> CommunityStrength:
        for s in self.strengths:
            if s.community_id == community_id:
                return s
        raise KeyError(f"no community {community_id}")

    def pdf_curve(self, num_points: int = 100):
        """Figure 5's KDE estimate over the per-community percentages."""
        return estimate_pdf(self.shared_pcts, num_points=num_points)


def run_community_study(graph: BipartiteGraph,
                        num_communities: int,
                        min_investments: int = 4,
                        num_strong_cdfs: int = 3,
                        global_pairs: int = 800_000,
                        k: int = 2,
                        seed: int = 0,
                        coda_iters: int = 60) -> CommunityStudy:
    """Run the full §5 study on ``graph``.

    ``global_pairs`` is the Figure 4 i.i.d. pair-sample size; callers at
    reduced world scale should scale it down for speed (the DKW bound is
    reported either way).
    """
    rng = RngStream(seed, "strength")
    filtered = graph.filter_investors(min_investments)
    coda = CoDA(num_communities=num_communities, max_iters=coda_iters,
                seed=seed).fit(filtered)

    portfolios = graph.portfolios()
    strengths = [community_strength(cid, sorted(members), portfolios, k=k)
                 for cid, members in coda.investor_communities.items()]
    by_strength = sorted(strengths, key=lambda s: -s.avg_shared_size)

    strong_cdfs: Dict[int, EmpiricalCDF] = {}
    for s in by_strength[:num_strong_cdfs]:
        members = sorted(coda.investor_communities[s.community_id])
        sizes = pairwise_shared_sizes(members, portfolios)
        if sizes:
            strong_cdfs[s.community_id] = EmpiricalCDF(sizes)

    # Figure 4's baseline samples pairs "over all the data" — the full
    # investor population of the bipartite graph, not the ≥4 subgraph.
    investors = graph.investors
    global_sizes = sampled_shared_sizes(investors, portfolios,
                                        global_pairs, rng.child("pairs"))
    global_cdf = EmpiricalCDF(global_sizes if global_sizes else [0])

    shared_pcts = [s.shared_investor_pct for s in strengths]
    randomized = random_communities(
        filtered.investors, [s.size for s in strengths],
        rng.child("random"))
    randomized_pcts = [
        shared_investor_percentage(sorted(members), portfolios, k=k)
        for members in randomized.values()]

    strong_id = by_strength[0].community_id if by_strength else -1
    weak_id = _pick_weak(by_strength)

    return CommunityStudy(
        coda=coda,
        strengths=strengths,
        strong_cdfs=strong_cdfs,
        global_cdf=global_cdf,
        global_pairs_sampled=len(global_sizes),
        dkw_bound=dkw_epsilon(max(1, len(global_sizes)), confidence=0.99),
        shared_pcts=shared_pcts,
        mean_shared_pct=float(np.mean(shared_pcts)) if shared_pcts else 0.0,
        randomized_mean_shared_pct=(float(np.mean(randomized_pcts))
                                    if randomized_pcts else 0.0),
        strong_community_id=strong_id,
        weak_community_id=weak_id,
    )


def _pick_weak(by_strength: List[CommunityStrength]) -> int:
    """The weak exemplar: lowest avg shared size among non-trivial ones."""
    candidates = [s for s in by_strength if s.size >= 4]
    if not candidates:
        return by_strength[-1].community_id if by_strength else -1
    return candidates[-1].community_id


def community_figure_svg(study: CommunityStudy, graph: BipartiteGraph,
                         community_id: int, title: str = "",
                         seed: int = 0) -> str:
    """Figure 7 rendering for one community of the study."""
    members = sorted(study.coda.investor_communities[community_id])
    member_set = set(members)
    edges = [(u, c) for u in members for c in graph.portfolio(u)]
    return render_community_svg(members, edges, title=title, seed=seed)
