"""Validating detected communities against disclosed syndicates.

§2 of the paper notes that "AngelList also allows investors to invite
other accredited investors to form syndicates for investment" — i.e.
part of the community structure the §5 analysis infers is *publicly
disclosed* on user profiles. This module uses those disclosures as an
external validation signal:

1. read ``syndicate_id`` off the crawled user profiles (only investors
   who disclose carry one);
2. group disclosing investors into observed syndicates;
3. score a detected community cover against them — best-match F1 plus
   a *purity* measure (for each detected community, the fraction of its
   disclosing members that share the modal syndicate).

High purity with moderate F1 means detection finds syndicate *cores*
without recovering full rosters, which is the expected regime: herding
behaviour is driven by the syndicate but visible only through
co-investment.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Set

import numpy as np

from repro.community.scoring import cover_f1
from repro.engine.context import SparkLiteContext


@dataclass
class SyndicateValidation:
    """Agreement between a detected cover and disclosed syndicates."""

    num_syndicates: int
    disclosing_investors: int
    cover_f1_score: float
    mean_purity: float
    per_community_purity: Dict[int, float] = field(default_factory=dict)


def read_disclosed_syndicates(sc: SparkLiteContext, dfs,
                              angellist_root: str = "/crawl/angellist",
                              min_size: int = 2) -> Dict[int, Set[int]]:
    """syndicate id → disclosing investor ids, from crawled profiles."""
    pairs = (sc.json_dataset(dfs, f"{angellist_root}/users")
             .filter(lambda u: u.get("syndicate_id") is not None
                     and "investor" in u.get("roles", []))
             .map(lambda u: (int(u["syndicate_id"]), int(u["id"])))
             .collect())
    syndicates: Dict[int, Set[int]] = defaultdict(set)
    for syndicate_id, user_id in pairs:
        syndicates[syndicate_id].add(user_id)
    return {sid: members for sid, members in syndicates.items()
            if len(members) >= min_size}


def validate_communities(detected: Dict[int, Set[int]],
                         syndicates: Dict[int, Set[int]],
                         ) -> SyndicateValidation:
    """Score ``detected`` communities against disclosed syndicates."""
    investor_to_syndicate: Dict[int, int] = {}
    for syndicate_id, members in syndicates.items():
        for uid in members:
            investor_to_syndicate[uid] = syndicate_id

    purities: Dict[int, float] = {}
    for community_id, members in detected.items():
        disclosed = [investor_to_syndicate[uid] for uid in members
                     if uid in investor_to_syndicate]
        if len(disclosed) < 2:
            continue
        _modal, count = Counter(disclosed).most_common(1)[0]
        purities[community_id] = count / len(disclosed)

    score = cover_f1(list(detected.values()), list(syndicates.values()))
    return SyndicateValidation(
        num_syndicates=len(syndicates),
        disclosing_investors=len(investor_to_syndicate),
        cover_f1_score=score,
        mean_purity=float(np.mean(list(purities.values())))
        if purities else 0.0,
        per_community_purity=purities,
    )


def validate_over_platform(platform, detected: Dict[int, Set[int]],
                           min_size: int = 2) -> SyndicateValidation:
    """Convenience wrapper binding the crawled datasets."""
    syndicates = read_disclosed_syndicates(platform.sc, platform.dfs,
                                           min_size=min_size)
    return validate_communities(detected, syndicates)
