"""The paper's analyses, expressed as engine jobs over crawled datasets.

* :mod:`engagement` — Figure 6: social engagement vs fundraising success.
* :mod:`investors` — Figure 3: CDF of investments per investor.
* :mod:`concentration` — §5.1: degree concentration of the bipartite graph.
* :mod:`strength` — §5.2–5.3 + Figures 4/5/7: CoDA communities, strength
  metrics, global pair-sampled baseline, randomized control.
* :mod:`prediction` — §7 extension: logistic success prediction from
  graph/social features (from-scratch numpy implementation).
* :mod:`longitudinal` — §7 extension: panel analysis over daily
  snapshots separating engagement→funding from funding→engagement.
"""

from repro.analysis.engagement import (EngagementRow, EngagementTable,
                                       compute_engagement_table)
from repro.analysis.investors import InvestorActivity, compute_investor_activity
from repro.analysis.concentration import concentration_report
from repro.analysis.strength import CommunityStudy, run_community_study
from repro.analysis.prediction import PredictionResult, predict_success
from repro.analysis.longitudinal import (LongitudinalResult,
                                         analyze_snapshots)
from repro.analysis.facts import build_company_facts
from repro.analysis.syndicates import (SyndicateValidation,
                                       read_disclosed_syndicates,
                                       validate_communities,
                                       validate_over_platform)
from repro.analysis.dynamic_communities import (DynamicsReport,
                                                default_coda_detector,
                                                track_communities)
from repro.analysis.recommend import (InvestorRecommender,
                                      PopularityRecommender,
                                      RecommendationEval,
                                      evaluate_recommenders)

__all__ = [
    "EngagementRow",
    "EngagementTable",
    "compute_engagement_table",
    "InvestorActivity",
    "compute_investor_activity",
    "concentration_report",
    "CommunityStudy",
    "run_community_study",
    "PredictionResult",
    "predict_success",
    "LongitudinalResult",
    "analyze_snapshots",
    "build_company_facts",
    "SyndicateValidation",
    "read_disclosed_syndicates",
    "validate_communities",
    "validate_over_platform",
    "DynamicsReport",
    "default_coda_detector",
    "track_communities",
    "InvestorRecommender",
    "PopularityRecommender",
    "RecommendationEval",
    "evaluate_recommenders",
]
