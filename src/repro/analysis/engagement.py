"""Figure 6: the impact of social engagement on fundraising success.

The categorization follows the paper exactly:

* presence rows use the URLs *linked on AngelList* (a lower bound, as
  the paper notes);
* success means the company has at least one funding round in the
  CrunchBase-augmented data;
* engagement rows split at the **median** of each metric across all
  valid accounts (652 likes / 343 tweets / 339 followers at paper scale
  — recomputed from the crawl here, never hard-coded).

All aggregation runs as engine jobs over the crawled DFS datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.engine.context import SparkLiteContext
from repro.viz.ascii import ascii_table


@dataclass
class EngagementRow:
    """One row of the Figure 6 summary table."""

    label: str
    companies: int
    company_pct: float
    success_pct: float
    successes: int = 0

    def wilson_ci(self, confidence: float = 0.95):
        """Confidence interval for this row's success proportion."""
        from repro.metrics.significance import wilson_interval
        if self.companies == 0:
            return (0.0, 0.0)
        return wilson_interval(self.successes, self.companies, confidence)


@dataclass
class EngagementTable:
    """The full Figure 6 table plus the medians used for the splits."""

    rows: List[EngagementRow]
    total_companies: int
    median_likes: float
    median_tweets: float
    median_tw_followers: float

    def row(self, label: str) -> EngagementRow:
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(f"no row labelled {label!r}")

    def success_lift(self, label: str,
                     baseline: str = "No social media presence") -> float:
        """How many times likelier success is vs the baseline row."""
        base = self.row(baseline).success_pct
        if base <= 0:
            return float("inf")
        return self.row(label).success_pct / base

    def significance(self, label: str,
                     baseline: str = "No social media presence"):
        """Odds ratio + chi-square p-value of a row vs the baseline.

        The two rows are treated as independent groups (presence rows in
        the paper's table overlap slightly; the baseline row is disjoint
        from every social-presence row, which is the comparison that
        matters).
        """
        from repro.metrics.significance import chi_square_2x2, odds_ratio
        exposed = self.row(label)
        control = self.row(baseline)
        a, b = exposed.successes, exposed.companies - exposed.successes
        c, d = control.successes, control.companies - control.successes
        chi = chi_square_2x2(a, b, c, d)
        return odds_ratio(a, b, c, d), chi.p_value

    def render(self) -> str:
        return ascii_table(
            ["", "Number of companies (%)", "% Success"],
            [[row.label,
              f"{row.companies:,} ({row.company_pct:.2f}%)",
              f"{row.success_pct:.1f}"] for row in self.rows])


def compute_engagement_table(sc: SparkLiteContext, dfs,
                             angellist_root: str = "/crawl/angellist",
                             crunchbase_dir: str = "/crawl/crunchbase/organizations",
                             facebook_dir: str = "/crawl/facebook/pages",
                             twitter_dir: str = "/crawl/twitter/profiles",
                             ) -> EngagementTable:
    """Build the Figure 6 table from the crawled datasets."""
    startups = (sc.json_dataset(dfs, f"{angellist_root}/startups")
                .map(lambda s: (int(s["id"]), {
                    "fb": bool(s.get("facebook_url")),
                    "tw": bool(s.get("twitter_url")),
                    "video": bool(s.get("video_url")),
                }))
                .cache())

    raised_ids = set(
        sc.json_dataset(dfs, crunchbase_dir)
        .filter(lambda org: org.get("num_funding_rounds", 0) > 0)
        .map(lambda org: int(org["angellist_id"]))
        .collect())

    likes_by_id: Dict[int, int] = dict(
        sc.json_dataset(dfs, facebook_dir)
        .map(lambda page: (int(page["angellist_id"]),
                           int(page["fan_count"])))
        .collect())
    twitter_rows = (
        sc.json_dataset(dfs, twitter_dir)
        .map(lambda prof: (int(prof["angellist_id"]),
                           (int(prof["statuses_count"]),
                            int(prof["followers_count"]))))
        .collect())
    tweets_by_id = {aid: t for aid, (t, _f) in twitter_rows}
    followers_by_id = {aid: f for aid, (_t, f) in twitter_rows}

    median_likes = _median(list(likes_by_id.values()))
    median_tweets = _median(list(tweets_by_id.values()))
    median_followers = _median(list(followers_by_id.values()))

    flags = startups.collect()
    total = len(flags)

    def row(label: str, predicate) -> EngagementRow:
        selected = [(cid, f) for cid, f in flags if predicate(cid, f)]
        count = len(selected)
        successes = sum(1 for cid, _f in selected if cid in raised_ids)
        return EngagementRow(
            label=label,
            companies=count,
            company_pct=100.0 * count / total if total else 0.0,
            success_pct=100.0 * successes / count if count else 0.0,
            successes=successes,
        )

    hi_likes = (lambda cid: likes_by_id.get(cid, -1) > median_likes)
    hi_tweets = (lambda cid: tweets_by_id.get(cid, -1) > median_tweets)
    hi_followers = (lambda cid: followers_by_id.get(cid, -1)
                    > median_followers)

    rows = [
        row("No social media presence",
            lambda cid, f: not f["fb"] and not f["tw"]),
        row("Facebook only", lambda cid, f: f["fb"]),
        row("Twitter only", lambda cid, f: f["tw"]),
        row("Facebook and Twitter", lambda cid, f: f["fb"] and f["tw"]),
        row("Presence of demo video", lambda cid, f: f["video"]),
        row("No demo video", lambda cid, f: not f["video"]),
        row(f"Facebook (>{median_likes:.0f} likes)",
            lambda cid, f: f["fb"] and hi_likes(cid)),
        row(f"Twitter (>{median_tweets:.0f} tweets)",
            lambda cid, f: f["tw"] and hi_tweets(cid)),
        row(f"Twitter (>{median_followers:.0f} followers)",
            lambda cid, f: f["tw"] and hi_followers(cid)),
        row(f"Facebook (>{median_likes:.0f} likes) and "
            f"Twitter (>{median_followers:.0f} followers)",
            lambda cid, f: f["fb"] and f["tw"] and hi_likes(cid)
            and hi_followers(cid)),
        row(f"Facebook (>{median_likes:.0f} likes) and "
            f"Twitter (>{median_tweets:.0f} tweets)",
            lambda cid, f: f["fb"] and f["tw"] and hi_likes(cid)
            and hi_tweets(cid)),
    ]
    return EngagementTable(
        rows=rows, total_companies=total,
        median_likes=median_likes, median_tweets=median_tweets,
        median_tw_followers=median_followers)


def _median(values: List[int]) -> float:
    if not values:
        return 0.0
    return float(np.median(np.asarray(values, dtype=np.float64)))
