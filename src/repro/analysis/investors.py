"""Figure 3: the long-tailed distribution of investor activity.

"Our data revealed that on average, each investor follows 247 companies
on AngelList, but makes an investment only to 3.3 companies on average,
with the median being 1. The most active investor makes close to 1000
investments."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.engine.context import SparkLiteContext
from repro.graph.bipartite import BipartiteGraph
from repro.metrics.ecdf import EmpiricalCDF
from repro.viz.ascii import ascii_cdf


@dataclass
class InvestorActivity:
    """Figure 3's distribution plus the §3 headline numbers."""

    investments_cdf: EmpiricalCDF
    mean_investments: float
    median_investments: float
    max_investments: int
    mean_follows_per_investor: float

    def render_cdf(self) -> str:
        xs, _ys = self.investments_cdf.series()
        return ascii_cdf(list(self.investments_cdf._sorted),
                         label="investments per investor")


def compute_investor_activity(sc: SparkLiteContext, dfs,
                              graph: BipartiteGraph,
                              angellist_root: str = "/crawl/angellist",
                              ) -> InvestorActivity:
    """Distribution of investments per investor + mean follow fan-out."""
    degrees = graph.out_degrees()
    if degrees.size == 0:
        raise ValueError("the investment graph has no investors")
    cdf = EmpiricalCDF(degrees.tolist())

    # Mean follows per *investor-role* user, from the crawled follow edges.
    investor_ids = set(
        sc.json_dataset(dfs, f"{angellist_root}/users")
        .filter(lambda u: "investor" in u.get("roles", []))
        .map(lambda u: int(u["id"]))
        .collect())
    follow_counts: Dict[int, int] = (
        sc.json_dataset(dfs, f"{angellist_root}/follow_edges")
        .filter(lambda e: e["dst_type"] == "startup"
                and int(e["src_user"]) in investor_ids)
        .map(lambda e: (int(e["src_user"]), 1))
        .reduce_by_key(lambda a, b: a + b)
        .collect_as_map())
    mean_follows = (sum(follow_counts.values()) / len(investor_ids)
                    if investor_ids else 0.0)

    return InvestorActivity(
        investments_cdf=cdf,
        mean_investments=cdf.mean,
        median_investments=cdf.median,
        max_investments=int(cdf.max),
        mean_follows_per_investor=mean_follows,
    )
