"""One unified per-company fact table, joined across all four sources.

Most downstream analyses (the Figure 6 table, prediction, the theory
layer) start by joining the AngelList startup record with CrunchBase
funding, the Facebook page, and the Twitter profile. This module runs
that join once as an engine job and exposes the result as a DataFrame
with one dict per company:

    id, name, market, location, follower_count, has_facebook,
    has_twitter, has_video, raised, num_rounds, total_funding_usd,
    fb_likes, tw_statuses, tw_followers
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.engine.context import SparkLiteContext
from repro.engine.dataframe import DataFrame


def build_company_facts(sc: SparkLiteContext, dfs,
                        angellist_root: str = "/crawl/angellist",
                        crunchbase_dir: str = "/crawl/crunchbase/organizations",
                        facebook_dir: str = "/crawl/facebook/pages",
                        twitter_dir: str = "/crawl/twitter/profiles",
                        ) -> DataFrame:
    """Join the four crawled datasets into one fact table (DataFrame)."""
    startups = (sc.json_dataset(dfs, f"{angellist_root}/startups")
                .key_by(lambda s: int(s["id"])))
    crunchbase = (sc.json_dataset(dfs, crunchbase_dir)
                  .key_by(lambda org: int(org["angellist_id"])))
    facebook = (sc.json_dataset(dfs, facebook_dir)
                .key_by(lambda page: int(page["angellist_id"])))
    twitter = (sc.json_dataset(dfs, twitter_dir)
               .key_by(lambda prof: int(prof["angellist_id"])))

    joined = (startups
              .left_outer_join(crunchbase)
              .map_values(lambda pair: {"startup": pair[0],
                                        "crunchbase": pair[1]})
              .left_outer_join(facebook)
              .map_values(lambda pair: {**pair[0], "facebook": pair[1]})
              .left_outer_join(twitter)
              .map_values(lambda pair: {**pair[0], "twitter": pair[1]}))

    facts = joined.map(lambda kv: _to_fact(kv[0], kv[1]))
    columns = ["id", "name", "market", "location", "follower_count",
               "has_facebook", "has_twitter", "has_video", "raised",
               "num_rounds", "total_funding_usd", "fb_likes",
               "tw_statuses", "tw_followers"]
    return DataFrame(facts, columns)


def _to_fact(company_id: int, parts: Dict) -> Dict:
    startup = parts["startup"]
    crunchbase: Optional[Dict] = parts.get("crunchbase")
    facebook: Optional[Dict] = parts.get("facebook")
    twitter: Optional[Dict] = parts.get("twitter")
    num_rounds = (crunchbase or {}).get("num_funding_rounds", 0)
    return {
        "id": company_id,
        "name": startup.get("name"),
        "market": startup.get("market"),
        "location": startup.get("location"),
        "follower_count": int(startup.get("follower_count", 0)),
        "has_facebook": bool(startup.get("facebook_url")),
        "has_twitter": bool(startup.get("twitter_url")),
        "has_video": bool(startup.get("video_url")),
        "raised": num_rounds > 0,
        "num_rounds": int(num_rounds),
        "total_funding_usd": int((crunchbase or {}).get(
            "total_funding_usd", 0)),
        "fb_likes": int((facebook or {}).get("fan_count", 0)),
        "tw_statuses": int((twitter or {}).get("statuses_count", 0)),
        "tw_followers": int((twitter or {}).get("followers_count", 0)),
    }
