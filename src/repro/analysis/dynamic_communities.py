"""Community dynamics over time (§7).

"We also plan to understand the dynamics in terms of formation or
disbanding of community clusters over time."

Investment edges carry day stamps, so the investment graph can be
replayed cumulatively: detect communities on each growing prefix and
match consecutive covers by Jaccard similarity. Each community then has
a lifecycle:

* **born** — no sufficiently similar community in the previous window;
* **continued** — matched one-to-one (possibly grown or shrunk);
* **merged** — two or more previous communities map onto it;
* **split** — it is the best match of a previous community that also
  maps onto another current one;
* **dissolved** — a previous community with no current match.

The tracker is detector-agnostic: any callable producing
``{community_id: set(investors)}`` from a :class:`BipartiteGraph` works
(CoDA by default).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.graph.bipartite import BipartiteGraph
from repro.world.entities import Investment

Cover = Dict[int, Set[int]]
Detector = Callable[[BipartiteGraph], Cover]


@dataclass
class WindowSnapshot:
    """Communities detected on one cumulative prefix of the edge stream."""

    window_index: int
    up_to_day: int
    num_edges: int
    communities: Cover


@dataclass
class LifecycleEvent:
    """One community's fate between consecutive windows."""

    window_index: int                 # the *later* window
    kind: str                         # born/continued/merged/split/dissolved
    community_id: Optional[int]       # id in the later window (None: dissolved)
    previous_ids: List[int] = field(default_factory=list)
    jaccard: float = 0.0


@dataclass
class DynamicsReport:
    """Full lifecycle history across all windows."""

    snapshots: List[WindowSnapshot]
    events: List[LifecycleEvent]

    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for event in self.events:
            tally[event.kind] = tally.get(event.kind, 0) + 1
        return tally

    def events_in_window(self, window_index: int) -> List[LifecycleEvent]:
        return [e for e in self.events if e.window_index == window_index]


def default_coda_detector(num_communities: int, min_investments: int = 4,
                          max_iters: int = 25, seed: int = 0) -> Detector:
    """A CoDA-based detector suitable for :func:`track_communities`."""
    from repro.community.coda import CoDA

    def detect(graph: BipartiteGraph) -> Cover:
        filtered = graph.filter_investors(min_investments)
        if filtered.num_investors < 4:
            return {}
        result = CoDA(num_communities=num_communities, max_iters=max_iters,
                      seed=seed).fit(filtered)
        return dict(result.investor_communities)
    return detect


def track_communities(investments: Sequence[Investment],
                      num_windows: int,
                      detector: Detector,
                      match_threshold: float = 0.3) -> DynamicsReport:
    """Replay investments in ``num_windows`` cumulative slices and track
    community lifecycles between consecutive windows."""
    if num_windows < 1:
        raise ValueError("num_windows must be >= 1")
    if not investments:
        raise ValueError("no investments to replay")
    ordered = sorted(investments, key=lambda inv: inv.day)
    last_day = ordered[-1].day
    first_day = ordered[0].day
    span = max(1, last_day - first_day + 1)

    snapshots: List[WindowSnapshot] = []
    events: List[LifecycleEvent] = []
    previous: Optional[WindowSnapshot] = None

    for window in range(num_windows):
        cutoff = first_day + (window + 1) * span // num_windows
        prefix = [inv for inv in ordered if inv.day <= cutoff]
        graph = BipartiteGraph(
            (inv.investor_id, inv.company_id) for inv in prefix)
        snapshot = WindowSnapshot(
            window_index=window, up_to_day=cutoff,
            num_edges=graph.num_edges, communities=detector(graph))
        if previous is not None:
            events.extend(_match_windows(previous, snapshot,
                                         match_threshold))
        snapshots.append(snapshot)
        previous = snapshot
    return DynamicsReport(snapshots=snapshots, events=events)


def _jaccard(a: Set[int], b: Set[int]) -> float:
    if not a and not b:
        return 0.0
    return len(a & b) / len(a | b)


def _overlap(a: Set[int], b: Set[int]) -> float:
    """Overlap coefficient |a∩b| / min(|a|,|b|).

    Cumulative windows only ever *add* members, so Jaccard similarity
    systematically punishes healthy growth; the overlap coefficient
    recognizes a community that kept its core while expanding.
    """
    if not a or not b:
        return 0.0
    return len(a & b) / min(len(a), len(b))


def _match_windows(earlier: WindowSnapshot, later: WindowSnapshot,
                   threshold: float) -> List[LifecycleEvent]:
    """Classify every community of ``later`` (and dissolved ones)."""
    events: List[LifecycleEvent] = []
    window = later.window_index

    # For each previous community, its best current match (if any).
    forward: Dict[int, Tuple[Optional[int], float]] = {}
    for prev_id, prev_members in earlier.communities.items():
        best_id, best_score = None, 0.0
        for cur_id, cur_members in later.communities.items():
            score = _overlap(prev_members, cur_members)
            if score > best_score:
                best_id, best_score = cur_id, score
        forward[prev_id] = (best_id if best_score >= threshold else None,
                            best_score)

    incoming: Dict[int, List[int]] = {}
    for prev_id, (cur_id, _score) in forward.items():
        if cur_id is not None:
            incoming.setdefault(cur_id, []).append(prev_id)

    # How many current communities each previous one feeds (for splits).
    feeds: Dict[int, int] = {}
    for prev_id, prev_members in earlier.communities.items():
        count = sum(
            1 for cur_members in later.communities.values()
            if _overlap(prev_members, cur_members) >= threshold)
        feeds[prev_id] = count

    for cur_id, cur_members in later.communities.items():
        sources = incoming.get(cur_id, [])
        if not sources:
            events.append(LifecycleEvent(window, "born", cur_id))
        elif len(sources) > 1:
            score = max(_overlap(earlier.communities[p], cur_members)
                        for p in sources)
            events.append(LifecycleEvent(window, "merged", cur_id,
                                         sorted(sources), score))
        else:
            prev_id = sources[0]
            kind = "split" if feeds.get(prev_id, 0) > 1 else "continued"
            events.append(LifecycleEvent(
                window, kind, cur_id, [prev_id],
                _overlap(earlier.communities[prev_id], cur_members)))

    for prev_id, (cur_id, _score) in forward.items():
        if cur_id is None:
            events.append(LifecycleEvent(window, "dissolved", None,
                                         [prev_id]))
    return events
