"""Investor recommendation over the bipartite graph (§6 related work).

The paper positions itself against "Recommending investors for
crowdfunding projects" (An, Quercia & Crowcroft, WWW '14). This module
implements that task on our investment graph as a baseline consumers
can compare community-based approaches to:

* **item-based collaborative filtering** — score company ``c`` for
  investor ``u`` by the cosine similarity between ``c``'s backer set
  and the backer sets of companies already in ``u``'s portfolio;
* **popularity** — rank by in-degree (the non-personalized control).

Evaluation is standard leave-edges-out ranking: hide a fraction of
edges, score all non-portfolio companies per test investor, report
hit-rate@k and the mean reciprocal rank against the hidden edges.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.graph.bipartite import BipartiteGraph
from repro.util.rng import RngStream


@dataclass
class RecommendationEval:
    """Held-out ranking quality of one recommender."""

    method: str
    test_investors: int
    hit_rate_at_k: float
    mrr: float
    k: int


class InvestorRecommender:
    """Item-based collaborative filtering on co-investment."""

    def __init__(self, graph: BipartiteGraph):
        self._graph = graph
        self._backers: Dict[int, Set[int]] = {
            c: set(graph.backers(c)) for c in graph.companies}

    def score(self, investor: int, company: int,
              exclude_investor: bool = True) -> float:
        """Similarity of ``company`` to the investor's portfolio."""
        target = self._backers.get(company, set())
        if exclude_investor:
            target = target - {investor}
        if not target:
            return 0.0
        total = 0.0
        for owned in self._graph.portfolio(investor):
            if owned == company:
                continue
            others = self._backers.get(owned, set()) - {investor}
            if not others:
                continue
            overlap = len(target & others)
            if overlap:
                total += overlap / math.sqrt(len(target) * len(others))
        return total

    def recommend(self, investor: int, k: int = 10,
                  candidates: Optional[Sequence[int]] = None,
                  ) -> List[Tuple[int, float]]:
        """Top-``k`` companies not already in the investor's portfolio."""
        portfolio = self._graph.portfolio(investor)
        pool = candidates if candidates is not None else self._graph.companies
        scored = [(c, self.score(investor, c))
                  for c in pool if c not in portfolio]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored[:k]


class PopularityRecommender:
    """Non-personalized control: rank companies by backer count."""

    def __init__(self, graph: BipartiteGraph):
        self._graph = graph
        self._ranked = sorted(graph.companies,
                              key=lambda c: (-graph.in_degree(c), c))

    def recommend(self, investor: int, k: int = 10,
                  candidates: Optional[Sequence[int]] = None,
                  ) -> List[Tuple[int, float]]:
        portfolio = self._graph.portfolio(investor)
        pool = (self._ranked if candidates is None
                else sorted(candidates,
                            key=lambda c: (-self._graph.in_degree(c), c)))
        out = [(c, float(self._graph.in_degree(c)))
               for c in pool if c not in portfolio]
        return out[:k]


def evaluate_recommenders(graph: BipartiteGraph,
                          holdout_fraction: float = 0.2,
                          k: int = 10,
                          min_portfolio: int = 3,
                          max_test_investors: int = 200,
                          seed: int = 0) -> List[RecommendationEval]:
    """Leave-edges-out evaluation of both recommenders on ``graph``."""
    if not 0.0 < holdout_fraction < 1.0:
        raise ValueError("holdout_fraction must be in (0, 1)")
    rng = RngStream(seed, "recommend")

    # Hide one random edge per eligible investor (leave-one-out).
    eligible = [u for u in graph.investors
                if graph.out_degree(u) >= min_portfolio]
    rng.shuffle(eligible)
    eligible = eligible[:max_test_investors]
    hidden: Dict[int, int] = {}
    for investor in eligible:
        portfolio = sorted(graph.portfolio(investor))
        hidden[investor] = rng.choice(portfolio)
    train_edges = [(u, c) for u, c in graph.edges()
                   if hidden.get(u) != c]
    train = BipartiteGraph(train_edges)

    cf = InvestorRecommender(train)
    pop = PopularityRecommender(train)
    results = []
    for method, recommender in (("collaborative", cf),
                                ("popularity", pop)):
        hits = 0
        reciprocal = 0.0
        evaluated = 0
        for investor, target in hidden.items():
            if train.out_degree(investor) == 0:
                continue
            evaluated += 1
            top = recommender.recommend(investor, k=k)
            ranked_ids = [c for c, _s in top]
            if target in ranked_ids:
                hits += 1
                reciprocal += 1.0 / (ranked_ids.index(target) + 1)
        results.append(RecommendationEval(
            method=method,
            test_investors=evaluated,
            hit_rate_at_k=hits / evaluated if evaluated else 0.0,
            mrr=reciprocal / evaluated if evaluated else 0.0,
            k=k))
    return results
