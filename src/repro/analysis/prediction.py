"""§7 extension: predicting fundraising success from observable features.

"We further plan to use characteristics such as node degree,
connectivity, and measures of centrality ... to predict the success or
failure of a startup." Implemented as an L2-regularized logistic
regression (from-scratch numpy gradient ascent — no sklearn offline)
over per-company features assembled from the crawled datasets:

* AngelList: follower count, demo video, social links;
* the investment graph: number of backers (in-degree);
* Facebook/Twitter: log-scaled engagement metrics.

Reports train/test AUC and per-feature coefficients so the feature-
selection question the paper poses ("which graph statistics are the most
useful?") is answerable from the output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.engine.context import SparkLiteContext
from repro.graph.bipartite import BipartiteGraph
from repro.util.rng import RngStream

FEATURE_NAMES = (
    "log_follower_count",
    "has_facebook",
    "has_twitter",
    "has_video",
    "log_fb_likes",
    "log_tw_statuses",
    "log_tw_followers",
    "num_backers",
)


@dataclass
class PredictionResult:
    """Fitted model and held-out quality."""

    feature_names: Tuple[str, ...]
    coefficients: np.ndarray
    intercept: float
    train_auc: float
    test_auc: float
    num_train: int
    num_test: int
    positive_rate: float

    def top_features(self, n: int = 5) -> List[Tuple[str, float]]:
        order = np.argsort(-np.abs(self.coefficients))
        return [(self.feature_names[i], float(self.coefficients[i]))
                for i in order[:n]]


def predict_success(sc: SparkLiteContext, dfs, graph: BipartiteGraph,
                    angellist_root: str = "/crawl/angellist",
                    crunchbase_dir: str = "/crawl/crunchbase/organizations",
                    facebook_dir: str = "/crawl/facebook/pages",
                    twitter_dir: str = "/crawl/twitter/profiles",
                    test_fraction: float = 0.3,
                    l2: float = 1e-3,
                    epochs: int = 300,
                    learning_rate: float = 0.3,
                    seed: int = 0) -> PredictionResult:
    """Assemble features, fit the logistic model, report AUC."""
    startups = sc.json_dataset(dfs, f"{angellist_root}/startups").collect()
    raised = set(
        sc.json_dataset(dfs, crunchbase_dir)
        .filter(lambda org: org.get("num_funding_rounds", 0) > 0)
        .map(lambda org: int(org["angellist_id"]))
        .collect())
    likes = dict(sc.json_dataset(dfs, facebook_dir)
                 .map(lambda p: (int(p["angellist_id"]),
                                 int(p["fan_count"]))).collect())
    twitter = dict(sc.json_dataset(dfs, twitter_dir)
                   .map(lambda p: (int(p["angellist_id"]),
                                   (int(p["statuses_count"]),
                                    int(p["followers_count"])))).collect())

    rows: List[List[float]] = []
    labels: List[float] = []
    for s in startups:
        cid = int(s["id"])
        statuses, followers = twitter.get(cid, (0, 0))
        rows.append([
            math.log1p(int(s.get("follower_count", 0))),
            1.0 if s.get("facebook_url") else 0.0,
            1.0 if s.get("twitter_url") else 0.0,
            1.0 if s.get("video_url") else 0.0,
            math.log1p(likes.get(cid, 0)),
            math.log1p(statuses),
            math.log1p(followers),
            float(graph.in_degree(cid)),
        ])
        labels.append(1.0 if cid in raised else 0.0)

    X = np.asarray(rows, dtype=np.float64)
    y = np.asarray(labels, dtype=np.float64)
    mean = X.mean(axis=0)
    std = np.maximum(1e-9, X.std(axis=0))
    X = (X - mean) / std

    rng = RngStream(seed, "prediction")
    order = rng.np.permutation(len(y))
    cut = int(round(len(y) * (1.0 - test_fraction)))
    train_idx, test_idx = order[:cut], order[cut:]

    weights, intercept = _fit_logistic(X[train_idx], y[train_idx],
                                       l2=l2, epochs=epochs,
                                       learning_rate=learning_rate)
    train_scores = _sigmoid(X[train_idx] @ weights + intercept)
    test_scores = _sigmoid(X[test_idx] @ weights + intercept)

    return PredictionResult(
        feature_names=FEATURE_NAMES,
        coefficients=weights,
        intercept=float(intercept),
        train_auc=auc_score(y[train_idx], train_scores),
        test_auc=auc_score(y[test_idx], test_scores),
        num_train=len(train_idx),
        num_test=len(test_idx),
        positive_rate=float(y.mean()),
    )


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))


def _fit_logistic(X: np.ndarray, y: np.ndarray, l2: float,
                  epochs: int, learning_rate: float
                  ) -> Tuple[np.ndarray, float]:
    """Full-batch gradient ascent on the regularized log-likelihood."""
    n, d = X.shape
    weights = np.zeros(d)
    intercept = 0.0
    for _ in range(epochs):
        scores = _sigmoid(X @ weights + intercept)
        error = y - scores
        weights += learning_rate * (X.T @ error / n - l2 * weights)
        intercept += learning_rate * float(error.mean())
    return weights, intercept


def auc_score(labels: np.ndarray, scores: np.ndarray) -> float:
    """ROC AUC via the rank statistic (ties handled by midranks)."""
    labels = np.asarray(labels, dtype=np.float64)
    scores = np.asarray(scores, dtype=np.float64)
    positives = labels > 0.5
    n_pos = int(positives.sum())
    n_neg = len(labels) - n_pos
    if n_pos == 0 or n_neg == 0:
        return float("nan")
    order = np.argsort(scores)
    ranks = np.empty(len(scores))
    sorted_scores = scores[order]
    i = 0
    rank = 1
    while i < len(scores):
        j = i
        while j + 1 < len(scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        midrank = (rank + rank + (j - i)) / 2.0
        ranks[order[i:j + 1]] = midrank
        rank += (j - i) + 1
        i = j + 1
    pos_rank_sum = float(ranks[positives].sum())
    return (pos_rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)
