"""§5.1: headline statistics of the bipartite investment graph."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.graph.bipartite import BipartiteGraph, DegreeConcentration
from repro.viz.ascii import ascii_table


@dataclass
class ConcentrationReport:
    """Graph sizes plus the degree-concentration rows."""

    num_investors: int
    num_companies: int
    num_edges: int
    mean_investors_per_company: float
    rows: List[DegreeConcentration] = field(default_factory=list)

    def render(self) -> str:
        header = (f"bipartite graph: {self.num_investors:,} investors, "
                  f"{self.num_companies:,} companies, "
                  f"{self.num_edges:,} edges "
                  f"({self.mean_investors_per_company:.1f} investors/company)")
        table = ascii_table(
            ["out-degree ≥", "% investors", "% edges"],
            [[row.min_degree,
              f"{100 * row.investor_fraction:.1f}",
              f"{100 * row.edge_fraction:.1f}"] for row in self.rows])
        return header + "\n" + table


def concentration_report(graph: BipartiteGraph,
                         thresholds: Sequence[int] = (3, 4, 5),
                         ) -> ConcentrationReport:
    """The §5.1 numbers for ``graph``."""
    return ConcentrationReport(
        num_investors=graph.num_investors,
        num_companies=graph.num_companies,
        num_edges=graph.num_edges,
        mean_investors_per_company=graph.mean_investors_per_company,
        rows=graph.degree_concentration(thresholds),
    )
