"""In-process simulated HTTP substrate.

The paper's crawlers speak HTTP to four public APIs. Here every "server"
is an in-process object and a request is a method call — but the interface
preserves everything that shapes crawler design: status codes, retriable
faults, latency, authentication headers, pagination, and rate-limit
responses with ``Retry-After``. No real sockets are ever opened.
"""

from repro.net.http import Request, Response, Route, SimServer
from repro.net.latency import LatencyModel
from repro.net.faults import FaultPlan

__all__ = [
    "Request",
    "Response",
    "Route",
    "SimServer",
    "LatencyModel",
    "FaultPlan",
]
