"""Deterministic per-request latency model for the simulated servers."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.rng import derive_seed


@dataclass(frozen=True)
class LatencyModel:
    """Base latency plus deterministic pseudo-random jitter (seconds).

    Jitter is a pure function of the request index, so a rerun with the
    same seed produces the identical latency sequence.
    """

    base: float = 0.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if self.base < 0:
            raise ValueError(f"base latency must be >= 0, got {self.base}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    @classmethod
    def zero(cls) -> "LatencyModel":
        return cls(0.0, 0.0)

    @classmethod
    def typical(cls, seed: int = 0) -> "LatencyModel":
        """Roughly what a public API round trip looked like: ~120 ms."""
        return cls(base=0.08, jitter=0.08, seed=seed)

    def sample(self, request_index: int) -> float:
        if self.jitter <= 0:
            return self.base
        fraction = (derive_seed(self.seed, str(request_index)) % 10_000) / 10_000
        return self.base + self.jitter * fraction
