"""Deterministic fault injection for the simulated servers.

Two generations of fault model live here:

* :class:`FaultPlan` — the original model: independent transient
  500/503s decided purely from the request index. Kept for backward
  compatibility and for tests that want exactly one failure mode.
* :class:`FaultSchedule` — a composable taxonomy of the failure modes a
  weeks-long crawl of real public APIs actually meets (§3): client-side
  timeouts after a server hang, connection resets, 503 *brownout
  windows* spanning several consecutive requests, truncated/corrupt
  JSON payloads, and 429 rate-limit storms — all seed-deterministic so
  a chaos run can be replayed bit-for-bit.

Every decision is a pure function of ``(seed, request_index)``; nothing
consults wall time or global RNG state, so two crawls over the same
world with the same schedule observe the same faults in the same
places.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.util.rng import derive_seed

#: point faults — decided independently per request
FAULT_ERROR = "error"        # transient 500/503
FAULT_TIMEOUT = "timeout"    # server hang until the client's timeout fires
FAULT_RESET = "reset"        # connection reset by peer
FAULT_CORRUPT = "corrupt"    # 200 whose JSON body arrives truncated

#: window faults — a start index opens a window covering ``span`` requests
FAULT_BROWNOUT = "brownout"  # consecutive 503s with Retry-After
FAULT_STORM = "rate_storm"   # consecutive 429s with Retry-After

#: engine faults — injected into partition *tasks*, not network requests
FAULT_KILL_WORKER = "kill_worker"  # the executor running the task dies
FAULT_HANG_TASK = "hang_task"      # the task wedges for ``duration`` seconds

#: serve faults — injected into the online query path (repro.serve), not
#: the crawl; a brownout/storm window claims serve requests too (the
#: backing store browns out for both readers and writers)
FAULT_SLOW = "slow"                # backend latency spike of ``duration`` s

#: shard faults — injected into the *sharded* serve tier
#: (repro.serve.sharding); each claims a window of serve-request
#: indexes, and the scatter-gather coordinator maps the window start to
#: a deterministic target shard (and replica, for slow_replica)
FAULT_KILL_SHARD = "kill_shard"            # every replica of one shard dies
FAULT_PARTITION_SHARD = "partition_shard"  # shard unreachable for the window
FAULT_SLOW_REPLICA = "slow_replica"        # one replica pads ``duration`` s

#: ingest faults — injected into the continuous-ingest tier's ledger
#: protocol (repro.crawl.scheduler), never into network requests
FAULT_KILL_INGEST = "kill_ingest"    # SIGKILL-equivalent at a ledger state
FAULT_LEASE_EXPIRY = "lease_expiry"  # heartbeats lost; the lease lapses

#: alert faults — injected into the standing-query delivery path
#: (repro.serve.outbox), keyed by delivery-attempt step keys so a retry
#: rolls new dice, exactly like the ingest tier
FAULT_KILL_SUBSCRIBER = "kill_subscriber"  # subscriber down; attempt fails
FAULT_DROP_ACK = "drop_ack"      # delivered, but the ack never lands
FAULT_DUP_DELIVER = "dup_deliver"  # the channel duplicates a delivery

POINT_FAULTS = (FAULT_ERROR, FAULT_TIMEOUT, FAULT_RESET, FAULT_CORRUPT)
WINDOW_FAULTS = (FAULT_BROWNOUT, FAULT_STORM)
ENGINE_FAULTS = (FAULT_KILL_WORKER, FAULT_HANG_TASK)
SERVE_FAULTS = (FAULT_SLOW,)
SHARD_FAULTS = (FAULT_KILL_SHARD, FAULT_PARTITION_SHARD, FAULT_SLOW_REPLICA)
INGEST_FAULTS = (FAULT_KILL_INGEST, FAULT_LEASE_EXPIRY)
ALERT_FAULTS = (FAULT_KILL_SUBSCRIBER, FAULT_DROP_ACK, FAULT_DUP_DELIVER)


@dataclass(frozen=True)
class FaultPlan:
    """Inject a transient error with probability ``p_error`` per request."""

    p_error: float = 0.0
    seed: int = 0

    @classmethod
    def none(cls) -> "FaultPlan":
        return cls(0.0)

    @classmethod
    def flaky(cls, p_error: float = 0.02, seed: int = 0) -> "FaultPlan":
        if not 0.0 <= p_error < 1.0:
            raise ValueError(f"p_error must be in [0, 1), got {p_error}")
        return cls(p_error, seed)

    def inject(self, request_index: int) -> Optional["Response"]:
        from repro.net.http import Response  # local import: avoid cycle
        if self.p_error <= 0.0:
            return None
        fraction = (derive_seed(self.seed, str(request_index)) % 100_000) / 100_000
        if fraction < self.p_error:
            status = 503 if fraction < self.p_error / 2 else 500
            return Response.error(status, "simulated transient failure")
        return None


@dataclass(frozen=True)
class FaultSpec:
    """One fault mode within a :class:`FaultSchedule`.

    ``rate`` is the per-request probability for point faults, or the
    per-request probability that a *window starts* for window faults.
    ``duration`` is seconds: the hang length for timeouts, the
    ``Retry-After`` value for brownouts and storms. ``span`` is how many
    consecutive requests a window covers.
    """

    kind: str
    rate: float
    duration: float = 0.0
    span: int = 0

    def __post_init__(self):
        if self.kind not in (POINT_FAULTS + WINDOW_FAULTS + ENGINE_FAULTS
                             + SERVE_FAULTS + SHARD_FAULTS + INGEST_FAULTS
                             + ALERT_FAULTS):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not 0.0 <= self.rate < 1.0:
            raise ValueError(f"rate must be in [0, 1), got {self.rate}")
        if self.kind in WINDOW_FAULTS + SHARD_FAULTS and self.span < 1:
            raise ValueError(f"{self.kind} needs span >= 1")
        if self.kind in (FAULT_HANG_TASK, FAULT_SLOW,
                         FAULT_SLOW_REPLICA) and self.duration <= 0:
            raise ValueError(f"{self.kind} needs duration > 0")


class FaultSchedule:
    """A composable, seed-deterministic schedule over fault modes.

    Specs are checked in order; the first mode that claims a request
    index wins, window faults before point faults (a brownout dominates
    everything else during its window). The schedule plugs into
    :class:`~repro.net.http.SimServer` through two hooks:

    * :meth:`inject` — called before dispatch; may replace the whole
      exchange with an error/timeout/reset response;
    * :meth:`corrupt` — called after a successful dispatch; may truncate
      the response payload mid-JSON.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0):
        #: engine-level specs live apart: they claim *task* keys through
        #: :meth:`engine_fault_at`, never network request indexes
        self.engine_specs: List[FaultSpec] = [
            s for s in specs if s.kind in ENGINE_FAULTS]
        #: serve-level specs live apart too: consumed by the query tier
        #: through :meth:`serve_fault_at`, never by SimServer
        self.serve_specs: List[FaultSpec] = [
            s for s in specs if s.kind in SERVE_FAULTS]
        #: shard-level specs: consumed by the scatter-gather coordinator
        #: through :meth:`shard_faults_at`, never by SimServer
        self.shard_specs: List[FaultSpec] = [
            s for s in specs if s.kind in SHARD_FAULTS]
        #: ingest-level specs: consumed by the continuous scheduler
        #: through :meth:`ingest_fault_at` at ledger protocol steps
        self.ingest_specs: List[FaultSpec] = [
            s for s in specs if s.kind in INGEST_FAULTS]
        #: alert-level specs: consumed by the delivery outbox through
        #: :meth:`alert_fault_at` at delivery-attempt steps
        self.alert_specs: List[FaultSpec] = [
            s for s in specs if s.kind in ALERT_FAULTS]
        self.specs: List[FaultSpec] = [
            s for s in specs
            if s.kind not in (ENGINE_FAULTS + SERVE_FAULTS + SHARD_FAULTS
                              + INGEST_FAULTS + ALERT_FAULTS)]
        self.seed = seed
        #: deterministic windows forced by a test/benchmark regardless of
        #: the probabilistic schedule: (start, end, spec) half-open ranges
        self.forced_windows: List[tuple] = []
        #: one-shot forced ingest kills: (unit_id, state) pairs armed by
        #: the chaos drill; consumed the first time the scheduler reaches
        #: that exact ledger state (a resumed run sails past it, the way
        #: a real SIGKILL doesn't repeat after a restart)
        self.forced_ingest_kills: List[tuple] = []
        order = {k: i for i, k in enumerate(WINDOW_FAULTS + POINT_FAULTS)}
        self.specs.sort(key=lambda s: order[s.kind])

    # ------------------------------------------------------------ construction
    @classmethod
    def none(cls) -> "FaultSchedule":
        return cls((), 0)

    @classmethod
    def flaky(cls, p_error: float = 0.02, seed: int = 0) -> "FaultSchedule":
        """The legacy single-mode plan, as a schedule."""
        return cls([FaultSpec(FAULT_ERROR, p_error)], seed)

    @classmethod
    def chaos(cls, intensity: float = 1.0, seed: int = 0) -> "FaultSchedule":
        """All six modes at an aggregate rate of ~``0.06 * intensity``."""
        if intensity < 0:
            raise ValueError(f"intensity must be >= 0, got {intensity}")
        s = intensity
        return cls([
            FaultSpec(FAULT_BROWNOUT, 0.003 * s, duration=1.5, span=3),
            FaultSpec(FAULT_STORM, 0.003 * s, duration=2.0, span=3),
            FaultSpec(FAULT_TIMEOUT, 0.010 * s, duration=45.0),
            FaultSpec(FAULT_RESET, 0.010 * s),
            FaultSpec(FAULT_CORRUPT, 0.010 * s),
            FaultSpec(FAULT_ERROR, 0.012 * s),
        ], seed)

    @classmethod
    def engine_chaos(cls, intensity: float = 1.0,
                     seed: int = 0) -> "FaultSchedule":
        """Engine-only faults: kill-worker-mid-stage and hang-task.

        These never touch the network simulation; they are consumed by
        the engine's task supervisor (``SparkLiteContext(engine_faults=
        ...)``), which must recover lost partitions and route around
        wedged tasks without changing a single output byte.
        """
        if intensity < 0:
            raise ValueError(f"intensity must be >= 0, got {intensity}")
        s = intensity
        return cls([
            FaultSpec(FAULT_KILL_WORKER, min(0.999, 0.02 * s)),
            FaultSpec(FAULT_HANG_TASK, min(0.999, 0.03 * s), duration=0.1),
        ], seed)

    @classmethod
    def serve_chaos(cls, intensity: float = 1.0,
                    seed: int = 0) -> "FaultSchedule":
        """Request-path faults for the online query tier.

        Brownout windows make the backing store unavailable for a run of
        consecutive requests (the service must degrade to stale/summary
        answers), slow points add a latency spike that eats the request's
        deadline budget. Consumed via :meth:`serve_fault_at`, never by
        :class:`~repro.net.http.SimServer`.
        """
        if intensity < 0:
            raise ValueError(f"intensity must be >= 0, got {intensity}")
        s = intensity
        return cls([
            FaultSpec(FAULT_BROWNOUT, min(0.999, 0.002 * s),
                      duration=0.5, span=25),
            FaultSpec(FAULT_SLOW, min(0.999, 0.05 * s), duration=0.05),
        ], seed)

    @classmethod
    def serve_shard_chaos(cls, intensity: float = 1.0,
                          seed: int = 0) -> "FaultSchedule":
        """Shard-tier faults for the scatter-gather serve deployment.

        ``slow_replica`` pads one deterministic replica's calls for a
        window (the coordinator should hedge to a sibling),
        ``partition_shard`` makes one shard unreachable for a window
        (queries over its keyspace go partial), and ``kill_shard`` takes
        every replica of one shard down until the autoscaler boots a
        replacement. A light ``slow`` point fault keeps the base serve
        path honest too. Consumed via :meth:`shard_faults_at` and
        :meth:`serve_fault_at`, never by SimServer.
        """
        if intensity < 0:
            raise ValueError(f"intensity must be >= 0, got {intensity}")
        s = intensity
        return cls([
            FaultSpec(FAULT_SLOW_REPLICA, min(0.999, 0.004 * s),
                      duration=0.05, span=15),
            FaultSpec(FAULT_PARTITION_SHARD, min(0.999, 0.001 * s), span=20),
            FaultSpec(FAULT_KILL_SHARD, min(0.999, 0.0003 * s), span=1),
            FaultSpec(FAULT_SLOW, min(0.999, 0.02 * s), duration=0.05),
        ], seed)

    @classmethod
    def ingest_chaos(cls, intensity: float = 1.0,
                     seed: int = 0) -> "FaultSchedule":
        """Continuous-ingest faults: process kills and lease expiries.

        ``kill_ingest`` SIGKILL-equivalents the pipeline at a ledger
        protocol step (the driver loses all in-memory state and must
        resume from the write-ahead ledger); ``lease_expiry`` simulates
        a lost heartbeat run — the worker's lease lapses mid-unit, its
        commit is fenced off, and the supervisor redelivers the unit.
        Consumed via :meth:`ingest_fault_at`, never by SimServer.
        """
        if intensity < 0:
            raise ValueError(f"intensity must be >= 0, got {intensity}")
        s = intensity
        return cls([
            FaultSpec(FAULT_KILL_INGEST, min(0.999, 0.05 * s)),
            FaultSpec(FAULT_LEASE_EXPIRY, min(0.999, 0.05 * s)),
        ], seed)

    @classmethod
    def alert_chaos(cls, intensity: float = 1.0,
                    seed: int = 0) -> "FaultSchedule":
        """Delivery-path faults for the standing-query outbox.

        ``kill_subscriber`` fails a delivery attempt outright (the
        subscriber is down; the outbox must back off and retry),
        ``drop_ack`` applies the subscriber's effect but loses the ack
        (the outbox re-delivers; dedupe by notification id must absorb
        it), and ``dup_deliver`` duplicates one attempt on the channel
        itself. A light ``kill_ingest`` keeps the producing tier honest
        too — the benchmark additionally forces one mid-run ingest kill
        at an exact ledger state. Consumed via :meth:`alert_fault_at`
        and :meth:`ingest_fault_at`, never by SimServer.
        """
        if intensity < 0:
            raise ValueError(f"intensity must be >= 0, got {intensity}")
        s = intensity
        return cls([
            FaultSpec(FAULT_KILL_SUBSCRIBER, min(0.999, 0.10 * s)),
            FaultSpec(FAULT_DROP_ACK, min(0.999, 0.08 * s)),
            FaultSpec(FAULT_DUP_DELIVER, min(0.999, 0.08 * s)),
            FaultSpec(FAULT_KILL_INGEST, min(0.999, 0.02 * s)),
        ], seed)

    @classmethod
    def from_profile(cls, profile: str, seed: int = 0) -> "FaultSchedule":
        """Resolve a named CLI profile (``--fault-profile``)."""
        if profile == "none":
            return cls.none()
        if profile == "flaky":
            return cls.flaky(seed=seed)
        if profile == "chaos":
            return cls.chaos(seed=seed)
        if profile == "chaos-engine":
            net = cls.chaos(seed=seed)
            return cls(net.specs + cls.engine_chaos(seed=seed).engine_specs,
                       seed)
        if profile == "serve-chaos":
            return cls.serve_chaos(seed=seed)
        if profile == "serve-shard-chaos":
            return cls.serve_shard_chaos(seed=seed)
        if profile == "chaos-ingest":
            return cls.ingest_chaos(seed=seed)
        if profile == "alert-chaos":
            return cls.alert_chaos(seed=seed)
        raise ValueError(f"unknown fault profile {profile!r}; "
                         f"expected none/flaky/chaos/chaos-engine/"
                         f"serve-chaos/serve-shard-chaos/chaos-ingest/"
                         f"alert-chaos")

    # -------------------------------------------------------------- decisions
    def _fraction(self, kind: str, request_index: int) -> float:
        return (derive_seed(self.seed, f"{kind}:{request_index}")
                % 100_000) / 100_000

    def _window_active(self, spec: FaultSpec, request_index: int) -> bool:
        start = max(1, request_index - spec.span + 1)
        for index in range(start, request_index + 1):
            if self._fraction(spec.kind + ":start", index) < spec.rate:
                return True
        return False

    def force_window(self, kind: str, start: int, span: int,
                     duration: float = 0.0) -> None:
        """Deterministically claim ``[start, start + span)`` for ``kind``.

        Benchmarks use this to inject a brownout *mid-run* at an exact
        request index, independent of the probabilistic schedule, so the
        robustness contract can be asserted around a known event.
        """
        if span < 1:
            raise ValueError(f"span must be >= 1, got {span}")
        spec = FaultSpec(kind, 0.0, duration=duration,
                         span=span if kind in WINDOW_FAULTS + SHARD_FAULTS
                         else 0)
        self.forced_windows.append((start, start + span, spec))

    def _forced_at(self, request_index: int) -> Optional[FaultSpec]:
        for start, end, spec in self.forced_windows:
            if start <= request_index < end:
                return spec
        return None

    def fault_at(self, request_index: int) -> Optional[FaultSpec]:
        """Which fault mode (if any) claims this request index."""
        forced = self._forced_at(request_index)
        if forced is not None:
            return forced
        for spec in self.specs:
            if spec.kind in WINDOW_FAULTS:
                if self._window_active(spec, request_index):
                    return spec
            elif self._fraction(spec.kind, request_index) < spec.rate:
                return spec
        return None

    def serve_fault_at(self, request_index: int) -> Optional[FaultSpec]:
        """Which fault (if any) claims this *serve-path* request.

        Forced windows first, then probabilistic brownout/storm windows
        (shared with the network schedule: the store browns out for
        everyone), then the serve-only point faults (latency spikes).
        """
        forced = self._forced_at(request_index)
        if forced is not None:
            return forced
        for spec in self.specs:
            if (spec.kind in WINDOW_FAULTS
                    and self._window_active(spec, request_index)):
                return spec
        for spec in self.serve_specs:
            if self._fraction(spec.kind, request_index) < spec.rate:
                return spec
        return None

    def shard_faults_at(self, request_index: int) -> List[tuple]:
        """All shard faults whose window covers this serve request.

        Returns ``(spec, window_start)`` pairs — unlike the scalar fault
        hooks, several shard faults can overlap (a replica can be slow
        while a different shard is partitioned), and the coordinator
        needs the *window start* to derive the deterministic target
        shard/replica for each one. Forced windows come first so a
        benchmark can pin a kill at an exact request index.
        """
        hits: List[tuple] = []
        for start, end, spec in self.forced_windows:
            if spec.kind in SHARD_FAULTS and start <= request_index < end:
                hits.append((spec, start))
        for spec in self.shard_specs:
            lo = max(1, request_index - spec.span + 1)
            for index in range(lo, request_index + 1):
                if self._fraction(spec.kind + ":start", index) < spec.rate:
                    hits.append((spec, index))
                    break
        return hits

    def force_ingest_kill(self, unit_id: str, state: str) -> None:
        """Arm a one-shot kill at an exact ledger state of one unit.

        ``state`` is one of the scheduler's crash points (``pre-intent``
        / ``post-intent`` / ``mid-land`` / ``pre-commit`` /
        ``post-commit``). The chaos drill uses this to hit every ledger
        state deterministically, then resumes and asserts the landed
        bytes match an uninterrupted run.
        """
        self.forced_ingest_kills.append((unit_id, state))

    def take_forced_ingest_kill(self, unit_id: str, state: str) -> bool:
        """Consume (once) a forced kill armed for this unit and state."""
        key = (unit_id, state)
        if key in self.forced_ingest_kills:
            self.forced_ingest_kills.remove(key)
            return True
        return False

    def ingest_fault_at(self, step_key: str) -> Optional[FaultSpec]:
        """Which ingest fault (if any) claims this ledger protocol step.

        ``step_key`` is a stable identifier of one protocol step of one
        delivery attempt (unit id + crash point + lease epoch), so a
        redelivered unit rolls new dice — a probabilistic kill cannot
        pin one unit forever. First matching spec wins, in declaration
        order.
        """
        for spec in self.ingest_specs:
            if self._fraction(spec.kind, step_key) < spec.rate:
                return spec
        return None

    def alert_fault_at(self, step_key: str) -> Optional[FaultSpec]:
        """Which alert fault (if any) claims this delivery attempt.

        ``step_key`` is a stable identifier of one attempt of one
        notification at one subscriber (notification id + subscriber +
        attempt ordinal), so a retried delivery rolls new dice — a
        probabilistic subscriber kill cannot wedge one notification
        forever. First matching spec wins, in declaration order.
        """
        for spec in self.alert_specs:
            if self._fraction(spec.kind, step_key) < spec.rate:
                return spec
        return None

    def engine_fault_at(self, task_key: str) -> Optional[FaultSpec]:
        """Which engine fault (if any) claims this partition task.

        ``task_key`` is a stable per-context identifier (job serial +
        stage ordinal + partition index), so the same program replayed
        with the same seed loses the same executors at the same points.
        First matching spec wins, in declaration order.
        """
        for spec in self.engine_specs:
            if self._fraction(spec.kind, task_key) < spec.rate:
                return spec
        return None

    @property
    def aggregate_rate(self) -> float:
        """Expected fraction of requests hit by some fault."""
        total = 0.0
        for spec in self.specs:
            if spec.kind in WINDOW_FAULTS:
                total += spec.rate * spec.span
            else:
                total += spec.rate
        return min(1.0, total)

    @property
    def kinds(self) -> List[str]:
        return sorted({spec.kind for spec in self.specs}
                      | {spec.kind for spec in self.engine_specs}
                      | {spec.kind for spec in self.serve_specs}
                      | {spec.kind for spec in self.shard_specs}
                      | {spec.kind for spec in self.ingest_specs}
                      | {spec.kind for spec in self.alert_specs})

    # ------------------------------------------------------------- injection
    def inject(self, request_index: int) -> Optional["Response"]:
        """Pre-dispatch hook: replace the exchange with a failure."""
        from repro.net.http import (Response, STATUS_RESET, STATUS_TIMEOUT)
        spec = self.fault_at(request_index)
        if spec is None or spec.kind == FAULT_CORRUPT:
            return None
        if spec.kind == FAULT_ERROR:
            secondary = self._fraction("error:status", request_index)
            status = 503 if secondary < 0.5 else 500
            return Response.error(status, "simulated transient failure")
        if spec.kind == FAULT_TIMEOUT:
            response = Response.error(STATUS_TIMEOUT,
                                      "simulated client-side timeout")
            response.headers["X-Fault-Hang-S"] = f"{spec.duration:.3f}"
            return response
        if spec.kind == FAULT_RESET:
            return Response.error(STATUS_RESET, "connection reset by peer")
        if spec.kind == FAULT_BROWNOUT:
            return Response.error(503, "service brownout",
                                  retry_after=spec.duration)
        if spec.kind == FAULT_STORM:
            return Response.error(429, "rate limit storm",
                                  retry_after=spec.duration)
        raise AssertionError(spec.kind)  # pragma: no cover

    def corrupt(self, request_index: int, response: "Response") -> "Response":
        """Post-dispatch hook: truncate a successful JSON payload."""
        from repro.net.http import CorruptPayload, Response
        if not response.ok or isinstance(response.body, CorruptPayload):
            return response
        spec = self.fault_at(request_index)
        if spec is None or spec.kind != FAULT_CORRUPT:
            return response
        encoded = json.dumps(response.body)
        cut_fraction = self._fraction("corrupt:cut", request_index)
        cut = max(0, int(len(encoded) * (0.2 + 0.6 * cut_fraction)) - 1)
        mangled = Response(status=response.status,
                           body=CorruptPayload(encoded[:cut]),
                           headers=dict(response.headers))
        mangled.headers["X-Fault"] = FAULT_CORRUPT
        return mangled
