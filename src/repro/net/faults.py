"""Deterministic fault injection for the simulated servers.

A :class:`FaultPlan` decides, purely from the request index, whether a
request fails with a transient 500/503. Crawlers must survive these via
retry with backoff — the same discipline the paper's crawlers needed
against real APIs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.util.rng import derive_seed


@dataclass(frozen=True)
class FaultPlan:
    """Inject a transient error with probability ``p_error`` per request."""

    p_error: float = 0.0
    seed: int = 0

    @classmethod
    def none(cls) -> "FaultPlan":
        return cls(0.0)

    @classmethod
    def flaky(cls, p_error: float = 0.02, seed: int = 0) -> "FaultPlan":
        if not 0.0 <= p_error < 1.0:
            raise ValueError(f"p_error must be in [0, 1), got {p_error}")
        return cls(p_error, seed)

    def inject(self, request_index: int) -> Optional["Response"]:
        from repro.net.http import Response  # local import: avoid cycle
        if self.p_error <= 0.0:
            return None
        fraction = (derive_seed(self.seed, str(request_index)) % 100_000) / 100_000
        if fraction < self.p_error:
            status = 503 if fraction < self.p_error / 2 else 500
            return Response.error(status, "simulated transient failure")
        return None
