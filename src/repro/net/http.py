"""Request/response types and a tiny route-dispatching server base.

Routes are template paths such as ``/1/startups/:id``; path parameters are
extracted into ``request.path_params``. Handlers return a
:class:`Response`. :class:`SimServer` applies its latency model and fault
plan around every dispatch so crawler retry logic is exercised for real.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.net.faults import FaultPlan
from repro.net.latency import LatencyModel
from repro.util.clock import Clock, SimClock

#: non-standard statuses modelling transport-level failures: the client
#: never saw an HTTP response, only its socket giving up.
STATUS_RESET = 598    # connection reset by peer
STATUS_TIMEOUT = 599  # client-side timeout fired while the server hung

#: request header carrying the client's per-request timeout budget, so a
#: hang fault knows how long the caller actually waited before giving up.
TIMEOUT_HEADER = "X-Timeout-S"


class CorruptPayload:
    """A response body whose JSON decode failed partway through.

    The simulation passes decoded bodies around, so a truncated payload
    is modelled as this wrapper holding the raw prefix that did arrive.
    Clients must treat it as a transient failure and re-request.
    """

    __slots__ = ("raw",)

    def __init__(self, raw: str):
        self.raw = raw

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CorruptPayload {len(self.raw)} bytes>"


@dataclass
class Request:
    """A simulated HTTP request."""

    method: str
    path: str
    params: Dict[str, Any] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    path_params: Dict[str, str] = field(default_factory=dict)

    @property
    def token(self) -> Optional[str]:
        """The bearer token, from header or ``access_token`` param."""
        auth = self.headers.get("Authorization", "")
        if auth.startswith("Bearer "):
            return auth[len("Bearer "):]
        value = self.params.get("access_token")
        return str(value) if value is not None else None


@dataclass
class Response:
    """A simulated HTTP response carrying a decoded JSON body."""

    status: int
    body: Any = None
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @classmethod
    def json(cls, body: Any, status: int = 200) -> "Response":
        return cls(status=status, body=body)

    @classmethod
    def error(cls, status: int, message: str,
              retry_after: Optional[float] = None) -> "Response":
        headers = {}
        if retry_after is not None:
            headers["Retry-After"] = f"{retry_after:.3f}"
        return cls(status=status, body={"error": message}, headers=headers)


Handler = Callable[[Request], Response]


@dataclass
class Route:
    """A method + template-path route, e.g. ``GET /1/startups/:id``."""

    method: str
    template: str
    handler: Handler

    def match(self, method: str, path: str) -> Optional[Dict[str, str]]:
        """Return extracted path params if this route matches, else None."""
        if method != self.method:
            return None
        tpl_parts = self.template.strip("/").split("/")
        path_parts = path.strip("/").split("/")
        if len(tpl_parts) != len(path_parts):
            return None
        extracted: Dict[str, str] = {}
        for tpl, part in zip(tpl_parts, path_parts):
            if tpl.startswith(":"):
                extracted[tpl[1:]] = part
            elif tpl != part:
                return None
        return extracted


class SimServer:
    """Base class for the simulated API servers.

    Subclasses register routes in ``__init__`` via :meth:`route` and may
    override :meth:`authorize` (token checks) and :meth:`throttle` (rate
    limits). The dispatch order matches a real stack: fault injection,
    then auth, then throttling, then the handler.
    """

    #: human-readable name used in error messages and crawl statistics.
    name = "sim"

    def __init__(self, clock: Optional[Clock] = None,
                 latency: Optional[LatencyModel] = None,
                 faults: Any = None):
        # ``faults`` is a FaultPlan or FaultSchedule (anything exposing
        # ``inject`` and optionally ``corrupt``).
        self.clock = clock or SimClock()
        self.latency = latency or LatencyModel.zero()
        self.faults = faults or FaultPlan.none()
        self._routes: List[Route] = []
        self.request_count = 0

    def route(self, method: str, template: str, handler: Handler) -> None:
        self._routes.append(Route(method, template, handler))

    # -- hooks -------------------------------------------------------------
    def authorize(self, request: Request) -> Optional[Response]:
        """Return an error response to reject the request, or None."""
        return None

    def throttle(self, request: Request) -> Optional[Response]:
        """Return a 429 response if the caller is over its rate limit."""
        return None

    # -- dispatch ----------------------------------------------------------
    def handle(self, request: Request) -> Response:
        """Dispatch a request through faults → auth → throttle → handler.

        Hang faults consume simulated time: the server sleeps the hang
        duration — capped by the client's ``X-Timeout-S`` budget, since a
        real client's socket timeout would have fired by then. Corruption
        faults mangle the payload *after* a successful dispatch, the way
        a truncated transfer looks to the caller.
        """
        self.request_count += 1
        self.clock.sleep(self.latency.sample(self.request_count))
        fault = self.faults.inject(self.request_count)
        if fault is not None:
            hang = float(fault.headers.get("X-Fault-Hang-S", "0") or 0.0)
            if hang > 0:
                budget = float(request.headers.get(TIMEOUT_HEADER, hang)
                               or hang)
                self.clock.sleep(min(hang, max(0.0, budget)))
            return fault
        response = self._dispatch(request)
        corruptor = getattr(self.faults, "corrupt", None)
        if corruptor is not None:
            response = corruptor(self.request_count, response)
        return response

    def _dispatch(self, request: Request) -> Response:
        rejection = self.authorize(request)
        if rejection is not None:
            return rejection
        throttled = self.throttle(request)
        if throttled is not None:
            return throttled
        for candidate in self._routes:
            extracted = candidate.match(request.method, request.path)
            if extracted is not None:
                request.path_params = extracted
                return candidate.handler(request)
        return Response.error(404, f"{self.name}: no route for "
                                   f"{request.method} {request.path}")

    def get(self, path: str, params: Optional[Dict[str, Any]] = None,
            headers: Optional[Dict[str, str]] = None) -> Response:
        """Convenience: dispatch a GET request."""
        return self.handle(Request("GET", path, params or {}, headers or {}))

    def post(self, path: str, params: Optional[Dict[str, Any]] = None,
             headers: Optional[Dict[str, str]] = None) -> Response:
        """Convenience: dispatch a POST request."""
        return self.handle(Request("POST", path, params or {}, headers or {}))


def paginate(items: List[Any], page: int, per_page: int) -> Tuple[List[Any], int]:
    """Slice ``items`` for 1-indexed ``page``; returns (slice, last_page)."""
    if page < 1:
        raise ValueError(f"page must be >= 1, got {page}")
    last_page = max(1, -(-len(items) // per_page))
    start = (page - 1) * per_page
    return items[start:start + per_page], last_page
