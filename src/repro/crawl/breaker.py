"""Per-source circuit breaker (closed / open / half-open).

A weeks-long crawl must stop hammering a source that is browning out:
after ``failure_threshold`` *consecutive* transport-level failures the
breaker opens and every caller sharing it (all logical workers of a
source) waits out a cooldown instead of burning its retry budget. The
first request after the cooldown is the half-open probe: success closes
the breaker, another failure re-opens it with a doubled (capped)
cooldown — classic exponential escalation.

The breaker is time-based on the shared :class:`~repro.util.clock.Clock`,
so under the simulated clock whole brownouts pass in microseconds while
preserving ordering.
"""

from __future__ import annotations

from typing import Optional

from repro.util.clock import Clock

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Shared failure-rate governor for one upstream source."""

    def __init__(self, clock: Clock, name: str = "source",
                 failure_threshold: int = 5,
                 cooldown_s: float = 30.0,
                 max_cooldown_s: float = 300.0):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s <= 0:
            raise ValueError("cooldown_s must be > 0")
        self.clock = clock
        self.name = name
        self.failure_threshold = failure_threshold
        self.base_cooldown_s = cooldown_s
        self.max_cooldown_s = max(cooldown_s, max_cooldown_s)
        self.state = STATE_CLOSED
        self._consecutive_failures = 0
        self._cooldown_s = cooldown_s
        self._open_until = 0.0
        self._probe_in_flight = False
        #: lifetime counters (surfaced by crawl summaries)
        self.trips = 0
        self.probes = 0

    # ----------------------------------------------------------------- flow
    def acquire(self) -> float:
        """Seconds the caller must wait before sending (0 = go now).

        When the breaker is open, the *first* caller gets the remaining
        cooldown and becomes the half-open probe — it is expected to
        sleep that long and then send the probe request. While that
        probe is in flight, every other caller keeps waiting (it gets
        the remaining cooldown too, or a short re-check interval once
        the cooldown has elapsed) instead of being released as a
        stampede of concurrent probes.
        """
        if self.state == STATE_OPEN:
            remaining = max(0.0, self._open_until - self.clock.now())
            self.state = STATE_HALF_OPEN
            self._probe_in_flight = True
            self.probes += 1
            return remaining
        if self.state == STATE_HALF_OPEN:
            if self._probe_in_flight:
                remaining = max(0.0, self._open_until - self.clock.now())
                return remaining if remaining > 0 else (
                    self.base_cooldown_s * 0.1)
            self._probe_in_flight = True
            self.probes += 1
            return 0.0
        return 0.0

    def try_acquire(self) -> bool:
        """Non-blocking acquire for callers that never sleep (the serve
        tier): True = send now, possibly as the half-open probe; False =
        still cooling down or another probe is already in flight."""
        if self.state == STATE_CLOSED:
            return True
        if self.state == STATE_OPEN:
            if self.clock.now() < self._open_until:
                return False
            self.state = STATE_HALF_OPEN
            self._probe_in_flight = True
            self.probes += 1
            return True
        # half-open: exactly one probe at a time
        if self._probe_in_flight:
            return False
        self._probe_in_flight = True
        self.probes += 1
        return True

    def record_success(self) -> None:
        if self.state == STATE_HALF_OPEN:
            self._cooldown_s = self.base_cooldown_s
        self.state = STATE_CLOSED
        self._consecutive_failures = 0
        self._probe_in_flight = False

    def record_failure(self) -> None:
        if self.state == STATE_HALF_OPEN:
            # the probe failed: re-open with an escalated cooldown
            self._cooldown_s = min(self.max_cooldown_s,
                                   self._cooldown_s * 2.0)
            self._trip()
            return
        self._consecutive_failures += 1
        if (self.state == STATE_CLOSED
                and self._consecutive_failures >= self.failure_threshold):
            self._trip()

    def _trip(self) -> None:
        self.state = STATE_OPEN
        self.trips += 1
        self._consecutive_failures = 0
        self._probe_in_flight = False
        self._open_until = self.clock.now() + self._cooldown_s

    # ------------------------------------------------------------ inspection
    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    @property
    def current_cooldown_s(self) -> float:
        return self._cooldown_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CircuitBreaker {self.name} {self.state} "
                f"failures={self._consecutive_failures} trips={self.trips}>")


def breaker_for(clock: Clock, name: str,
                failure_threshold: int = 5,
                cooldown_s: float = 30.0) -> Optional[CircuitBreaker]:
    """Convenience used by the platform wiring; returns None when
    ``failure_threshold`` is 0 (breaker disabled)."""
    if failure_threshold <= 0:
        return None
    return CircuitBreaker(clock, name=name,
                          failure_threshold=failure_threshold,
                          cooldown_s=cooldown_s)
