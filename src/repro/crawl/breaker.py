"""Per-source circuit breaker (closed / open / half-open).

A weeks-long crawl must stop hammering a source that is browning out:
after ``failure_threshold`` *consecutive* transport-level failures the
breaker opens and every caller sharing it (all logical workers of a
source) waits out a cooldown instead of burning its retry budget. The
first request after the cooldown is the half-open probe: success closes
the breaker, another failure re-opens it with a doubled (capped)
cooldown — classic exponential escalation.

The breaker is time-based on the shared :class:`~repro.util.clock.Clock`,
so under the simulated clock whole brownouts pass in microseconds while
preserving ordering.
"""

from __future__ import annotations

from typing import Optional

from repro.util.clock import Clock

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Shared failure-rate governor for one upstream source."""

    def __init__(self, clock: Clock, name: str = "source",
                 failure_threshold: int = 5,
                 cooldown_s: float = 30.0,
                 max_cooldown_s: float = 300.0):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s <= 0:
            raise ValueError("cooldown_s must be > 0")
        self.clock = clock
        self.name = name
        self.failure_threshold = failure_threshold
        self.base_cooldown_s = cooldown_s
        self.max_cooldown_s = max(cooldown_s, max_cooldown_s)
        self.state = STATE_CLOSED
        self._consecutive_failures = 0
        self._cooldown_s = cooldown_s
        self._open_until = 0.0
        #: lifetime counters (surfaced by crawl summaries)
        self.trips = 0
        self.probes = 0

    # ----------------------------------------------------------------- flow
    def acquire(self) -> float:
        """Seconds the caller must wait before sending (0 = go now).

        When the breaker is open, returns the remaining cooldown and
        moves to half-open — the caller is expected to sleep that long
        and then send the probe request.
        """
        if self.state == STATE_OPEN:
            remaining = max(0.0, self._open_until - self.clock.now())
            self.state = STATE_HALF_OPEN
            self.probes += 1
            return remaining
        return 0.0

    def record_success(self) -> None:
        if self.state == STATE_HALF_OPEN:
            self._cooldown_s = self.base_cooldown_s
        self.state = STATE_CLOSED
        self._consecutive_failures = 0

    def record_failure(self) -> None:
        if self.state == STATE_HALF_OPEN:
            # the probe failed: re-open with an escalated cooldown
            self._cooldown_s = min(self.max_cooldown_s,
                                   self._cooldown_s * 2.0)
            self._trip()
            return
        self._consecutive_failures += 1
        if (self.state == STATE_CLOSED
                and self._consecutive_failures >= self.failure_threshold):
            self._trip()

    def _trip(self) -> None:
        self.state = STATE_OPEN
        self.trips += 1
        self._consecutive_failures = 0
        self._open_until = self.clock.now() + self._cooldown_s

    # ------------------------------------------------------------ inspection
    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    @property
    def current_cooldown_s(self) -> float:
        return self._cooldown_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CircuitBreaker {self.name} {self.state} "
                f"failures={self._consecutive_failures} trips={self.trips}>")


def breaker_for(clock: Clock, name: str,
                failure_threshold: int = 5,
                cooldown_s: float = 30.0) -> Optional[CircuitBreaker]:
    """Convenience used by the platform wiring; returns None when
    ``failure_threshold`` is 0 (breaker disabled)."""
    if failure_threshold <= 0:
        return None
    return CircuitBreaker(clock, name=name,
                          failure_threshold=failure_threshold,
                          cooldown_s=cooldown_s)
