"""DFS-persisted dead-letter queue with a replay path.

When a request exhausts its retry budget the crawl must not lose the
record — the paper's multi-day crawls could not afford to restart over
one stubborn endpoint. The client parks the failed request here (one
JSON file per letter, written atomically), the crawl moves on, and
:meth:`DeadLetterQueue.replay` re-issues every parked request later —
typically after the brownout has passed — handing each recovered body
back to the caller so it can finish whatever write the failure
interrupted. A crawl whose queue drains to empty lost nothing.
"""

from __future__ import annotations

import json
import posixpath
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.dfs.filesystem import MiniDfs
from repro.util.errors import CrawlError


@dataclass
class DeadLetter:
    """One parked request plus the context needed to finish its write."""

    method: str
    path: str
    params: Dict[str, Any] = field(default_factory=dict)
    tag: Dict[str, Any] = field(default_factory=dict)
    error: str = ""
    attempts: int = 0
    #: failed :meth:`DeadLetterQueue.replay` passes this letter survived
    #: (distinct from ``attempts``, which counts the client's original
    #: in-request retries); the quarantine cap applies to this counter
    replays: int = 0

    def to_json(self) -> str:
        return json.dumps({
            "method": self.method, "path": self.path, "params": self.params,
            "tag": self.tag, "error": self.error, "attempts": self.attempts,
            "replays": self.replays,
        }, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DeadLetter":
        doc = json.loads(text)
        return cls(method=doc["method"], path=doc["path"],
                   params=dict(doc["params"]), tag=dict(doc["tag"]),
                   error=doc["error"], attempts=int(doc["attempts"]),
                   replays=int(doc.get("replays", 0)))


@dataclass
class ReplayReport:
    """Outcome of one :meth:`DeadLetterQueue.replay` pass."""

    replayed: int = 0     # letters whose request finally succeeded
    requeued: int = 0     # letters that failed again and stay parked
    quarantined: int = 0  # poison letters moved aside this pass

    @property
    def drained(self) -> bool:
        return self.requeued == 0


class DeadLetterQueue:
    """Append/replay queue of failed requests on the DFS.

    ``max_attempts`` caps how many failed replay passes one letter may
    survive; an exceeder is a *poison letter* and is moved to
    ``<root>/quarantine/`` instead of looping through every future
    replay pass forever. Quarantined letters keep their full JSON for
    post-mortem, but no longer count as pending.
    """

    def __init__(self, dfs: MiniDfs, root: str = "/crawl/deadletters",
                 max_attempts: int = 5):
        if max_attempts < 1:
            raise CrawlError("max_attempts must be >= 1")
        self.dfs = dfs
        self.root = root.rstrip("/")
        self.max_attempts = max_attempts
        self._seq = self._next_sequence()

    @property
    def quarantine_root(self) -> str:
        return f"{self.root}/quarantine"

    def _next_sequence(self) -> int:
        highest = -1
        for path in self.pending() + self.quarantined():
            stem = posixpath.basename(path)
            try:
                highest = max(highest, int(stem[len("letter-"):-len(".json")]))
            except ValueError:  # pragma: no cover - foreign file
                continue
        return highest + 1

    # --------------------------------------------------------------- appends
    def append(self, letter: DeadLetter) -> str:
        """Persist one letter atomically; returns its DFS path."""
        path = f"{self.root}/letter-{self._seq:06d}.json"
        self._seq += 1
        self.dfs.write_atomic_text(path, letter.to_json() + "\n")
        return path

    # --------------------------------------------------------------- queries
    def pending(self) -> List[str]:
        """Paths of parked letters, in enqueue order.

        Only letters directly under the queue root count; quarantined
        poison letters live one level down and stay out of the loop.
        """
        return [p for p in self.dfs.listdir(self.root)
                if posixpath.dirname(p) == self.root
                and posixpath.basename(p).startswith("letter-")
                and p.endswith(".json")]

    def quarantined(self) -> List[str]:
        """Paths of poison letters moved aside by the replay cap."""
        return [p for p in self.dfs.listdir(self.quarantine_root)
                if posixpath.basename(p).startswith("letter-")
                and p.endswith(".json")]

    def load(self, path: str) -> DeadLetter:
        return DeadLetter.from_json(self.dfs.read_text(path))

    def __len__(self) -> int:
        return len(self.pending())

    # ---------------------------------------------------------------- replay
    def replay(self, client,
               on_success: Optional[Callable[[DeadLetter, Any], None]] = None,
               ) -> ReplayReport:
        """Re-issue every parked request through ``client``.

        Letters that succeed are removed (after ``on_success`` ran, so a
        crash mid-replay re-delivers rather than drops); letters that
        fail again have their ``replays`` counter bumped (persisted, so
        the count survives restarts) and stay parked — until the counter
        reaches ``max_attempts``, at which point the letter is poison
        and moves to ``<root>/quarantine/`` instead of looping forever.
        ``client`` must not itself dead-letter into this queue, or a
        permanently broken request would loop — the client guards
        against that.
        """
        report = ReplayReport()
        for path in self.pending():
            letter = self.load(path)
            try:
                body = client.request(letter.method, letter.path,
                                      letter.params, _replaying=True)
            except CrawlError as error:
                letter.replays += 1
                letter.attempts += 1
                letter.error = str(error)
                if letter.replays >= self.max_attempts:
                    quarantine_path = posixpath.join(
                        self.quarantine_root, posixpath.basename(path))
                    self.dfs.write_atomic_text(quarantine_path,
                                               letter.to_json() + "\n")
                    self.dfs.delete(path)
                    report.quarantined += 1
                else:
                    self.dfs.write_atomic_text(path, letter.to_json() + "\n")
                    report.requeued += 1
                continue
            if on_success is not None:
                on_success(letter, body)
            self.dfs.delete(path)
            report.replayed += 1
        return report
