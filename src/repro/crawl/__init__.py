"""The crawler framework (§3 of the paper).

Layers, bottom-up:

* :class:`ApiClient` — request wrapper with retry/backoff for transient
  faults, token rotation on 401/429, and per-call statistics.
* :class:`TokenPool` — rotates access tokens and benches ones that hit a
  rate limit until their window resets (the paper's multi-app Twitter
  trick, generalized).
* :class:`BfsCrawler` — the frontier BFS over the AngelList follow graph
  that turns "~4000 currently raising startups" into the full population.
* :class:`CrunchBaseAugmenter` — one-time augmentation: linked URL first,
  unique name-search fallback second.
* :class:`FacebookCrawler` / :class:`TwitterCrawler` — per-company
  enrichment from the URLs found on AngelList profiles.
* :class:`SnapshotScheduler` — daily longitudinal capture (§7).

Everything lands in :class:`~repro.dfs.MiniDfs` JSON-lines datasets.
"""

from repro.crawl.client import ApiClient, ClientStats
from repro.crawl.tokens import TokenPool, provision_twitter_tokens
from repro.crawl.frontier import BfsCrawler, CrawlResult
from repro.crawl.augment import CrunchBaseAugmenter, AugmentResult
from repro.crawl.enrich import FacebookCrawler, TwitterCrawler, EnrichResult
from repro.crawl.snapshots import SnapshotScheduler

__all__ = [
    "ApiClient",
    "ClientStats",
    "TokenPool",
    "provision_twitter_tokens",
    "BfsCrawler",
    "CrawlResult",
    "CrunchBaseAugmenter",
    "AugmentResult",
    "FacebookCrawler",
    "TwitterCrawler",
    "EnrichResult",
    "SnapshotScheduler",
]
