"""Daily longitudinal capture of fundraising startups (§7).

Each simulated day the scheduler advances the world's dynamics, asks
AngelList which startups are currently fundraising, re-fetches their
profiles and social metrics, and appends one dataset per day:
``<root>/day=<N>/part-*.jsonl``. The longitudinal analysis joins these
panels to ask whether engagement bursts *precede* funding events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.crawl.client import ApiClient, AUTH_QUERY_ACCESS_TOKEN
from repro.crawl.enrich import TwitterCrawler, facebook_login
from repro.dfs.filesystem import MiniDfs
from repro.dfs.jsonlines import JsonLinesWriter
from repro.sources.hub import SourceHub
from repro.world.dynamics import WorldDynamics


@dataclass
class SnapshotStats:
    """One day's capture summary."""

    day: int
    tracked: int
    rounds_closed: int
    engagement_events: int


def snapshot_record(al_client: ApiClient, fb_client: ApiClient,
                    tw_client: ApiClient, sid: int,
                    day: int) -> Optional[Dict]:
    """One startup's panel row for one day (profile + social metrics).

    Shared by the batch :class:`SnapshotScheduler` and the continuous
    ingest scheduler, so both tiers land byte-identical panel records.
    """
    profile = al_client.get(f"/1/startups/{sid}", allow_not_found=True)
    if profile is None:
        return None
    record = {
        "day": day,
        "startup_id": sid,
        "currently_raising": profile["currently_raising"],
        "follower_count": profile["follower_count"],
    }
    fb_url = profile.get("facebook_url")
    if fb_url:
        slug = fb_url.rstrip("/").rsplit("/", 1)[-1]
        page = fb_client.get(f"/pg/{slug}", allow_not_found=True)
        if page is not None:
            record["fb_likes"] = page["fan_count"]
            record["fb_posts"] = page["posts_count"]
    tw_url = profile.get("twitter_url")
    if tw_url:
        name = TwitterCrawler.screen_name_from_url(tw_url)
        prof = tw_client.get("/1.1/users/show.json",
                             {"screen_name": name},
                             allow_not_found=True)
        if prof is not None:
            record["tw_statuses"] = prof["statuses_count"]
            record["tw_followers"] = prof["followers_count"]
    return record


class SnapshotScheduler:
    """Runs the daily longitudinal crawl over an evolving world."""

    def __init__(self, hub: SourceHub, dynamics: WorldDynamics, dfs: MiniDfs,
                 root: str = "/snapshots", records_per_part: int = 5000):
        self.hub = hub
        self.dynamics = dynamics
        self.dfs = dfs
        self.root = root.rstrip("/")
        self.records_per_part = records_per_part
        self.al_client = ApiClient(hub.angellist, hub.clock,
                                   token=hub.angellist.issue_token("snap"))
        self.fb_client = ApiClient(
            hub.facebook, hub.clock, auth_style=AUTH_QUERY_ACCESS_TOKEN,
            token_refresher=lambda: facebook_login(hub.facebook))
        self.tw_client = ApiClient(
            hub.twitter, hub.clock, auth_style=AUTH_QUERY_ACCESS_TOKEN,
            token=hub.twitter.register_app("snapshotter"))
        self.history: List[SnapshotStats] = []
        #: startups ever seen raising — once tracked, always re-polled, so
        #: the panel observes the funding event *after* the engagement.
        self._tracked: Dict[int, bool] = {}

    def capture_day(self) -> SnapshotStats:
        """Advance one day and write its snapshot dataset."""
        log = self.dynamics.step()
        day = self.dynamics.world.day

        for item in self.al_client.paged("/1/startups",
                                         {"filter": "raising"},
                                         items_key="startups"):
            self._tracked[int(item["id"])] = True

        with JsonLinesWriter(self.dfs, f"{self.root}/day={day}",
                             self.records_per_part) as writer:
            for sid in sorted(self._tracked):
                record = self._snapshot_record(sid, day)
                if record is not None:
                    writer.write(record)

        stats = SnapshotStats(day=day, tracked=len(self._tracked),
                              rounds_closed=log.rounds_closed,
                              engagement_events=log.engagement_events)
        self.history.append(stats)
        return stats

    def run(self, days: int) -> List[SnapshotStats]:
        return [self.capture_day() for _ in range(days)]

    def _snapshot_record(self, sid: int, day: int) -> Optional[Dict]:
        return snapshot_record(self.al_client, self.fb_client,
                               self.tw_client, sid, day)
