"""Deterministic logical worker pool for enrichment crawls.

The paper distributed the Twitter crawl over several machines so each
could burn a different token's window. Wall-clock threads would fight
over the shared simulated clock, so parallel crawling is modelled as N
logical workers whose task streams are interleaved round-robin — which
is exactly what matters for rate limits: tokens are consumed in the same
round-robin pattern a multi-machine deployment produces, and per-worker
statistics remain separable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, List, Sequence, TypeVar

T = TypeVar("T")


@dataclass
class WorkerStats:
    """Per-logical-worker task counters."""

    worker_id: int
    tasks: int = 0
    errors: int = 0


class WorkerPool(Generic[T]):
    """Distributes tasks across logical workers round-robin."""

    def __init__(self, num_workers: int):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self.stats = [WorkerStats(worker_id=i) for i in range(num_workers)]

    def map(self, tasks: Sequence[T],
            fn: Callable[[int, T], None]) -> List[WorkerStats]:
        """Run ``fn(worker_id, task)`` for every task, interleaved.

        Tasks are assigned ``task_index % num_workers`` and executed in
        round-robin order (worker 0 task, worker 1 task, ...), the
        schedule a set of equally fast machines would produce.
        """
        for index, task in enumerate(tasks):
            worker_id = index % self.num_workers
            stats = self.stats[worker_id]
            try:
                fn(worker_id, task)
                stats.tasks += 1
            except Exception:
                stats.errors += 1
                raise
        return self.stats
