"""One-time CrunchBase augmentation (§3, "CrunchBase").

For every crawled AngelList startup: if the profile links a CrunchBase
URL, fetch that organization directly; otherwise search CrunchBase by
name and accept only a *unique* match. The output dataset carries the
AngelList id on every organization record so the Spark-style merge job
can join the two sources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.crawl.client import ApiClient, ClientStats
from repro.dfs.filesystem import MiniDfs
from repro.dfs.jsonlines import JsonLinesWriter, iter_json_dataset


@dataclass
class AugmentResult:
    """How each AngelList startup was (or wasn't) matched to CrunchBase."""

    matched_by_url: int = 0
    matched_by_search: int = 0
    ambiguous: int = 0
    unmatched: int = 0
    records: int = 0
    client_stats: Optional[ClientStats] = None

    @property
    def matched(self) -> int:
        return self.matched_by_url + self.matched_by_search


class CrunchBaseAugmenter:
    """Joins crawled AngelList startups against CrunchBase."""

    def __init__(self, client: ApiClient, dfs: MiniDfs,
                 angellist_root: str = "/crawl/angellist",
                 out_dir: str = "/crawl/crunchbase/organizations",
                 records_per_part: int = 5000):
        self.client = client
        self.dfs = dfs
        self.angellist_root = angellist_root.rstrip("/")
        self.out_dir = out_dir
        self.records_per_part = records_per_part

    def run(self) -> AugmentResult:
        result = AugmentResult()
        with JsonLinesWriter(self.dfs, self.out_dir,
                             self.records_per_part) as writer:
            startups = iter_json_dataset(
                self.dfs, f"{self.angellist_root}/startups")
            for startup in startups:
                org = self._resolve(startup, result)
                if org is None:
                    continue
                org = dict(org)
                org["angellist_id"] = startup["id"]
                writer.write(org)
                result.records += 1
        result.client_stats = self.client.stats
        return result

    def _resolve(self, startup: Dict, result: AugmentResult) -> Optional[Dict]:
        url = startup.get("crunchbase_url")
        if url:
            permalink = url.rstrip("/").rsplit("/", 1)[-1]
            body = self.client.get(f"/v3/organizations/{permalink}",
                                   allow_not_found=True)
            if body is not None:
                result.matched_by_url += 1
                return body["data"]
        body = self.client.get("/v3/organizations",
                               {"name": startup.get("name", "")})
        items = body.get("items", [])
        if len(items) == 1:
            org = self.client.get(
                f"/v3/organizations/{items[0]['permalink']}",
                allow_not_found=True)
            if org is not None:
                result.matched_by_search += 1
                return org["data"]
        if len(items) > 1:
            result.ambiguous += 1
        else:
            result.unmatched += 1
        return None
