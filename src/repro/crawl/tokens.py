"""Client-side token pooling.

Twitter allows 180 calls / 15 min *per token* and five app tokens per
account; the paper worked around this by spreading tokens over machines.
:class:`TokenPool` is that strategy in one process: ``acquire`` returns a
token that is not benched, and ``bench`` parks a token until its window
resets (per the server's ``Retry-After``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.sources.twitter import TwitterServer, MAX_APPS_PER_ACCOUNT
from repro.util.clock import Clock
from repro.util.errors import CrawlError


@dataclass
class _TokenState:
    value: str
    benched_until: float = 0.0
    uses: int = 0


class TokenPool:
    """Round-robin over tokens, skipping ones benched by rate limits."""

    def __init__(self, tokens: List[str], clock: Clock):
        if not tokens:
            raise CrawlError("token pool needs at least one token")
        self._clock = clock
        self._states = [_TokenState(value=t) for t in tokens]
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._states)

    def acquire(self) -> str:
        """An available token — if all are benched, sleeps until one frees."""
        now = self._clock.now()
        for _ in range(len(self._states)):
            state = self._states[self._cursor]
            self._cursor = (self._cursor + 1) % len(self._states)
            if state.benched_until <= now:
                state.uses += 1
                return state.value
        soonest = min(s.benched_until for s in self._states)
        self._clock.sleep(max(0.0, soonest - now))
        return self.acquire()

    def bench(self, token: str, retry_after: float) -> None:
        """Park ``token`` until ``retry_after`` seconds from now."""
        until = self._clock.now() + max(0.0, retry_after)
        for state in self._states:
            if state.value == token:
                state.benched_until = max(state.benched_until, until)
                return

    def next_available_in(self) -> float:
        """Seconds until some token is usable (0 if one is free now)."""
        now = self._clock.now()
        return max(0.0, min(s.benched_until for s in self._states) - now)

    @property
    def usage(self) -> Dict[str, int]:
        return {s.value: s.uses for s in self._states}


def provision_twitter_tokens(server: TwitterServer, count: int,
                             account_prefix: str = "crawler") -> List[str]:
    """Register enough accounts/apps to obtain ``count`` Twitter tokens.

    Respects the five-apps-per-account cap by creating
    ``ceil(count / 5)`` accounts, exactly as the paper distributed app
    registrations across its crawl machines.
    """
    if count < 1:
        raise CrawlError("need at least one token")
    tokens: List[str] = []
    account_index = 0
    while len(tokens) < count:
        account = f"{account_prefix}-{account_index}"
        for _ in range(MAX_APPS_PER_ACCOUNT):
            if len(tokens) >= count:
                break
            tokens.append(server.register_app(account))
        account_index += 1
    return tokens
