"""Delta-aware maintenance of the derived follow/investment datasets.

§5.1 derives the bipartite investor graph with a full Spark merge over
every crawled record; run daily over a continuous crawl that would
re-scan an ever-growing dataset to rediscover edges it already knows.
The maintainer instead reads **only the delta parts** the source upsert
datasets gained since the last committed watermark — through the engine
(:meth:`~repro.engine.context.SparkLiteContext.json_files`, one
partition per delta) — and upserts the resulting edges into derived
upsert datasets keyed by the edge itself, so re-derived edges collapse
instead of duplicating:

* ``<root>/investment_edges`` — distinct ``(investor_id, company_id)``
  edges, the exact edge list :func:`repro.graph.build` materializes
  from scratch;
* ``<root>/follow_edges`` — distinct ``(src_user, dst_type, dst_id)``
  follow edges.

The recompute is *bounded*: each source record is scanned by the engine
at most once over the lifetime of the pipeline (when its delta first
lands), where a daily full rebuild scans the entire corpus every day —
the A8 benchmark gates on exactly this ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dfs.filesystem import MiniDfs
from repro.dfs.upsert import UpsertDataset
from repro.engine.context import SparkLiteContext
from repro.graph.bipartite import BipartiteGraph


@dataclass
class DerivedUpdate:
    """What one incremental maintenance pass did."""

    unit_id: str
    records_scanned: int = 0       # delta records the engine read
    investment_edges_landed: int = 0
    follow_edges_landed: int = 0
    #: per-source watermark after this pass (delta seq, inclusive)
    watermarks: Dict[str, int] = None


class DerivedMaintainer:
    """Incrementally maintains derived edge datasets from source deltas."""

    #: source name → (key of the derived dataset it feeds)
    INVESTMENTS = "investments"
    FOLLOWS = "follow_edges"

    def __init__(self, sc: SparkLiteContext, dfs: MiniDfs,
                 investments_src: UpsertDataset,
                 follows_src: UpsertDataset,
                 root: str = "/ingest/derived"):
        self.sc = sc
        self.dfs = dfs
        self.sources = {self.INVESTMENTS: investments_src,
                        self.FOLLOWS: follows_src}
        self.root = root.rstrip("/")
        self.investment_edges = UpsertDataset(
            dfs, f"{self.root}/investment_edges",
            key=("investor_id", "company_id"))
        self.follow_edges = UpsertDataset(
            dfs, f"{self.root}/follow_edges",
            key=("src_user", "dst_type", "dst_id"))
        #: lifetime accounting the A8 bench gates on
        self.records_scanned_total = 0
        self.passes = 0

    # -------------------------------------------------------------- planning
    def plan(self, watermarks: Optional[Dict[str, int]] = None,
             ) -> Dict[str, List[int]]:
        """Pin the delta range each source contributes to the next pass.

        Returned as ``{source: [from_exclusive, to_inclusive]}`` — this
        goes into the work unit's *intent* payload, so a redelivered
        pass re-reads exactly the same deltas even if newer ones landed
        meanwhile.
        """
        watermarks = watermarks or {}
        plan = {}
        for name, src in self.sources.items():
            low = int(watermarks.get(name, 0))
            plan[name] = [low, src.max_delta_seq()]
        return plan

    # -------------------------------------------------------------- execute
    def update(self, unit_id: str, plan: Dict[str, List[int]],
               on_delta_written=None) -> DerivedUpdate:
        """Run one maintenance pass over the planned delta ranges.

        Exactly-once by ``unit_id``: the derived datasets skip a unit
        they already absorbed, so a crash between landing and ledger
        commit redelivers harmlessly.
        """
        result = DerivedUpdate(unit_id=unit_id, watermarks={})
        invest_records: List[Dict] = []
        follow_records: List[Dict] = []
        for name, (low, high) in sorted(plan.items()):
            src = self.sources[name]
            files = [path for seq, path in src.delta_files_since(low)
                     if seq <= high]
            result.watermarks[name] = high
            if not files:
                continue
            rows = self.sc.json_files(self.dfs, files,
                                      name=f"deltas:{name}").collect()
            result.records_scanned += len(rows)
            if name == self.INVESTMENTS:
                edges = sorted({(int(r["investor_id"]),
                                 int(r["company_id"])) for r in rows})
                invest_records = [
                    {"investor_id": a, "company_id": b} for a, b in edges]
            else:
                edges = sorted({(int(r["src_user"]), str(r["dst_type"]),
                                 int(r["dst_id"])) for r in rows})
                follow_records = [
                    {"src_user": a, "dst_type": t, "dst_id": b}
                    for a, t, b in edges]
        applied = self.investment_edges.apply(
            f"{unit_id}:investments", invest_records,
            on_delta_written=on_delta_written)
        if applied.applied:
            result.investment_edges_landed = applied.records
        applied = self.follow_edges.apply(
            f"{unit_id}:follows", follow_records)
        if applied.applied:
            result.follow_edges_landed = applied.records
        self.records_scanned_total += result.records_scanned
        self.passes += 1
        return result

    # --------------------------------------------------------------- readers
    def investor_graph(self) -> BipartiteGraph:
        """The §5.1 bipartite graph, straight from the maintained edge
        list — no full merge job required."""
        edges = [(int(r["investor_id"]), int(r["company_id"]))
                 for r in self.investment_edges.read()]
        return BipartiteGraph(edges)

    def edge_counts(self) -> Tuple[int, int]:
        return (self.investment_edges.key_count(),
                self.follow_edges.key_count())
