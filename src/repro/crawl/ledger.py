"""Write-ahead ingest ledger: intent/commit records + per-unit leases.

The continuous crawl is organized as *work units* (advance the world a
day, expand a frontier slice, capture a snapshot, refresh the derived
datasets). The ledger is the only durable truth about them:

* **intent record** — appended (``write_atomic``) *before* a unit's
  side effects start; its payload pins every input the unit needs
  (frontier slice, delta range), so a redelivered unit re-executes the
  same work even though the in-memory scheduler that planned it died;
* **commit record** — appended after the unit's effects landed; its
  payload carries the results the next incarnation of the scheduler
  replays to rebuild in-memory state (tracked sets, frontier queues);
* a unit with an intent but no commit is *pending*: crashed mid-flight,
  and must be redelivered — its landing is idempotent by design;
* records carry **monotonic sequence numbers** assigned at append time
  and recovered by scanning on :meth:`open`, so replay order is total.

Leases make redelivery safe with more than one worker (or one worker
that a watchdog believes dead): a unit may only be executed under a
live lease; heartbeats extend it; an expired lease can be **reclaimed**
by a supervisor and handed to another owner with a higher *epoch* — and
a commit from the old owner is fenced off (:class:`LeaseExpired`), the
classic fencing-token protocol.

Opening a ledger also sweeps orphaned atomic-write temp files under its
root (crash between ``create`` and ``rename``), so recovery starts from
clean storage.
"""

from __future__ import annotations

import json
import posixpath
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dfs.filesystem import MiniDfs
from repro.util.clock import Clock
from repro.util.errors import IngestError, LeaseExpired

REC_INTENT = "intent"
REC_COMMIT = "commit"

STATE_PENDING = "pending"      # never seen
STATE_INTENT = "intent"        # intent appended, no commit — redeliver
STATE_COMMITTED = "committed"  # effects durable; never re-execute


@dataclass
class LedgerRecord:
    """One appended intent or commit."""

    seq: int
    type: str
    unit: str
    at: float
    payload: Dict = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps({"seq": self.seq, "type": self.type,
                           "unit": self.unit, "at": self.at,
                           "payload": self.payload}, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "LedgerRecord":
        doc = json.loads(text)
        return cls(seq=int(doc["seq"]), type=doc["type"], unit=doc["unit"],
                   at=float(doc["at"]), payload=dict(doc["payload"]))


@dataclass
class Lease:
    """Ownership of one work unit, bounded in time, fenced by epoch."""

    unit: str
    owner: str
    epoch: int
    expires_at: float

    def expired(self, now: float) -> bool:
        return now >= self.expires_at

    def to_json(self) -> str:
        return json.dumps({"unit": self.unit, "owner": self.owner,
                           "epoch": self.epoch,
                           "expires_at": self.expires_at}, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Lease":
        doc = json.loads(text)
        return cls(unit=doc["unit"], owner=doc["owner"],
                   epoch=int(doc["epoch"]),
                   expires_at=float(doc["expires_at"]))


def _lease_name(unit: str) -> str:
    # unit ids use ':'/'-' freely; only '/' would change the namespace
    return unit.replace("/", "_")


class IngestLedger:
    """The durable heart of the continuous-ingest tier."""

    def __init__(self, dfs: MiniDfs, clock: Clock,
                 root: str = "/crawl/ledger", lease_ttl_s: float = 300.0):
        if lease_ttl_s <= 0:
            raise IngestError("lease_ttl_s must be > 0")
        self.dfs = dfs
        self.clock = clock
        self.root = root.rstrip("/")
        self.lease_ttl_s = lease_ttl_s
        self._records: List[LedgerRecord] = []
        self._intents: Dict[str, LedgerRecord] = {}
        self._commits: Dict[str, LedgerRecord] = {}
        self._next_seq = 1
        self._opened = False
        #: temp files reclaimed by the crash sweep on open
        self.swept_temps = 0
        #: lifetime fencing rejections (stale-epoch commits refused)
        self.fenced_commits = 0

    # ---------------------------------------------------------------- open
    @property
    def records_root(self) -> str:
        return f"{self.root}/records"

    @property
    def leases_root(self) -> str:
        return f"{self.root}/leases"

    def open(self) -> "IngestLedger":
        """Recover ledger state from storage (crash-safe entry point)."""
        self.swept_temps = len(self.dfs.sweep_temps(self.root))
        self._records = []
        self._intents = {}
        self._commits = {}
        for path in self.dfs.listdir(self.records_root):
            if not posixpath.basename(path).startswith("rec-"):
                continue
            record = LedgerRecord.from_json(self.dfs.read_text(path))
            self._records.append(record)
        self._records.sort(key=lambda r: r.seq)
        for record in self._records:
            if record.type == REC_INTENT:
                self._intents.setdefault(record.unit, record)
            else:
                self._commits.setdefault(record.unit, record)
        self._next_seq = (self._records[-1].seq + 1 if self._records else 1)
        self._opened = True
        return self

    def _check_open(self) -> None:
        if not self._opened:
            raise IngestError("ledger must be open()ed before use")

    # -------------------------------------------------------------- records
    def _append(self, rec_type: str, unit: str,
                payload: Optional[Dict]) -> LedgerRecord:
        record = LedgerRecord(seq=self._next_seq, type=rec_type, unit=unit,
                              at=self.clock.now(),
                              payload=dict(payload or {}))
        path = f"{self.records_root}/rec-{record.seq:08d}.json"
        self.dfs.write_atomic_text(path, record.to_json() + "\n")
        self._next_seq += 1
        self._records.append(record)
        return record

    def begin(self, unit: str,
              payload: Optional[Dict] = None) -> LedgerRecord:
        """Append the intent for ``unit`` (idempotent: a redelivered
        unit gets its original intent back, payload and all — the
        inputs it pinned are the inputs the retry must use)."""
        self._check_open()
        if unit in self._commits:
            raise IngestError(f"unit {unit} already committed")
        existing = self._intents.get(unit)
        if existing is not None:
            return existing
        record = self._append(REC_INTENT, unit, payload)
        self._intents[unit] = record
        return record

    def commit(self, unit: str, payload: Optional[Dict] = None,
               owner: Optional[str] = None,
               epoch: Optional[int] = None) -> LedgerRecord:
        """Append the commit for ``unit``; idempotent per unit.

        When ``owner``/``epoch`` are given the commit is *fenced*: it is
        refused (:class:`LeaseExpired`) unless that owner still holds a
        live lease at that epoch — a worker whose lease was reclaimed
        cannot retroactively commit work the supervisor already
        redelivered.
        """
        self._check_open()
        if unit not in self._intents:
            raise IngestError(f"unit {unit} has no intent to commit")
        existing = self._commits.get(unit)
        if existing is not None:
            return existing
        if owner is not None:
            lease = self.lease_of(unit)
            if (lease is None or lease.owner != owner
                    or (epoch is not None and lease.epoch != epoch)
                    or lease.expired(self.clock.now())):
                self.fenced_commits += 1
                raise LeaseExpired(
                    f"commit of {unit} fenced: {owner} no longer holds a "
                    f"live lease")
        record = self._append(REC_COMMIT, unit, payload)
        self._commits[unit] = record
        return record

    # -------------------------------------------------------------- queries
    def state(self, unit: str) -> str:
        self._check_open()
        if unit in self._commits:
            return STATE_COMMITTED
        if unit in self._intents:
            return STATE_INTENT
        return STATE_PENDING

    def intent_of(self, unit: str) -> Optional[LedgerRecord]:
        return self._intents.get(unit)

    def commit_of(self, unit: str) -> Optional[LedgerRecord]:
        return self._commits.get(unit)

    def pending_units(self) -> List[str]:
        """Units with an intent but no commit, in intent-seq order —
        the redelivery queue after a crash."""
        self._check_open()
        return [r.unit for r in self._records
                if r.type == REC_INTENT and r.unit not in self._commits]

    def committed_records(self) -> List[LedgerRecord]:
        """Commit records in seq order — the state-replay stream."""
        self._check_open()
        return [r for r in self._records if r.type == REC_COMMIT]

    def records(self) -> List[LedgerRecord]:
        """All records in seq order (intents and commits interleaved) —
        full-fidelity replay for schedulers that track claimed inputs."""
        self._check_open()
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def max_seq(self) -> int:
        return self._next_seq - 1

    # --------------------------------------------------------------- leases
    def _lease_path(self, unit: str) -> str:
        return f"{self.leases_root}/{_lease_name(unit)}.json"

    def lease_of(self, unit: str) -> Optional[Lease]:
        path = self._lease_path(unit)
        if not self.dfs.exists(path):
            return None
        return Lease.from_json(self.dfs.read_text(path))

    def acquire_lease(self, unit: str, owner: str,
                      ttl_s: Optional[float] = None) -> Optional[Lease]:
        """Take (or re-take) the lease on ``unit`` for ``owner``.

        Returns ``None`` when a *different* owner holds a live lease —
        the unit is busy. Re-acquisition by the same owner, or takeover
        of an expired lease, succeeds with the epoch bumped, fencing
        off any straggler still working under the old epoch.
        """
        self._check_open()
        now = self.clock.now()
        existing = self.lease_of(unit)
        if (existing is not None and existing.owner != owner
                and not existing.expired(now)):
            return None
        epoch = (existing.epoch + 1) if existing is not None else 1
        lease = Lease(unit=unit, owner=owner, epoch=epoch,
                      expires_at=now + (ttl_s or self.lease_ttl_s))
        self.dfs.write_atomic_text(self._lease_path(unit),
                                   lease.to_json() + "\n")
        return lease

    def heartbeat(self, lease: Lease,
                  ttl_s: Optional[float] = None) -> Lease:
        """Extend a held lease; raises :class:`LeaseExpired` when the
        lease on storage is no longer this owner's at this epoch (it
        lapsed and was reclaimed) or has already expired."""
        self._check_open()
        now = self.clock.now()
        current = self.lease_of(lease.unit)
        if (current is None or current.owner != lease.owner
                or current.epoch != lease.epoch or current.expired(now)):
            raise LeaseExpired(
                f"lease on {lease.unit} lost by {lease.owner} "
                f"(epoch {lease.epoch})")
        renewed = Lease(unit=lease.unit, owner=lease.owner,
                        epoch=lease.epoch,
                        expires_at=now + (ttl_s or self.lease_ttl_s))
        self.dfs.write_atomic_text(self._lease_path(lease.unit),
                                   renewed.to_json() + "\n")
        return renewed

    def release(self, lease: Lease) -> bool:
        """Drop a held lease (graceful completion). A lease someone
        else reclaimed is left alone; returns whether ours was removed.
        """
        self._check_open()
        current = self.lease_of(lease.unit)
        if (current is None or current.owner != lease.owner
                or current.epoch != lease.epoch):
            return False
        self.dfs.delete(self._lease_path(lease.unit))
        return True

    def expire_lease(self, unit: str) -> None:
        """Force the lease on ``unit`` to lapse *now* (chaos injection:
        the owner's heartbeats stopped arriving)."""
        self._check_open()
        current = self.lease_of(unit)
        if current is None:
            return
        lapsed = Lease(unit=current.unit, owner=current.owner,
                       epoch=current.epoch,
                       expires_at=self.clock.now())
        self.dfs.write_atomic_text(self._lease_path(unit),
                                   lapsed.to_json() + "\n")

    def live_leases(self) -> List[Lease]:
        self._check_open()
        now = self.clock.now()
        return [l for l in self._all_leases() if not l.expired(now)]

    def expired_leases(self) -> List[Lease]:
        self._check_open()
        now = self.clock.now()
        return [l for l in self._all_leases() if l.expired(now)]

    def _all_leases(self) -> List[Lease]:
        leases = []
        for path in self.dfs.listdir(self.leases_root):
            if path.endswith(".json"):
                leases.append(Lease.from_json(self.dfs.read_text(path)))
        return leases

    def reclaim_expired(self) -> List[str]:
        """Supervisor sweep: units whose lease has lapsed and whose work
        is uncommitted — the redelivery candidates.

        The expired lease *file* deliberately stays: its epoch is the
        fencing floor, and the next :meth:`acquire_lease` takes over
        with a bumped epoch. Deleting it here would reset the epoch to 1
        and let a straggler from the dead owner slip a stale commit
        past the fence.
        """
        self._check_open()
        return sorted({l.unit for l in self.expired_leases()
                       if l.unit not in self._commits})

    def gc_leases(self) -> int:
        """Drop lease files of already-committed units.

        Their fencing duty is over — a re-commit of a committed unit
        returns the existing record before any lease check — so the
        files are garbage (typically left by a crash between commit and
        release). Returns how many were removed.
        """
        self._check_open()
        removed = 0
        for lease in self._all_leases():
            if lease.unit in self._commits:
                self.dfs.delete(self._lease_path(lease.unit))
                removed += 1
        return removed
