"""Facebook and Twitter enrichment crawls (§3).

Both crawls consume the social-media URLs found on crawled AngelList
profiles:

* **Facebook** — one long-lived token (obtained via the OAuth exchange
  dance in :func:`facebook_login`) fetches each linked page.
* **Twitter** — the username is "the string after the last '/'" of the
  profile URL (the paper's exact heuristic); a :class:`TokenPool` spread
  over logical workers dodges the 180/15-min limit.

Each writes a JSON-lines dataset keyed by ``angellist_id``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List, Optional

from repro.crawl.breaker import CircuitBreaker
from repro.crawl.client import (
    ApiClient, ClientStats, AUTH_QUERY_ACCESS_TOKEN)
from repro.crawl.deadletter import DeadLetterQueue
from repro.crawl.tokens import TokenPool, provision_twitter_tokens
from repro.crawl.workers import WorkerPool
from repro.dfs.filesystem import MiniDfs
from repro.dfs.jsonlines import JsonLinesWriter, iter_json_dataset
from repro.sources.facebook import FacebookServer
from repro.sources.twitter import TwitterServer
from repro.util.clock import Clock
from repro.util.errors import DeadLetterError


@dataclass
class EnrichResult:
    """Summary of one enrichment crawl."""

    source: str
    linked: int = 0         # startups that had a URL for this source
    fetched: int = 0        # profiles successfully downloaded
    dead_links: int = 0     # URLs that 404ed
    dead_lettered: int = 0  # requests parked in the DLQ mid-crawl
    replayed: int = 0       # parked requests later recovered by replay
    sim_duration: float = 0.0
    client_stats: Optional[ClientStats] = None


def _replay_into_dataset(client: ApiClient,
                         dead_letters: Optional[DeadLetterQueue],
                         dfs: MiniDfs, out_dir: str,
                         records_per_part: int) -> int:
    """Re-issue parked requests, appending recovered records to ``out_dir``.

    Each dead letter's ``tag`` carries the record context the failure
    interrupted (the ``angellist_id`` join key), so the recovered body
    is written exactly as the inline path would have written it. New
    records land in fresh part files after the existing ones. Returns
    how many records were recovered.

    Replay is **idempotent** on the dataset: letters whose
    ``angellist_id`` already landed in ``out_dir`` (an earlier replay
    recovered them but crashed before the queue deleted the letter, or
    the same batch is re-delivered) are acknowledged without writing a
    duplicate record.
    """
    if dead_letters is None or len(dead_letters) == 0:
        return 0
    start = len(dfs.glob_parts(out_dir))
    landed = set()
    for path in dfs.glob_parts(out_dir):
        for line in dfs.read_text(path).splitlines():
            if line:
                landed.add(json.loads(line).get("angellist_id"))
    landed.discard(None)
    recovered = 0
    with JsonLinesWriter(dfs, out_dir, records_per_part,
                         start_part_index=start) as writer:
        def on_success(letter, body) -> None:
            nonlocal recovered
            if body is None:  # pragma: no cover - dead letters aren't 404s
                return
            key = letter.tag.get("angellist_id")
            if key is not None and key in landed:
                return  # already landed: ack the letter, write nothing
            record = dict(body)
            record.update(letter.tag)
            writer.write(record)
            if key is not None:
                landed.add(key)
            recovered += 1

        dead_letters.replay(client, on_success)
    return recovered


def facebook_login(server: FacebookServer, app_id: str = "repro-app",
                   app_secret: str = "s3cret") -> str:
    """Run the short-lived → long-lived OAuth dance; returns the token."""
    short = server.post("/oauth/access_token",
                        {"app_id": app_id, "app_secret": app_secret})
    long_lived = server.get("/oauth/exchange",
                            {"fb_exchange_token":
                             short.body["access_token"]})
    return long_lived.body["access_token"]


class FacebookCrawler:
    """Fetches the Facebook page of every startup that links one."""

    def __init__(self, server: FacebookServer, clock: Clock, dfs: MiniDfs,
                 angellist_root: str = "/crawl/angellist",
                 out_dir: str = "/crawl/facebook/pages",
                 records_per_part: int = 5000,
                 max_retries: int = 5,
                 backoff_jitter: float = 0.0,
                 jitter_seed: int = 0,
                 breaker: Optional[CircuitBreaker] = None,
                 dead_letters: Optional[DeadLetterQueue] = None):
        self.server = server
        self.dfs = dfs
        self.angellist_root = angellist_root.rstrip("/")
        self.out_dir = out_dir
        self.records_per_part = records_per_part
        self.dead_letters = dead_letters
        self.client = ApiClient(
            server, clock, auth_style=AUTH_QUERY_ACCESS_TOKEN,
            token_refresher=lambda: facebook_login(server),
            max_retries=max_retries, backoff_jitter=backoff_jitter,
            jitter_seed=jitter_seed, breaker=breaker,
            dead_letters=dead_letters)

    def run(self) -> EnrichResult:
        result = EnrichResult(source="facebook")
        started = self.client.clock.now()
        with JsonLinesWriter(self.dfs, self.out_dir,
                             self.records_per_part) as writer:
            for startup in iter_json_dataset(
                    self.dfs, f"{self.angellist_root}/startups"):
                url = startup.get("facebook_url")
                if not url:
                    continue
                result.linked += 1
                slug = url.rstrip("/").rsplit("/", 1)[-1]
                try:
                    page = self.client.get(
                        f"/pg/{slug}", allow_not_found=True,
                        tag={"angellist_id": startup["id"]})
                except DeadLetterError:
                    # parked for replay; the crawl keeps moving
                    result.dead_lettered += 1
                    continue
                if page is None:
                    result.dead_links += 1
                    continue
                record = dict(page)
                record["angellist_id"] = startup["id"]
                writer.write(record)
                result.fetched += 1
        result.sim_duration = self.client.clock.now() - started
        result.client_stats = self.client.stats
        return result

    def replay(self, result: Optional[EnrichResult] = None) -> int:
        """Drain the dead-letter queue into the output dataset."""
        recovered = _replay_into_dataset(
            self.client, self.dead_letters, self.dfs, self.out_dir,
            self.records_per_part)
        if result is not None:
            result.replayed += recovered
            result.fetched += recovered
        return recovered


class TwitterCrawler:
    """Fetches Twitter profiles with a token pool over logical workers."""

    def __init__(self, server: TwitterServer, clock: Clock, dfs: MiniDfs,
                 angellist_root: str = "/crawl/angellist",
                 out_dir: str = "/crawl/twitter/profiles",
                 num_tokens: int = 10,
                 num_workers: int = 5,
                 records_per_part: int = 5000,
                 tokens: Optional[List[str]] = None,
                 max_retries: int = 5,
                 backoff_jitter: float = 0.0,
                 jitter_seed: int = 0,
                 breaker: Optional[CircuitBreaker] = None,
                 dead_letters: Optional[DeadLetterQueue] = None):
        self.server = server
        self.dfs = dfs
        self.angellist_root = angellist_root.rstrip("/")
        self.out_dir = out_dir
        self.num_workers = num_workers
        self.records_per_part = records_per_part
        self.dead_letters = dead_letters
        tokens = tokens or provision_twitter_tokens(server, num_tokens)
        self.pool = TokenPool(tokens, clock)
        self.client = ApiClient(server, clock,
                                auth_style=AUTH_QUERY_ACCESS_TOKEN,
                                token_pool=self.pool,
                                max_retries=max_retries,
                                backoff_jitter=backoff_jitter,
                                jitter_seed=jitter_seed,
                                breaker=breaker,
                                dead_letters=dead_letters)

    @staticmethod
    def screen_name_from_url(url: str) -> str:
        """The paper's heuristic: the string after the last '/'."""
        return url.rstrip("/").rsplit("/", 1)[-1]

    def run(self) -> EnrichResult:
        result = EnrichResult(source="twitter")
        started = self.client.clock.now()
        targets = []
        for startup in iter_json_dataset(
                self.dfs, f"{self.angellist_root}/startups"):
            url = startup.get("twitter_url")
            if url:
                targets.append((startup["id"],
                                self.screen_name_from_url(url)))
        result.linked = len(targets)

        writer = JsonLinesWriter(self.dfs, self.out_dir,
                                 self.records_per_part)
        pool = WorkerPool(self.num_workers)

        def fetch(_worker_id: int, target) -> None:
            angellist_id, screen_name = target
            try:
                profile = self.client.get(
                    "/1.1/users/show.json",
                    {"screen_name": screen_name},
                    allow_not_found=True,
                    tag={"angellist_id": angellist_id})
            except DeadLetterError:
                result.dead_lettered += 1
                return
            if profile is None:
                result.dead_links += 1
                return
            record = dict(profile)
            record["angellist_id"] = angellist_id
            writer.write(record)
            result.fetched += 1

        pool.map(targets, fetch)
        writer.close()
        result.sim_duration = self.client.clock.now() - started
        result.client_stats = self.client.stats
        return result

    def replay(self, result: Optional[EnrichResult] = None) -> int:
        """Drain the dead-letter queue into the output dataset."""
        recovered = _replay_into_dataset(
            self.client, self.dead_letters, self.dfs, self.out_dir,
            self.records_per_part)
        if result is not None:
            result.replayed += recovered
            result.fetched += recovered
        return recovered
