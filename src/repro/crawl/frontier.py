"""BFS frontier crawl over the AngelList graph (§3, "AngelList").

The public listing endpoint only exposes currently fundraising startups,
so the crawler expands from them exactly as the paper describes: collect
followers of frontier startups; then everything those users follow
(startups and users) plus their investments; newly discovered entities
form the next frontier; repeat until no new entities appear.

Outputs (JSON-lines datasets on the DFS):

* ``<root>/startups``      — full AngelList startup profiles
* ``<root>/users``         — user profiles with roles
* ``<root>/follow_edges``  — ``{src_user, dst_type, dst_id}``
* ``<root>/investments``   — ``{investor_id, company_id}`` edges

Checkpointing: with ``checkpoint=True`` the crawler writes its state
(seen sets, frontiers, counters) to ``<root>/checkpoint/state.json``
after every completed round, and ``run(resume=True)`` continues a crawl
that died mid-flight — a multi-day crawl of a rate-limited API needs to
survive restarts. Granularity is one round: a crash loses at most the
round in progress.
"""

from __future__ import annotations

import json
import posixpath
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.crawl.client import ApiClient, ClientStats
from repro.dfs.filesystem import MiniDfs
from repro.dfs.jsonlines import JsonLinesWriter
from repro.util.errors import CrawlError


@dataclass
class RoundStats:
    """Entities discovered in one BFS round."""

    round_index: int
    new_startups: int = 0
    new_users: int = 0

    @property
    def total(self) -> int:
        return self.new_startups + self.new_users


@dataclass
class CrawlResult:
    """Summary of a completed BFS crawl."""

    startups: int
    users: int
    follow_edges: int
    investment_edges: int
    rounds: List[RoundStats]
    client_stats: ClientStats
    sim_duration: float
    resumed: bool = False

    @property
    def requests_per_sim_hour(self) -> float:
        hours = self.sim_duration / 3600.0
        return self.client_stats.requests / hours if hours > 0 else 0.0


class _CrawlState:
    """Mutable crawl progress, serializable for checkpoints."""

    def __init__(self):
        self.seen_startups: Set[int] = set()
        self.seen_users: Set[int] = set()
        self.frontier_startups: List[int] = []
        self.frontier_users: List[int] = []
        self.round_index = 0
        self.follow_edges = 0
        self.investment_edges = 0
        self.rounds: List[RoundStats] = []
        self.startup_records = 0
        self.user_records = 0
        self.part_indices: Dict[str, int] = {}

    def to_json(self) -> Dict:
        return {
            "seen_startups": sorted(self.seen_startups),
            "seen_users": sorted(self.seen_users),
            "frontier_startups": self.frontier_startups,
            "frontier_users": self.frontier_users,
            "round_index": self.round_index,
            "follow_edges": self.follow_edges,
            "investment_edges": self.investment_edges,
            "rounds": [{"round_index": r.round_index,
                        "new_startups": r.new_startups,
                        "new_users": r.new_users} for r in self.rounds],
            "startup_records": self.startup_records,
            "user_records": self.user_records,
            "part_indices": self.part_indices,
        }

    @classmethod
    def from_json(cls, doc: Dict) -> "_CrawlState":
        state = cls()
        state.seen_startups = set(doc["seen_startups"])
        state.seen_users = set(doc["seen_users"])
        state.frontier_startups = list(doc["frontier_startups"])
        state.frontier_users = list(doc["frontier_users"])
        state.round_index = doc["round_index"]
        state.follow_edges = doc["follow_edges"]
        state.investment_edges = doc["investment_edges"]
        state.rounds = [RoundStats(**r) for r in doc["rounds"]]
        state.startup_records = doc["startup_records"]
        state.user_records = doc["user_records"]
        state.part_indices = dict(doc["part_indices"])
        return state


class BfsCrawler:
    """Frontier BFS over AngelList into DFS datasets."""

    def __init__(self, client: ApiClient, dfs: MiniDfs,
                 root: str = "/crawl/angellist",
                 records_per_part: int = 5000,
                 max_rounds: Optional[int] = None,
                 max_entities: Optional[int] = None,
                 checkpoint: bool = False):
        self.client = client
        self.dfs = dfs
        self.root = root.rstrip("/")
        self.records_per_part = records_per_part
        self.max_rounds = max_rounds
        self.max_entities = max_entities
        self.checkpoint = checkpoint

    @property
    def checkpoint_path(self) -> str:
        return f"{self.root}/checkpoint/state.json"

    def has_checkpoint(self) -> bool:
        return self.dfs.exists(self.checkpoint_path)

    # ---------------------------------------------------------------- run
    def run(self, resume: bool = False) -> CrawlResult:
        """Execute (or resume) the crawl; returns summary statistics."""
        client = self.client
        started_at = client.clock.now()

        resumed = False
        if resume:
            if not self.has_checkpoint():
                raise CrawlError(f"no checkpoint at {self.checkpoint_path}")
            state = _CrawlState.from_json(
                json.loads(self.dfs.read_text(self.checkpoint_path)))
            self._drop_uncheckpointed_parts(state)
            resumed = True
        else:
            state = _CrawlState()

        writers = {
            "startups": JsonLinesWriter(
                self.dfs, f"{self.root}/startups", self.records_per_part,
                start_part_index=state.part_indices.get("startups", 0)),
            "users": JsonLinesWriter(
                self.dfs, f"{self.root}/users", self.records_per_part,
                start_part_index=state.part_indices.get("users", 0)),
            "follow_edges": JsonLinesWriter(
                self.dfs, f"{self.root}/follow_edges",
                self.records_per_part,
                start_part_index=state.part_indices.get("follow_edges", 0)),
            "investments": JsonLinesWriter(
                self.dfs, f"{self.root}/investments", self.records_per_part,
                start_part_index=state.part_indices.get("investments", 0)),
        }

        if not resumed:
            self._seed_frontier(state)

        while ((state.frontier_startups or state.frontier_users)
               and self._budget_left(state)):
            state.round_index += 1
            if (self.max_rounds is not None
                    and state.round_index > self.max_rounds):
                state.round_index -= 1
                break
            self._run_round(state, writers)
            if self.checkpoint:
                self._write_checkpoint(state, writers)

        interrupted = bool(state.frontier_startups or state.frontier_users)
        if interrupted and self.checkpoint:
            # Leave the frontier in the checkpoint so run(resume=True)
            # picks up exactly where the budget cut us off.
            pass
        else:
            # Profile any startups/users discovered but not yet fetched.
            for sid in state.frontier_startups:
                writers["startups"].write(client.get(f"/1/startups/{sid}"))
                state.startup_records += 1
            for uid in state.frontier_users:
                writers["users"].write(client.get(f"/1/users/{uid}"))
                state.user_records += 1
            state.frontier_startups = []
            state.frontier_users = []

        for writer in writers.values():
            writer.close()
        if self.checkpoint:
            self._write_checkpoint(state, writers, closed=True)

        return CrawlResult(
            startups=state.startup_records,
            users=state.user_records,
            follow_edges=state.follow_edges,
            investment_edges=state.investment_edges,
            rounds=state.rounds,
            client_stats=client.stats,
            sim_duration=client.clock.now() - started_at,
            resumed=resumed,
        )

    # ------------------------------------------------------------ internals
    def _budget_left(self, state: _CrawlState) -> bool:
        if self.max_entities is None:
            return True
        return (len(state.seen_startups) + len(state.seen_users)
                < self.max_entities)

    def _seed_frontier(self, state: _CrawlState) -> None:
        """Round 0: the only listable startups are those raising."""
        for item in self.client.paged("/1/startups", {"filter": "raising"},
                                      items_key="startups"):
            sid = int(item["id"])
            if sid not in state.seen_startups:
                state.seen_startups.add(sid)
                state.frontier_startups.append(sid)
        state.rounds.append(RoundStats(
            round_index=0, new_startups=len(state.frontier_startups)))

    def _run_round(self, state: _CrawlState,
                   writers: Dict[str, JsonLinesWriter]) -> None:
        client = self.client
        stats = RoundStats(round_index=state.round_index)
        next_users: List[int] = []
        next_startups: List[int] = []

        for sid in state.frontier_startups:
            if not self._budget_left(state):
                break
            writers["startups"].write(client.get(f"/1/startups/{sid}"))
            state.startup_records += 1
            for follower in client.paged(f"/1/startups/{sid}/followers",
                                         items_key="users"):
                uid = int(follower["id"])
                if uid not in state.seen_users:
                    state.seen_users.add(uid)
                    next_users.append(uid)
                    stats.new_users += 1

        for uid in state.frontier_users:
            if not self._budget_left(state):
                break
            writers["users"].write(client.get(f"/1/users/{uid}"))
            state.user_records += 1
            for item in client.paged(f"/1/users/{uid}/following",
                                     {"type": "startup"}):
                cid = int(item["id"])
                writers["follow_edges"].write(
                    {"src_user": uid, "dst_type": "startup", "dst_id": cid})
                state.follow_edges += 1
                if cid not in state.seen_startups:
                    state.seen_startups.add(cid)
                    next_startups.append(cid)
                    stats.new_startups += 1
            for item in client.paged(f"/1/users/{uid}/following",
                                     {"type": "user"}):
                fid = int(item["id"])
                writers["follow_edges"].write(
                    {"src_user": uid, "dst_type": "user", "dst_id": fid})
                state.follow_edges += 1
                if fid not in state.seen_users:
                    state.seen_users.add(fid)
                    next_users.append(fid)
                    stats.new_users += 1
            for item in client.paged(f"/1/users/{uid}/investments",
                                     items_key="investments"):
                cid = int(item["startup_id"])
                writers["investments"].write(
                    {"investor_id": uid, "company_id": cid})
                state.investment_edges += 1
                if cid not in state.seen_startups:
                    state.seen_startups.add(cid)
                    next_startups.append(cid)
                    stats.new_startups += 1

        state.frontier_startups = next_startups
        state.frontier_users = next_users
        state.rounds.append(stats)

    def _write_checkpoint(self, state: _CrawlState,
                          writers: Dict[str, JsonLinesWriter],
                          closed: bool = False) -> None:
        if not closed:
            for writer in writers.values():
                writer.flush()
        state.part_indices = {name: writer.next_part_index
                              for name, writer in writers.items()}
        # temp-write + rename: a crash mid-checkpoint leaves the previous
        # state.json intact instead of a deleted or torn one.
        self.dfs.write_atomic_text(self.checkpoint_path,
                                   json.dumps(state.to_json()))

    def _drop_uncheckpointed_parts(self, state: _CrawlState) -> None:
        """Delete part files written after the checkpoint we resume from.

        A crash mid-round can leave parts flushed past the last durable
        ``part_indices``; resuming would re-emit those records under the
        same indices, so the stale files must go first.
        """
        for name in ("startups", "users", "follow_edges", "investments"):
            keep = state.part_indices.get(name, 0)
            for path in self.dfs.glob_parts(f"{self.root}/{name}"):
                base = posixpath.basename(path)
                index = int(base[len("part-"):-len(".jsonl")])
                if index >= keep:
                    self.dfs.delete(path)
