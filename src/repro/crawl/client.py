"""Resilient API client: retries, backoff, token rotation, statistics.

The client is the one place that knows how to survive the simulated
network: transient 5xx → exponential backoff; 429 → bench the token and
rotate to another (or sleep out the window); 401 → ask the token
refresher for a new credential. Every outcome is counted so crawl
benchmarks can report throughput and retry overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.crawl.tokens import TokenPool
from repro.net.http import Response, SimServer
from repro.util.clock import Clock
from repro.util.errors import AuthError, CrawlError, NotFoundError

#: attribute of the request the credential rides in, per source style.
AUTH_BEARER = "bearer"          # Authorization: Bearer <token> (AngelList)
AUTH_QUERY_ACCESS_TOKEN = "access_token"  # ?access_token= (Facebook, Twitter)
AUTH_QUERY_USER_KEY = "user_key"          # ?user_key= (CrunchBase)


@dataclass
class ClientStats:
    """Counters for one client instance."""

    requests: int = 0
    successes: int = 0
    retries: int = 0
    throttled: int = 0
    auth_refreshes: int = 0
    not_found: int = 0
    failures: int = 0
    slept_seconds: float = 0.0

    def merge(self, other: "ClientStats") -> "ClientStats":
        return ClientStats(
            requests=self.requests + other.requests,
            successes=self.successes + other.successes,
            retries=self.retries + other.retries,
            throttled=self.throttled + other.throttled,
            auth_refreshes=self.auth_refreshes + other.auth_refreshes,
            not_found=self.not_found + other.not_found,
            failures=self.failures + other.failures,
            slept_seconds=self.slept_seconds + other.slept_seconds,
        )


class ApiClient:
    """Wraps one simulated server with retry/rotate/refresh behaviour.

    Args:
        server: the simulated API.
        clock: shared simulated clock (used for backoff sleeps).
        auth_style: where the credential goes (see module constants).
        token_pool: pool to rotate through on 429s; mutually exclusive
            with ``token``.
        token: a single fixed credential.
        token_refresher: zero-arg callable returning a fresh credential,
            invoked on 401 (e.g. re-run the Facebook OAuth dance).
        max_retries: transient-failure budget per logical request.
    """

    def __init__(self, server: SimServer, clock: Clock,
                 auth_style: str = AUTH_BEARER,
                 token_pool: Optional[TokenPool] = None,
                 token: Optional[str] = None,
                 token_refresher: Optional[Callable[[], str]] = None,
                 max_retries: int = 5,
                 backoff_base: float = 0.5):
        if token_pool is not None and token is not None:
            raise CrawlError("pass either token_pool or token, not both")
        if token_pool is None and token is None and token_refresher is None:
            raise CrawlError("client needs a credential source")
        self.server = server
        self.clock = clock
        self.auth_style = auth_style
        self.token_pool = token_pool
        self._token = token
        self.token_refresher = token_refresher
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.stats = ClientStats()
        if self._token is None and token_refresher is not None and token_pool is None:
            self._token = token_refresher()

    # -------------------------------------------------------------- internals
    def _credential(self) -> str:
        if self.token_pool is not None:
            return self.token_pool.acquire()
        if self._token is None:
            raise AuthError("client has no credential")
        return self._token

    def _send(self, method: str, path: str, params: Dict[str, Any],
              credential: str) -> Response:
        params = dict(params)
        headers: Dict[str, str] = {}
        if self.auth_style == AUTH_BEARER:
            headers["Authorization"] = f"Bearer {credential}"
        elif self.auth_style == AUTH_QUERY_ACCESS_TOKEN:
            params["access_token"] = credential
        elif self.auth_style == AUTH_QUERY_USER_KEY:
            params["user_key"] = credential
        else:
            raise CrawlError(f"unknown auth style {self.auth_style!r}")
        if method == "GET":
            return self.server.get(path, params, headers)
        if method == "POST":
            return self.server.post(path, params, headers)
        raise CrawlError(f"unsupported method {method!r}")

    def _sleep(self, seconds: float) -> None:
        self.stats.slept_seconds += seconds
        self.clock.sleep(seconds)

    # ------------------------------------------------------------------- api
    def request(self, method: str, path: str,
                params: Optional[Dict[str, Any]] = None,
                allow_not_found: bool = False) -> Optional[Any]:
        """Issue a request, surviving 5xx/429/401 within the retry budget.

        Returns the decoded JSON body; ``None`` for a 404 when
        ``allow_not_found`` (enrichment crawls tolerate dead links).
        """
        params = params or {}
        transient_left = self.max_retries
        auth_left = 2
        attempt = 0
        while True:
            attempt += 1
            credential = self._credential()
            self.stats.requests += 1
            response = self._send(method, path, params, credential)
            if response.ok:
                self.stats.successes += 1
                return response.body
            if response.status == 404:
                self.stats.not_found += 1
                if allow_not_found:
                    return None
                raise NotFoundError(f"{self.server.name}: {path} not found")
            if response.status == 429:
                self.stats.throttled += 1
                retry_after = float(response.headers.get("Retry-After", "1"))
                if self.token_pool is not None:
                    self.token_pool.bench(credential, retry_after)
                    wait = self.token_pool.next_available_in()
                    if wait > 0:
                        self._sleep(wait)
                else:
                    self._sleep(retry_after)
                continue
            if response.status == 401:
                if self.token_refresher is not None and auth_left > 0:
                    auth_left -= 1
                    self.stats.auth_refreshes += 1
                    self._token = self.token_refresher()
                    continue
                self.stats.failures += 1
                raise AuthError(f"{self.server.name}: unauthorized at {path}")
            if 500 <= response.status < 600:
                if transient_left > 0:
                    transient_left -= 1
                    self.stats.retries += 1
                    backoff = self.backoff_base * (
                        2 ** (self.max_retries - transient_left - 1))
                    self._sleep(backoff)
                    continue
                self.stats.failures += 1
                raise CrawlError(
                    f"{self.server.name}: {path} failed after "
                    f"{self.max_retries} retries "
                    f"({response.status}: {response.body})")
            self.stats.failures += 1
            raise CrawlError(f"{self.server.name}: unexpected status "
                             f"{response.status} for {path}: {response.body}")

    def get(self, path: str, params: Optional[Dict[str, Any]] = None,
            allow_not_found: bool = False) -> Optional[Any]:
        return self.request("GET", path, params, allow_not_found)

    def paged(self, path: str, params: Optional[Dict[str, Any]] = None,
              items_key: str = "items"):
        """Iterate a paginated endpoint, yielding items across pages."""
        params = dict(params or {})
        page = 1
        while True:
            params["page"] = page
            body = self.get(path, params)
            items = body.get(items_key, [])
            for item in items:
                yield item
            last = int(body.get("last_page", page))
            if page >= last:
                return
            page += 1
