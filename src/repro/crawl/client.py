"""Resilient API client: retries, backoff, token rotation, statistics.

The client is the one place that knows how to survive the simulated
network: transient 5xx (including connection resets and client-side
timeouts) → jittered exponential backoff; a 503 carrying ``Retry-After``
→ honor the server's own estimate instead of guessing; truncated JSON
payload → re-request; 429 → bench the token and rotate to another (or
sleep out the window); 401 → ask the token refresher for a new
credential. A shared per-source circuit breaker stops every worker from
hammering a source that is browning out, and an optional dead-letter
queue parks requests that exhaust their budget so the crawl loses
nothing. Every outcome is counted so crawl benchmarks can report
throughput and retry overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.crawl.breaker import CircuitBreaker
from repro.crawl.deadletter import DeadLetter, DeadLetterQueue
from repro.crawl.tokens import TokenPool
from repro.net.http import (CorruptPayload, Response, SimServer,
                            STATUS_RESET, STATUS_TIMEOUT, TIMEOUT_HEADER)
from repro.util.clock import Clock
from repro.util.errors import (AuthError, CrawlError, DeadLetterError,
                               NotFoundError)
from repro.util.rng import derive_seed

#: attribute of the request the credential rides in, per source style.
AUTH_BEARER = "bearer"          # Authorization: Bearer <token> (AngelList)
AUTH_QUERY_ACCESS_TOKEN = "access_token"  # ?access_token= (Facebook, Twitter)
AUTH_QUERY_USER_KEY = "user_key"          # ?user_key= (CrunchBase)


@dataclass
class ClientStats:
    """Counters for one client instance."""

    requests: int = 0
    successes: int = 0
    retries: int = 0
    throttled: int = 0
    auth_refreshes: int = 0
    not_found: int = 0
    failures: int = 0
    slept_seconds: float = 0.0
    timeouts: int = 0            # 599s: the server hung past our budget
    resets: int = 0              # 598s: connection reset mid-exchange
    corrupt_payloads: int = 0    # 200s whose JSON body arrived truncated
    retry_after_waits: int = 0   # 503s whose Retry-After we honored
    breaker_waits: int = 0       # sends delayed by an open circuit breaker
    dead_lettered: int = 0       # requests parked for replay

    def merge(self, other: "ClientStats") -> "ClientStats":
        return ClientStats(
            requests=self.requests + other.requests,
            successes=self.successes + other.successes,
            retries=self.retries + other.retries,
            throttled=self.throttled + other.throttled,
            auth_refreshes=self.auth_refreshes + other.auth_refreshes,
            not_found=self.not_found + other.not_found,
            failures=self.failures + other.failures,
            slept_seconds=self.slept_seconds + other.slept_seconds,
            timeouts=self.timeouts + other.timeouts,
            resets=self.resets + other.resets,
            corrupt_payloads=self.corrupt_payloads + other.corrupt_payloads,
            retry_after_waits=self.retry_after_waits + other.retry_after_waits,
            breaker_waits=self.breaker_waits + other.breaker_waits,
            dead_lettered=self.dead_lettered + other.dead_lettered,
        )


class ApiClient:
    """Wraps one simulated server with retry/rotate/refresh behaviour.

    Args:
        server: the simulated API.
        clock: shared simulated clock (used for backoff sleeps).
        auth_style: where the credential goes (see module constants).
        token_pool: pool to rotate through on 429s; mutually exclusive
            with ``token``.
        token: a single fixed credential.
        token_refresher: zero-arg callable returning a fresh credential,
            invoked on 401 (e.g. re-run the Facebook OAuth dance).
        max_retries: transient-failure budget per logical request.
        backoff_base: first backoff sleep in seconds; doubles per retry.
        backoff_jitter: fraction of deterministic jitter added to each
            backoff (0.25 → up to +25%), so concurrent workers sharing a
            source don't retry in lockstep. 0 disables jitter.
        jitter_seed: seed of the jitter stream — give each worker its
            own to decorrelate their schedules deterministically.
        request_timeout_s: per-request time budget, advertised to the
            server via the ``X-Timeout-S`` header; a hang fault costs at
            most this much simulated time before surfacing as a 599.
        breaker: optional :class:`CircuitBreaker`, typically shared by
            every client/worker of one source.
        dead_letters: optional :class:`DeadLetterQueue`; when set, a
            request that exhausts ``max_retries`` is parked there (and
            :class:`DeadLetterError` raised) instead of failing the
            crawl outright.
    """

    def __init__(self, server: SimServer, clock: Clock,
                 auth_style: str = AUTH_BEARER,
                 token_pool: Optional[TokenPool] = None,
                 token: Optional[str] = None,
                 token_refresher: Optional[Callable[[], str]] = None,
                 max_retries: int = 5,
                 backoff_base: float = 0.5,
                 backoff_jitter: float = 0.0,
                 jitter_seed: int = 0,
                 request_timeout_s: float = 30.0,
                 breaker: Optional[CircuitBreaker] = None,
                 dead_letters: Optional[DeadLetterQueue] = None):
        if token_pool is not None and token is not None:
            raise CrawlError("pass either token_pool or token, not both")
        if token_pool is None and token is None and token_refresher is None:
            raise CrawlError("client needs a credential source")
        if not 0.0 <= backoff_jitter <= 1.0:
            raise CrawlError(f"backoff_jitter must be in [0, 1], "
                             f"got {backoff_jitter}")
        self.server = server
        self.clock = clock
        self.auth_style = auth_style
        self.token_pool = token_pool
        self._token = token
        self.token_refresher = token_refresher
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_jitter = backoff_jitter
        self.jitter_seed = jitter_seed
        self.request_timeout_s = request_timeout_s
        self.breaker = breaker
        self.dead_letters = dead_letters
        self.stats = ClientStats()
        if self._token is None and token_refresher is not None and token_pool is None:
            self._token = token_refresher()

    # -------------------------------------------------------------- internals
    def _credential(self) -> str:
        if self.token_pool is not None:
            return self.token_pool.acquire()
        if self._token is None:
            raise AuthError("client has no credential")
        return self._token

    def _send(self, method: str, path: str, params: Dict[str, Any],
              credential: str) -> Response:
        params = dict(params)
        headers: Dict[str, str] = {
            TIMEOUT_HEADER: f"{self.request_timeout_s:.3f}"}
        if self.auth_style == AUTH_BEARER:
            headers["Authorization"] = f"Bearer {credential}"
        elif self.auth_style == AUTH_QUERY_ACCESS_TOKEN:
            params["access_token"] = credential
        elif self.auth_style == AUTH_QUERY_USER_KEY:
            params["user_key"] = credential
        else:
            raise CrawlError(f"unknown auth style {self.auth_style!r}")
        if method == "GET":
            return self.server.get(path, params, headers)
        if method == "POST":
            return self.server.post(path, params, headers)
        raise CrawlError(f"unsupported method {method!r}")

    def _sleep(self, seconds: float) -> None:
        self.stats.slept_seconds += seconds
        self.clock.sleep(seconds)

    def _backoff(self, path: str, retry_index: int) -> float:
        """Exponential backoff with deterministic jitter.

        ``retry_index`` is 0 for the first retry of a logical request.
        The jitter fraction is a pure function of (seed, path, retry
        index, lifetime request count), so a fixed seed reproduces the
        exact sleep schedule while distinct seeds decorrelate workers.
        """
        backoff = self.backoff_base * (2 ** retry_index)
        if self.backoff_jitter > 0.0:
            label = f"{path}:{retry_index}:{self.stats.requests}"
            fraction = (derive_seed(self.jitter_seed, label)
                        % 100_000) / 100_000
            backoff *= 1.0 + self.backoff_jitter * fraction
        return backoff

    def _transient_failure(self) -> None:
        if self.breaker is not None:
            self.breaker.record_failure()

    def _dead_letter_or_raise(self, method: str, path: str,
                              params: Dict[str, Any], tag: Dict[str, Any],
                              attempts: int, error: CrawlError,
                              replaying: bool):
        self.stats.failures += 1
        if self.dead_letters is None or replaying:
            raise error
        letter_path = self.dead_letters.append(DeadLetter(
            method=method, path=path, params=dict(params), tag=dict(tag),
            error=str(error), attempts=attempts))
        self.stats.dead_lettered += 1
        raise DeadLetterError(
            f"{self.server.name}: {path} dead-lettered after {attempts} "
            f"attempts ({error})", letter_path=letter_path)

    # ------------------------------------------------------------------- api
    def request(self, method: str, path: str,
                params: Optional[Dict[str, Any]] = None,
                allow_not_found: bool = False,
                tag: Optional[Dict[str, Any]] = None,
                _replaying: bool = False) -> Optional[Any]:
        """Issue a request, surviving 5xx/429/401 within the retry budget.

        Returns the decoded JSON body; ``None`` for a 404 when
        ``allow_not_found`` (enrichment crawls tolerate dead links).
        ``tag`` is carried on the dead letter when the budget runs out,
        so replay knows what write the failure interrupted.
        """
        params = params or {}
        tag = tag or {}
        transient_left = self.max_retries
        auth_left = 2
        attempt = 0
        while True:
            attempt += 1
            if self.breaker is not None:
                wait = self.breaker.acquire()
                if wait > 0:
                    self.stats.breaker_waits += 1
                    self._sleep(wait)
            credential = self._credential()
            self.stats.requests += 1
            response = self._send(method, path, params, credential)
            if response.ok:
                if isinstance(response.body, CorruptPayload):
                    # truncated JSON: the transfer failed, not the server
                    self.stats.corrupt_payloads += 1
                    self._transient_failure()
                    if transient_left > 0:
                        retry_index = self.max_retries - transient_left
                        transient_left -= 1
                        self.stats.retries += 1
                        self._sleep(self._backoff(path, retry_index))
                        continue
                    self._dead_letter_or_raise(
                        method, path, params, tag, attempt,
                        CrawlError(f"{self.server.name}: {path} kept "
                                   f"returning corrupt payloads"),
                        _replaying)
                if self.breaker is not None:
                    self.breaker.record_success()
                self.stats.successes += 1
                return response.body
            if response.status == 404:
                self.stats.not_found += 1
                if allow_not_found:
                    return None
                raise NotFoundError(f"{self.server.name}: {path} not found")
            if response.status == 429:
                self.stats.throttled += 1
                retry_after = float(response.headers.get("Retry-After", "1"))
                if self.token_pool is not None:
                    self.token_pool.bench(credential, retry_after)
                    wait = self.token_pool.next_available_in()
                    if wait > 0:
                        self._sleep(wait)
                else:
                    self._sleep(retry_after)
                continue
            if response.status == 401:
                if self.token_refresher is not None and auth_left > 0:
                    auth_left -= 1
                    self.stats.auth_refreshes += 1
                    self._token = self.token_refresher()
                    continue
                self.stats.failures += 1
                raise AuthError(f"{self.server.name}: unauthorized at {path}")
            if 500 <= response.status < 600:
                if response.status == STATUS_TIMEOUT:
                    self.stats.timeouts += 1
                elif response.status == STATUS_RESET:
                    self.stats.resets += 1
                self._transient_failure()
                if transient_left > 0:
                    retry_index = self.max_retries - transient_left
                    transient_left -= 1
                    self.stats.retries += 1
                    retry_after = response.headers.get("Retry-After")
                    if response.status == 503 and retry_after is not None:
                        # the server told us when it will recover: honor
                        # that instead of guessing with backoff
                        self.stats.retry_after_waits += 1
                        self._sleep(float(retry_after))
                    else:
                        self._sleep(self._backoff(path, retry_index))
                    continue
                self._dead_letter_or_raise(
                    method, path, params, tag, attempt,
                    CrawlError(f"{self.server.name}: {path} failed after "
                               f"{self.max_retries} retries "
                               f"({response.status}: {response.body})"),
                    _replaying)
            self.stats.failures += 1
            raise CrawlError(f"{self.server.name}: unexpected status "
                             f"{response.status} for {path}: {response.body}")

    def get(self, path: str, params: Optional[Dict[str, Any]] = None,
            allow_not_found: bool = False,
            tag: Optional[Dict[str, Any]] = None) -> Optional[Any]:
        return self.request("GET", path, params, allow_not_found, tag=tag)

    def paged(self, path: str, params: Optional[Dict[str, Any]] = None,
              items_key: str = "items"):
        """Iterate a paginated endpoint, yielding items across pages."""
        params = dict(params or {})
        page = 1
        while True:
            params["page"] = page
            body = self.get(path, params)
            items = body.get(items_key, [])
            for item in items:
                yield item
            last = int(body.get("last_page", page))
            if page >= last:
                return
            page += 1
