"""Beat-style continuous scheduler: the supervised ingest service.

Converts the run-to-completion pipeline into a *continuous* one: every
beat (a simulated-clock tick) advances the world one day and drives a
fixed cadence of ledger-framed, idempotent work units through the
crawl → landing → derived-dataset pipeline:

``advance``   step the world's dynamics one day (idempotent via the
              world's own day counter);
``discover``  list currently-raising startups, track them, seed the
              frontier;
``snapshot``  capture the day's longitudinal panel rows for every
              tracked startup;
``frontier``  expand one bounded slice of the BFS frontier (profiles,
              follow edges, investments);
``derived``   delta-aware refresh of the derived follow/investment
              edge datasets through the engine.

Every unit runs under the write-ahead ledger protocol
(:mod:`repro.crawl.ledger`): lease → intent (inputs pinned) → effects
(idempotent upserts) → fenced commit (results recorded) → release. The
scheduler object itself is disposable — **all** of its in-memory state
(tracked set, frontier queue, seen set, watermarks) is rebuilt by
replaying committed ledger payloads, so a SIGKILL at *any* point is
survivable: construct a new scheduler over the same storage and call
:meth:`run`; pending intents are redelivered, re-landed exactly-once,
and the eventual datasets are byte-identical to an uninterrupted run
(the A8 chaos drill holds this as a gate).

A watchdog runs each beat: expired leases are flagged for redelivery
(takeover bumps the fencing epoch), leases of committed units are
collected, and a unit redelivered more than ``max_unit_attempts`` times
escalates loudly instead of looping forever. ``request_drain`` stops
the loop gracefully — in-flight units finish, nothing new starts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.crawl.client import ApiClient, AUTH_QUERY_ACCESS_TOKEN
from repro.crawl.enrich import facebook_login
from repro.crawl.incremental import DerivedMaintainer
from repro.crawl.ledger import IngestLedger, STATE_COMMITTED
from repro.crawl.snapshots import snapshot_record
from repro.dfs.filesystem import MiniDfs
from repro.dfs.upsert import UpsertDataset
from repro.engine.context import SparkLiteContext
from repro.net.faults import FAULT_KILL_INGEST, FAULT_LEASE_EXPIRY
from repro.sources.hub import SourceHub
from repro.util.errors import IngestError, IngestKilled, LeaseExpired
from repro.world.dynamics import WorldDynamics

#: crash points of the ledger protocol, in execution order — the chaos
#: drill must cover every one of them
CRASH_STATES = ("pre-intent", "post-intent", "mid-land",
                "pre-commit", "post-commit")

_OWNER_IDS = itertools.count(1)


@dataclass
class IngestStats:
    """Lifetime counters of one scheduler incarnation."""

    beats: int = 0
    units_committed: int = 0
    units_redelivered: int = 0   # ran from a pre-existing intent
    units_skipped: int = 0       # already committed when planned
    lands_skipped: int = 0       # upsert applies absorbed as duplicates
    kills_injected: int = 0
    leases_blocked: int = 0      # unit busy under someone else's lease
    leases_lost: int = 0         # our lease lapsed mid-unit
    leases_taken_over: int = 0   # we reclaimed a dead owner's unit
    fenced_commits: int = 0
    watchdog_reclaims: int = 0
    vacuumed_files: int = 0
    swept_temps: int = 0


@dataclass
class IngestReport:
    """Summary of one :meth:`ContinuousScheduler.run` call."""

    owner: str
    day: int
    stats: IngestStats
    dataset_keys: Dict[str, int] = field(default_factory=dict)
    derived_records_scanned: int = 0
    drained: bool = False


class ContinuousScheduler:
    """Drives the continuous crawl as ledger-framed idempotent units."""

    UNIT_KINDS = ("advance", "discover", "snapshot", "frontier", "derived")

    def __init__(self, hub: SourceHub, dynamics: WorldDynamics,
                 dfs: MiniDfs, sc: Optional[SparkLiteContext] = None,
                 root: str = "/ingest",
                 beat_interval_s: float = 60.0,
                 lease_ttl_s: float = 150.0,
                 owner: Optional[str] = None,
                 faults: Any = None,
                 frontier_batch: int = 16,
                 records_per_part: int = 5000,
                 heartbeat_every: int = 8,
                 max_unit_attempts: int = 25,
                 compact_every_days: int = 0,
                 alerting: Any = None):
        if beat_interval_s <= 0:
            raise IngestError("beat_interval_s must be > 0")
        if frontier_batch < 1:
            raise IngestError("frontier_batch must be >= 1")
        self.hub = hub
        self.dynamics = dynamics
        self.dfs = dfs
        self.clock = hub.clock
        self.root = root.rstrip("/")
        self.beat_interval_s = beat_interval_s
        self.owner = owner or f"ingest-{next(_OWNER_IDS)}"
        self.faults = faults
        self.frontier_batch = frontier_batch
        self.heartbeat_every = heartbeat_every
        self.max_unit_attempts = max_unit_attempts
        self.compact_every_days = compact_every_days
        #: standing-query evaluator (repro.serve.alerting) hooked into
        #: the derived commit path; replayed commits re-evaluate too, so
        #: a crashed scheduler re-emits — the outbox dedupes by id
        self.alerting = alerting
        self._own_sc = sc is None
        self.sc = sc or SparkLiteContext(parallelism=2, backend="serial")
        self.stats = IngestStats()
        self._stopping = False
        self._hb_serial = 0

        self.ledger = IngestLedger(dfs, self.clock,
                                   root=f"{self.root}/ledger",
                                   lease_ttl_s=lease_ttl_s).open()
        self.stats.swept_temps = self.ledger.swept_temps

        self.panels = UpsertDataset(
            dfs, f"{self.root}/panels", key=("day", "startup_id"),
            records_per_part=records_per_part)
        self.startups = UpsertDataset(
            dfs, f"{self.root}/startups", key="id",
            records_per_part=records_per_part)
        self.users = UpsertDataset(
            dfs, f"{self.root}/users", key="id",
            records_per_part=records_per_part)
        self.follow_edges = UpsertDataset(
            dfs, f"{self.root}/follow_edges",
            key=("src_user", "dst_type", "dst_id"),
            records_per_part=records_per_part)
        self.investments = UpsertDataset(
            dfs, f"{self.root}/investments",
            key=("investor_id", "company_id"),
            records_per_part=records_per_part)
        self.derived = DerivedMaintainer(
            self.sc, dfs, self.investments, self.follow_edges,
            root=f"{self.root}/derived")
        # a crash between a delta write and its manifest flip leaves an
        # unreferenced delta; reclaim them before planning anything
        for dataset in self._all_datasets():
            self.stats.vacuumed_files += len(dataset.vacuum())

        self.al_client = ApiClient(hub.angellist, self.clock,
                                   token=hub.angellist.issue_token(
                                       self.owner))
        self.fb_client = ApiClient(
            hub.facebook, self.clock, auth_style=AUTH_QUERY_ACCESS_TOKEN,
            token_refresher=lambda: facebook_login(hub.facebook))
        self.tw_client = ApiClient(
            hub.twitter, self.clock, auth_style=AUTH_QUERY_ACCESS_TOKEN,
            token=hub.twitter.register_app(self.owner))

        # -------- in-memory state, rebuilt from the ledger every start
        self.tracked: set = set()
        self.frontier: List[Tuple[str, int]] = []
        self.seen: set = set()
        self.day_committed = 0
        self.watermarks: Dict[str, int] = {}
        self._replay_state()

    # ----------------------------------------------------------- lifecycle
    def close(self) -> None:
        if self._own_sc:
            self.sc.stop()

    def __enter__(self) -> "ContinuousScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request_drain(self) -> None:
        """Graceful shutdown: finish the unit in flight, start nothing
        new; :meth:`run` returns with ``drained=True``."""
        self._stopping = True

    # ------------------------------------------------------- state replay
    def _unit_id(self, day: int, kind: str) -> str:
        return f"day-{day:04d}:{kind}"

    def _unit_kind(self, unit: str) -> str:
        return unit.rsplit(":", 1)[1]

    def _enqueue(self, entity: Tuple[str, int]) -> None:
        entity = (entity[0], int(entity[1]))
        if entity not in self.seen:
            self.seen.add(entity)
            self.frontier.append(entity)

    def _absorb_intent(self, kind: str, payload: Dict) -> None:
        if kind == "frontier":
            claimed = {(e[0], int(e[1])) for e in payload.get("slice", ())}
            # the slice also counts as seen: a crashed unit's entities
            # must not be re-enqueued by a later discovery
            self.seen |= claimed
            self.frontier = [e for e in self.frontier if e not in claimed]

    def _absorb_commit(self, unit: str, kind: str, payload: Dict) -> None:
        if kind == "advance":
            self.day_committed = int(payload["day"])
        elif kind == "discover":
            for sid in payload.get("added", ()):
                self.tracked.add(int(sid))
                self._enqueue(("startup", int(sid)))
        elif kind == "frontier":
            for entity in payload.get("discovered", ()):
                self._enqueue((entity[0], int(entity[1])))
        elif kind == "derived":
            self.watermarks = {k: int(v)
                               for k, v in payload["watermarks"].items()}
            if self.alerting is not None:
                self.alerting.on_derived_commit(unit, payload,
                                                self.derived)

    def _replay_state(self) -> None:
        """Rebuild every in-memory structure from the durable ledger."""
        for record in self.ledger.records():
            kind = self._unit_kind(record.unit)
            if record.type == "intent":
                self._absorb_intent(kind, record.payload)
            else:
                self._absorb_commit(record.unit, kind, record.payload)

    # ----------------------------------------------------------- fault hooks
    def _crash_point(self, unit: str, state: str, epoch: int) -> None:
        if self.faults is None:
            return
        kill = self.faults.take_forced_ingest_kill(unit, state)
        if not kill:
            spec = self.faults.ingest_fault_at(f"{unit}@{state}#e{epoch}")
            kill = spec is not None and spec.kind == FAULT_KILL_INGEST
        if kill:
            self.stats.kills_injected += 1
            # a SIGKILL does not clean up: no lease release, no commit —
            # recovery must come entirely from what is already durable
            raise IngestKilled(unit, state)

    def _heartbeat(self, lease, unit: str):
        """Extend our lease mid-unit; chaos may have let it lapse."""
        self._hb_serial += 1
        if self.faults is not None:
            key = f"{unit}@hb#e{lease.epoch}n{self._hb_serial}"
            spec = self.faults.ingest_fault_at(key)
            if spec is not None and spec.kind == FAULT_LEASE_EXPIRY:
                self.ledger.expire_lease(unit)
        return self.ledger.heartbeat(lease)

    # -------------------------------------------------------------- planning
    def _day_complete(self, day: int) -> bool:
        return all(
            self.ledger.state(self._unit_id(day, kind)) == STATE_COMMITTED
            for kind in self.UNIT_KINDS)

    def _planned_day(self) -> int:
        if self.day_committed == 0:
            return 1
        if self._day_complete(self.day_committed):
            return self.day_committed + 1
        return self.day_committed

    def _intent_payload(self, kind: str, day: int) -> Dict:
        """Pin every input of a unit *before* its effects start, so a
        redelivery after a crash re-executes identical work."""
        if kind == "advance":
            return {"day": day}
        if kind == "discover":
            return {"day": day}
        if kind == "snapshot":
            return {"day": day, "tracked": sorted(self.tracked)}
        if kind == "frontier":
            return {"day": day,
                    "slice": [[t, i] for t, i
                              in self.frontier[:self.frontier_batch]]}
        if kind == "derived":
            return {"day": day, "plan": self.derived.plan(self.watermarks)}
        raise AssertionError(kind)  # pragma: no cover

    # -------------------------------------------------------------- running
    def run(self, beats: int) -> IngestReport:
        """Run up to ``beats`` ticks (or until drained)."""
        for _ in range(beats):
            if self._stopping:
                break
            self.tick()
        return self.report()

    def run_until_day(self, day: int, max_beats: int = 10_000,
                      ) -> IngestReport:
        """Tick until every unit of ``day`` has committed."""
        beats = 0
        while not self._day_complete(day):
            if self._stopping or beats >= max_beats:
                break
            self.tick()
            beats += 1
        return self.report()

    def tick(self) -> None:
        """One beat: advance time, supervise, drive the day's units."""
        self.stats.beats += 1
        self.clock.sleep(self.beat_interval_s)
        self._watchdog()
        day = self._planned_day()
        for kind in self.UNIT_KINDS:
            if self._stopping:
                break
            unit = self._unit_id(day, kind)
            if self.ledger.state(unit) == STATE_COMMITTED:
                self.stats.units_skipped += 1
                continue
            if not self._run_unit(unit, kind, day):
                # strict intra-day ordering: snapshot must not run
                # before discover committed, etc.
                break
        if (self.compact_every_days > 0 and day % self.compact_every_days == 0
                and self._day_complete(day)
                and not self.ledger.pending_units()):
            # safe point: nothing pending can be redelivered against a
            # delta file a compaction would fold away
            for dataset in self._all_datasets():
                dataset.compact()

    def _watchdog(self) -> None:
        """Supervision sweep: reclaim dead owners' units, escalate
        poison units, collect spent leases."""
        reclaimable = self.ledger.reclaim_expired()
        self.stats.watchdog_reclaims += len(reclaimable)
        self.ledger.gc_leases()
        for unit in self.ledger.pending_units():
            lease = self.ledger.lease_of(unit)
            attempts = lease.epoch if lease is not None else 0
            if attempts > self.max_unit_attempts:
                raise IngestError(
                    f"unit {unit} redelivered {attempts} times without "
                    f"committing — escalating instead of looping")

    def _run_unit(self, unit: str, kind: str, day: int) -> bool:
        """Drive one unit through the full ledger protocol.

        Returns True when the unit (now or previously) committed.
        """
        prior = self.ledger.lease_of(unit)
        lease = self.ledger.acquire_lease(unit, self.owner)
        if lease is None:
            self.stats.leases_blocked += 1
            return False
        if prior is not None and prior.owner != self.owner:
            self.stats.leases_taken_over += 1
        try:
            self._crash_point(unit, "pre-intent", lease.epoch)
            intent = self.ledger.intent_of(unit)
            if intent is not None:
                self.stats.units_redelivered += 1
            else:
                payload = self._intent_payload(kind, day)
                intent = self.ledger.begin(unit, payload)
                self._absorb_intent(kind, intent.payload)
            self._crash_point(unit, "post-intent", lease.epoch)
            result = self._execute(unit, kind, intent.payload, lease)
            self._crash_point(unit, "pre-commit", lease.epoch)
            self.ledger.commit(unit, result, owner=self.owner,
                               epoch=lease.epoch)
            self._absorb_commit(unit, kind, result)
            self.stats.units_committed += 1
            self._crash_point(unit, "post-commit", lease.epoch)
            self.ledger.release(lease)
            return True
        except LeaseExpired:
            # our lease lapsed (or was fenced) mid-unit: abandon; the
            # landing already done is idempotent under redelivery
            self.stats.leases_lost += 1
            self.stats.fenced_commits = self.ledger.fenced_commits
            return False

    # ------------------------------------------------------------- execution
    def _execute(self, unit: str, kind: str, payload: Dict,
                 lease) -> Dict:
        if kind == "advance":
            return self._exec_advance(payload)
        if kind == "discover":
            return self._exec_discover(payload)
        if kind == "snapshot":
            return self._exec_snapshot(unit, payload, lease)
        if kind == "frontier":
            return self._exec_frontier(unit, payload, lease)
        if kind == "derived":
            return self._exec_derived(unit, payload, lease)
        raise AssertionError(kind)  # pragma: no cover

    def _exec_advance(self, payload: Dict) -> Dict:
        day = int(payload["day"])
        if self.dynamics.world.day < day:
            log = self.dynamics.step()
        else:
            # redelivery after the step already happened: the world's
            # day counter is the idempotency check, the kept log the
            # evidence (a restarted dynamics keeps the world but not
            # the log — the day still counts, its stats are lost)
            log = next((l for l in self.dynamics.logs if l.day == day),
                       None)
        if log is None:
            return {"day": day, "rounds_closed": 0,
                    "engagement_events": 0, "new_campaigns": 0}
        return {"day": day, "rounds_closed": log.rounds_closed,
                "engagement_events": log.engagement_events,
                "new_campaigns": log.new_campaigns}

    def _exec_discover(self, payload: Dict) -> Dict:
        day = int(payload["day"])
        added = []
        for item in self.al_client.paged("/1/startups",
                                         {"filter": "raising"},
                                         items_key="startups"):
            added.append(int(item["id"]))
        return {"day": day, "added": added}

    def _exec_snapshot(self, unit: str, payload: Dict, lease) -> Dict:
        day = int(payload["day"])
        records = []
        for count, sid in enumerate(payload.get("tracked", ())):
            if count % self.heartbeat_every == 0:
                lease = self._heartbeat(lease, unit)
            record = snapshot_record(self.al_client, self.fb_client,
                                     self.tw_client, int(sid), day)
            if record is not None:
                records.append(record)
        applied = self.panels.apply(
            unit, records,
            on_delta_written=lambda: self._crash_point(
                unit, "mid-land", lease.epoch))
        if not applied.applied:
            self.stats.lands_skipped += 1
        return {"day": day, "records": len(records)}

    def _exec_frontier(self, unit: str, payload: Dict, lease) -> Dict:
        day = int(payload["day"])
        slice_ = [(e[0], int(e[1])) for e in payload.get("slice", ())]
        startup_rows: List[Dict] = []
        user_rows: List[Dict] = []
        follow_rows: List[Dict] = []
        invest_rows: List[Dict] = []
        discovered: List[List] = []
        local_seen = set(slice_)

        def discover(entity: Tuple[str, int]) -> None:
            if entity not in local_seen and entity not in self.seen:
                local_seen.add(entity)
                discovered.append([entity[0], entity[1]])

        for count, (etype, eid) in enumerate(slice_):
            if count % self.heartbeat_every == 0:
                lease = self._heartbeat(lease, unit)
            if etype == "startup":
                profile = self.al_client.get(f"/1/startups/{eid}",
                                             allow_not_found=True)
                if profile is not None:
                    startup_rows.append(profile)
                for follower in self.al_client.paged(
                        f"/1/startups/{eid}/followers", items_key="users"):
                    discover(("user", int(follower["id"])))
            else:
                profile = self.al_client.get(f"/1/users/{eid}",
                                             allow_not_found=True)
                if profile is not None:
                    user_rows.append(profile)
                for item in self.al_client.paged(
                        f"/1/users/{eid}/following", {"type": "startup"}):
                    cid = int(item["id"])
                    follow_rows.append({"src_user": eid,
                                        "dst_type": "startup",
                                        "dst_id": cid})
                    discover(("startup", cid))
                for item in self.al_client.paged(
                        f"/1/users/{eid}/following", {"type": "user"}):
                    fid = int(item["id"])
                    follow_rows.append({"src_user": eid,
                                        "dst_type": "user", "dst_id": fid})
                    discover(("user", fid))
                for item in self.al_client.paged(
                        f"/1/users/{eid}/investments",
                        items_key="investments"):
                    cid = int(item["startup_id"])
                    invest_rows.append({"investor_id": eid,
                                        "company_id": cid})
                    discover(("startup", cid))

        applied = self.startups.apply(
            f"{unit}:startups", startup_rows,
            on_delta_written=lambda: self._crash_point(
                unit, "mid-land", lease.epoch))
        if not applied.applied:
            self.stats.lands_skipped += 1
        for dataset, suffix, rows in (
                (self.users, "users", user_rows),
                (self.follow_edges, "follows", follow_rows),
                (self.investments, "investments", invest_rows)):
            if not dataset.apply(f"{unit}:{suffix}", rows).applied:
                self.stats.lands_skipped += 1
        return {"day": day,
                "slice": [[t, i] for t, i in slice_],
                "discovered": discovered,
                "landed": {"startups": len(startup_rows),
                           "users": len(user_rows),
                           "follow_edges": len(follow_rows),
                           "investments": len(invest_rows)}}

    def _exec_derived(self, unit: str, payload: Dict, lease) -> Dict:
        plan = {name: [int(a), int(b)]
                for name, (a, b) in payload["plan"].items()}
        update = self.derived.update(
            unit, plan,
            on_delta_written=lambda: self._crash_point(
                unit, "mid-land", lease.epoch))
        return {"day": int(payload["day"]),
                "watermarks": update.watermarks,
                "records_scanned": update.records_scanned}

    # -------------------------------------------------------------- reports
    def _all_datasets(self) -> List[UpsertDataset]:
        return [self.panels, self.startups, self.users, self.follow_edges,
                self.investments, self.derived.investment_edges,
                self.derived.follow_edges]

    def dataset_map(self) -> Dict[str, UpsertDataset]:
        return {"panels": self.panels, "startups": self.startups,
                "users": self.users, "follow_edges": self.follow_edges,
                "investments": self.investments,
                "derived/investment_edges": self.derived.investment_edges,
                "derived/follow_edges": self.derived.follow_edges}

    def report(self) -> IngestReport:
        return IngestReport(
            owner=self.owner,
            day=self.day_committed,
            stats=self.stats,
            dataset_keys={name: ds.key_count()
                          for name, ds in self.dataset_map().items()},
            derived_records_scanned=self.derived.records_scanned_total,
            drained=self._stopping)
