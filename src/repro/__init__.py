"""repro — reproduction of "Collection, Exploration and Analysis of
Crowdfunding Social Networks" (Cheng et al., ExploreDB/PODS 2016).

The public API re-exports the pieces a downstream user needs:

* :class:`ExploratoryPlatform` — crawl-to-analytics in three lines;
* :class:`WorldConfig` / :func:`generate_world` — the calibrated
  synthetic ecosystem standing in for the live sites;
* the analysis entry points (engagement table, investor activity,
  community study, prediction, longitudinal);
* the substrates (:class:`MiniDfs`, :class:`SparkLiteContext`,
  :class:`BipartiteGraph`, :class:`CoDA`) for users composing their own
  pipelines.

See README.md for a quickstart and DESIGN.md for the architecture.
"""

from repro.core.platform import (CrawlSummary, ExploratoryPlatform,
                                 PlatformConfig)
from repro.world.config import CalibrationParams, WorldConfig
from repro.world.generator import World, generate_world
from repro.world.dynamics import WorldDynamics
from repro.dfs.filesystem import MiniDfs
from repro.engine.context import SparkLiteContext
from repro.engine.dataframe import DataFrame
from repro.graph.bipartite import BipartiteGraph
from repro.graph.build import build_investor_graph
from repro.community.coda import CoDA
from repro.analysis.engagement import compute_engagement_table
from repro.analysis.investors import compute_investor_activity
from repro.analysis.concentration import concentration_report
from repro.analysis.strength import run_community_study
from repro.analysis.prediction import predict_success
from repro.analysis.longitudinal import analyze_snapshots
from repro.analysis.facts import build_company_facts
from repro.analysis.dynamic_communities import track_communities
from repro.analysis.recommend import (InvestorRecommender,
                                      evaluate_recommenders)
from repro.analysis.syndicates import validate_over_platform
from repro.core.theories import TheoryEngine
from repro.community.selection import select_num_communities
from repro.world.io import load_world, save_world

__version__ = "1.0.0"

__all__ = [
    "CrawlSummary",
    "ExploratoryPlatform",
    "PlatformConfig",
    "CalibrationParams",
    "WorldConfig",
    "World",
    "generate_world",
    "WorldDynamics",
    "MiniDfs",
    "SparkLiteContext",
    "DataFrame",
    "BipartiteGraph",
    "build_investor_graph",
    "CoDA",
    "compute_engagement_table",
    "compute_investor_activity",
    "concentration_report",
    "run_community_study",
    "predict_success",
    "analyze_snapshots",
    "build_company_facts",
    "track_communities",
    "InvestorRecommender",
    "evaluate_recommenders",
    "validate_over_platform",
    "TheoryEngine",
    "select_num_communities",
    "load_world",
    "save_world",
    "__version__",
]
