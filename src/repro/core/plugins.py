"""Plug-in registry for platform analytics.

The paper's platform "allows for external plug-ins, for example, the use
of external community detection libraries". A plug-in is any callable
``fn(platform) -> result`` registered under a name; built-in analyses
register themselves when :mod:`repro.core.platform` is imported, and
downstream users add their own the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from repro.util.errors import ConfigError


@dataclass
class AnalyticsPlugin:
    """A named analysis over the platform's crawled data."""

    name: str
    run: Callable[..., Any]
    description: str = ""


class PluginRegistry:
    """Name → plug-in mapping with helpful failure messages."""

    def __init__(self):
        self._plugins: Dict[str, AnalyticsPlugin] = {}

    def register(self, name: str, run: Callable[..., Any],
                 description: str = "",
                 replace: bool = False) -> AnalyticsPlugin:
        if name in self._plugins and not replace:
            raise ConfigError(f"plugin {name!r} is already registered "
                              "(pass replace=True to override)")
        plugin = AnalyticsPlugin(name=name, run=run, description=description)
        self._plugins[name] = plugin
        return plugin

    def get(self, name: str) -> AnalyticsPlugin:
        if name not in self._plugins:
            known = ", ".join(sorted(self._plugins)) or "(none)"
            raise ConfigError(f"unknown plugin {name!r}; registered: {known}")
        return self._plugins[name]

    def names(self) -> List[str]:
        return sorted(self._plugins)

    def __contains__(self, name: str) -> bool:
        return name in self._plugins

    def __len__(self) -> int:
        return len(self._plugins)
