"""The extensible exploratory platform — the paper's primary contribution.

:class:`ExploratoryPlatform` owns the simulated sources, the DFS, and
the engine; ``run_full_crawl`` executes the §3 pipeline (BFS → CrunchBase
augmentation → Facebook/Twitter enrichment) and analytics run as
registered plug-ins over the landed datasets — the architecture of the
paper's Figure 2.
"""

from repro.core.platform import (CrawlSummary, ExploratoryPlatform,
                                 PlatformConfig)
from repro.core.plugins import AnalyticsPlugin, PluginRegistry

__all__ = [
    "CrawlSummary",
    "ExploratoryPlatform",
    "PlatformConfig",
    "AnalyticsPlugin",
    "PluginRegistry",
]
