"""ExploratoryPlatform: sources → crawlers → DFS → engine → plug-ins."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.crawl.augment import AugmentResult, CrunchBaseAugmenter
from repro.crawl.breaker import CircuitBreaker, breaker_for
from repro.crawl.client import (ApiClient, AUTH_QUERY_USER_KEY)
from repro.crawl.deadletter import DeadLetterQueue
from repro.crawl.enrich import EnrichResult, FacebookCrawler, TwitterCrawler
from repro.crawl.frontier import BfsCrawler, CrawlResult
from repro.crawl.tokens import TokenPool
from repro.dfs.filesystem import MiniDfs
from repro.engine.context import SparkLiteContext
from repro.graph.bipartite import BipartiteGraph
from repro.graph.build import build_investor_graph
from repro.net.faults import FaultPlan
from repro.net.latency import LatencyModel
from repro.core.plugins import PluginRegistry
from repro.serve.dataset import ServeDataset
from repro.serve.service import QueryService, ServeConfig
from repro.sources.hub import SourceHub
from repro.util.clock import SimClock
from repro.util.errors import ConfigError
from repro.world.config import WorldConfig
from repro.world.generator import World, generate_world


@dataclass
class PlatformConfig:
    """Operational knobs of the platform (not the world)."""

    angellist_tokens: int = 8
    twitter_tokens: int = 10
    twitter_workers: int = 5
    engine_parallelism: int = 4
    #: "serial" / "thread" / "process" (see repro.engine.backends)
    engine_backend: str = "thread"
    #: per-partition task re-execution budget (Spark-style)
    task_retries: int = 1
    # ---- shuffle fast path (see DESIGN.md "Shuffle fast path") ----
    #: zlib-compress shuffle blocks above the engine's size threshold
    shuffle_compress: bool = False
    # ---- columnar core (see DESIGN.md "Columnar core") ----
    #: run elementwise ops and shuffles over columnar record batches
    #: (byte-identical results; shm-backed exchange on the process
    #: backend where the platform supports it)
    engine_columnar: bool = False
    #: rows per record batch when the columnar engine is on
    batch_rows: int = 4096
    #: broadcast one join side when its serialized size fits under this
    #: many bytes (0 disables; raw contexts default to off, the platform
    #: opts in because its dimension tables are small)
    broadcast_join_threshold: int = 256 * 1024
    # ---- adaptive planning (see DESIGN.md "Adaptive planning") ----
    #: runtime stats sampling + partition coalescing, skew splitting,
    #: observed-size broadcast decisions and scan pushdown (results
    #: byte-identical to the static plans)
    engine_adaptive: bool = False
    #: the adaptive planner's post-shuffle partition size target
    target_partition_bytes: int = 1 << 20
    #: LRU byte budget for persisted partitions (None = unbounded)
    cache_budget: Optional[int] = 64 * 1024 * 1024
    #: storage level for the crawl datasets persisted after a full
    #: crawl: "memory" (LRU + spill) or "dfs" (write-through)
    persist_datasets: str = "memory"
    # ---- task supervision (see DESIGN.md "Recovery matrix") ----
    #: wall-second deadline per partition task; a task past it is a
    #: zombie and is replaced in-driver (None disables)
    task_deadline: Optional[float] = None
    #: launch deterministic backup attempts for straggler tasks
    speculation: bool = False
    #: DFS directory backing RDD.checkpoint() on the platform context
    checkpoint_dir: str = "/engine/checkpoints"
    dfs_datanodes: int = 4
    records_per_part: int = 5000
    latency: LatencyModel = field(default_factory=LatencyModel.zero)
    #: a FaultPlan or (composable, seeded) FaultSchedule
    faults: Any = field(default_factory=FaultPlan.none)
    # ---- resilience knobs (see DESIGN.md "Fault model & resilience") ----
    #: transient-failure retry budget per logical request
    client_max_retries: int = 5
    #: deterministic jitter fraction on client backoff (0 disables)
    client_backoff_jitter: float = 0.0
    #: consecutive failures before a source's circuit breaker opens
    #: (<= 0 disables breakers entirely)
    breaker_failure_threshold: int = 5
    #: base cooldown of an opened breaker, in simulated seconds
    breaker_cooldown_s: float = 30.0
    #: park budget-exhausted enrichment requests for replay instead of
    #: failing the crawl
    dead_letters: bool = True
    #: replay passes attempted before leaving letters parked
    replay_passes: int = 5
    #: poison letters are quarantined after this many failed replays
    dead_letter_max_attempts: int = 5
    # ---- continuous ingest (see DESIGN.md "Durable continuous ingest") --
    #: simulated seconds between scheduler beats
    beat_interval_s: float = 60.0
    #: lease time-to-live for ingest work units
    ingest_lease_ttl_s: float = 150.0
    #: frontier entities expanded per ingest work unit
    frontier_batch: int = 16
    #: compact the upsert datasets every N completed days (0 = never)
    compact_every_days: int = 0
    # ---- standing queries (see DESIGN.md "Standing queries") ----
    #: failed delivery attempts before a subscriber is quarantined
    max_delivery_attempts: int = 5
    #: base of the outbox's deterministic jittered backoff (sim seconds)
    alert_retry_base_s: float = 5.0
    #: partitions of the standing-query predicate index (shard_of)
    alert_shards: int = 4


@dataclass
class CrawlSummary:
    """Results of the full §3 pipeline."""

    angellist: CrawlResult
    crunchbase: AugmentResult
    facebook: EnrichResult
    twitter: EnrichResult

    @property
    def total_requests(self) -> int:
        return (self.angellist.client_stats.requests
                + (self.crunchbase.client_stats.requests
                   if self.crunchbase.client_stats else 0)
                + (self.facebook.client_stats.requests
                   if self.facebook.client_stats else 0)
                + (self.twitter.client_stats.requests
                   if self.twitter.client_stats else 0))


class ExploratoryPlatform:
    """The end-to-end system of the paper's Figure 2.

    Typical use::

        platform = ExploratoryPlatform.over_new_world(WorldConfig.small())
        platform.run_full_crawl()
        table = platform.run_plugin("engagement_table")
    """

    def __init__(self, world: World,
                 config: Optional[PlatformConfig] = None):
        self.world = world
        self.config = config or PlatformConfig()
        self.clock = SimClock()
        self.hub = SourceHub.from_world(world, clock=self.clock,
                                        latency=self.config.latency,
                                        faults=self.config.faults)
        self.dfs = MiniDfs(num_datanodes=self.config.dfs_datanodes)
        self.sc = SparkLiteContext(
            parallelism=self.config.engine_parallelism,
            backend=self.config.engine_backend,
            task_retries=self.config.task_retries,
            shuffle_compress=self.config.shuffle_compress,
            engine_columnar=self.config.engine_columnar,
            batch_rows=self.config.batch_rows,
            broadcast_join_threshold=self.config.broadcast_join_threshold,
            engine_adaptive=self.config.engine_adaptive,
            target_partition_bytes=self.config.target_partition_bytes,
            cache_budget=self.config.cache_budget,
            cache_dfs=self.dfs,
            task_deadline=self.config.task_deadline,
            speculation=self.config.speculation,
            # engine faults ride the same schedule as network faults; a
            # plain FaultPlan (or a schedule without engine specs) is a
            # no-op for the supervisor
            engine_faults=self.config.faults,
            checkpoint_dir=self.config.checkpoint_dir,
            checkpoint_dfs=self.dfs)
        #: one circuit breaker per source, shared by that source's workers
        self.breakers: Dict[str, Optional[CircuitBreaker]] = {
            name: breaker_for(self.clock, name,
                              self.config.breaker_failure_threshold,
                              self.config.breaker_cooldown_s)
            for name in ("angellist", "crunchbase", "facebook", "twitter")}
        #: per-source dead-letter queues (enrichment crawls only)
        self.dead_letter_queues: Dict[str, DeadLetterQueue] = {}
        if self.config.dead_letters:
            self.dead_letter_queues = {
                name: DeadLetterQueue(
                    self.dfs, root=f"/crawl/deadletters/{name}",
                    max_attempts=self.config.dead_letter_max_attempts)
                for name in ("facebook", "twitter")}
        self.plugins = PluginRegistry()
        #: one dynamics timeline per platform: the world's evolution is
        #: external state that survives ingest-scheduler crashes
        self._ingest_dynamics: Optional[Any] = None
        self.crawl_summary: Optional[CrawlSummary] = None
        self._graph: Optional[BipartiteGraph] = None
        self._serve_dataset: Optional[ServeDataset] = None
        _register_builtin_plugins(self.plugins)

    # ---------------------------------------------------------- construction
    @classmethod
    def over_new_world(cls, world_config: Optional[WorldConfig] = None,
                       config: Optional[PlatformConfig] = None,
                       ) -> "ExploratoryPlatform":
        return cls(generate_world(world_config or WorldConfig.small()),
                   config=config)

    # ----------------------------------------------------------------- crawl
    def run_full_crawl(self) -> CrawlSummary:
        """§3 end to end: BFS, augmentation, enrichment. Idempotent-ish:
        raises if datasets already exist (re-create the platform to
        recrawl)."""
        if self.crawl_summary is not None:
            raise ConfigError("this platform already crawled; build a new "
                              "one for a fresh crawl")
        cfg = self.config
        al_tokens = [self.hub.angellist.issue_token(f"bfs-{i}")
                     for i in range(cfg.angellist_tokens)]
        # the BFS frontier needs every response inline (each one expands
        # the frontier), so its client retries hard but never dead-letters
        al_client = ApiClient(self.hub.angellist, self.clock,
                              token_pool=TokenPool(al_tokens, self.clock),
                              max_retries=cfg.client_max_retries,
                              backoff_jitter=cfg.client_backoff_jitter,
                              jitter_seed=1,
                              breaker=self.breakers["angellist"])
        bfs = BfsCrawler(al_client, self.dfs,
                         records_per_part=cfg.records_per_part).run()

        cb_client = ApiClient(self.hub.crunchbase, self.clock,
                              auth_style=AUTH_QUERY_USER_KEY,
                              token=self.hub.crunchbase.issue_key(),
                              max_retries=cfg.client_max_retries,
                              backoff_jitter=cfg.client_backoff_jitter,
                              jitter_seed=2,
                              breaker=self.breakers["crunchbase"])
        augment = CrunchBaseAugmenter(
            cb_client, self.dfs,
            records_per_part=cfg.records_per_part).run()

        fb_crawler = FacebookCrawler(
            self.hub.facebook, self.clock, self.dfs,
            records_per_part=cfg.records_per_part,
            max_retries=cfg.client_max_retries,
            backoff_jitter=cfg.client_backoff_jitter,
            jitter_seed=3,
            breaker=self.breakers["facebook"],
            dead_letters=self.dead_letter_queues.get("facebook"))
        facebook = fb_crawler.run()
        tw_crawler = TwitterCrawler(
            self.hub.twitter, self.clock, self.dfs,
            num_tokens=cfg.twitter_tokens,
            num_workers=cfg.twitter_workers,
            records_per_part=cfg.records_per_part,
            max_retries=cfg.client_max_retries,
            backoff_jitter=cfg.client_backoff_jitter,
            jitter_seed=4,
            breaker=self.breakers["twitter"],
            dead_letters=self.dead_letter_queues.get("twitter"))
        twitter = tw_crawler.run()

        # drain the dead-letter queues: nothing a fault parked is lost
        for crawler, result in ((fb_crawler, facebook),
                                (tw_crawler, twitter)):
            if crawler.dead_letters is None:
                continue
            for _ in range(cfg.replay_passes):
                if len(crawler.dead_letters) == 0:
                    break
                crawler.replay(result)

        self.crawl_summary = CrawlSummary(
            angellist=bfs, crunchbase=augment,
            facebook=facebook, twitter=twitter)
        self._persist_crawl_datasets()
        return self.crawl_summary

    #: the dataset directories every analysis reads (§4–§7 pipelines)
    CRAWL_DATASET_DIRS = (
        "/crawl/angellist/startups",
        "/crawl/angellist/users",
        "/crawl/angellist/investments",
        "/crawl/angellist/follow_edges",
        "/crawl/crunchbase/organizations",
        "/crawl/facebook/pages",
        "/crawl/twitter/profiles",
    )

    def _persist_crawl_datasets(self) -> None:
        """Mark the crawl datasets persisted so the analytics pipeline
        (graph build → CoDA → engagement → prediction) scans each part
        file once; the context dedupes ``json_dataset`` by directory, so
        every later job hits the same persisted lineage node."""
        from repro.util.errors import EngineError
        for directory in self.CRAWL_DATASET_DIRS:
            try:
                self.sc.json_dataset(self.dfs, directory).persist(
                    self.config.persist_datasets)
            except EngineError:
                continue  # dataset not produced by this crawl; skip

    # ------------------------------------------------------------------ data
    def require_crawled(self) -> None:
        if self.crawl_summary is None:
            raise ConfigError("run_full_crawl() must run before analytics")

    def investor_graph(self) -> BipartiteGraph:
        """The §5.1 merged bipartite graph (memoized)."""
        self.require_crawled()
        if self._graph is None:
            self._graph = build_investor_graph(self.sc, self.dfs)
        return self._graph

    # ------------------------------------------------------------- ingestion
    def ingest_pipeline(self, root: str = "/ingest",
                        owner: Optional[str] = None,
                        alerting: Any = None) -> Any:
        """A continuous-ingest scheduler over this platform's world.

        Unlike :meth:`run_full_crawl` this tier never "finishes": it
        advances the world's dynamics beat by beat and lands every
        observation through the write-ahead ledger, so a killed
        scheduler resumes by constructing a new one over the same
        platform (same ``dfs``/``hub``) and calling ``run`` again.
        """
        from repro.crawl.scheduler import ContinuousScheduler
        from repro.world.dynamics import WorldDynamics

        cfg = self.config
        if self._ingest_dynamics is None:
            self._ingest_dynamics = WorldDynamics(self.world)
        faults = cfg.faults if hasattr(cfg.faults, "ingest_fault_at") \
            else None
        return ContinuousScheduler(
            self.hub, self._ingest_dynamics, self.dfs, sc=self.sc,
            root=root,
            beat_interval_s=cfg.beat_interval_s,
            lease_ttl_s=cfg.ingest_lease_ttl_s,
            owner=owner,
            faults=faults,
            frontier_batch=cfg.frontier_batch,
            records_per_part=cfg.records_per_part,
            compact_every_days=cfg.compact_every_days,
            alerting=alerting)

    # ------------------------------------------------------- standing queries
    def subscription_registry(self, root: str = "/serve/subscriptions",
                              ) -> Any:
        """A durable standing-query registry over this platform's DFS."""
        from repro.serve.subscriptions import SubscriptionRegistry

        return SubscriptionRegistry(self.dfs, root=root).open()

    def alerting_stack(self, registry: Any = None,
                       subscribers: Any = None,
                       seed: int = 0,
                       outbox_root: str = "/serve/outbox") -> Any:
        """(registry, evaluator, outbox), wired and ready to hook into
        :meth:`ingest_pipeline` via its ``alerting=`` parameter.

        The outbox shares the hub clock with the ingest tier — alerts
        and the deliveries they trigger live on the ingest timeline.
        ``subscribers`` maps subscriber id → :class:`Subscriber`; pass
        the ones your subscriptions name.
        """
        from repro.serve.alerting import AlertEvaluator
        from repro.serve.outbox import DeliveryOutbox

        cfg = self.config
        registry = registry or self.subscription_registry()
        faults = cfg.faults if hasattr(cfg.faults, "alert_fault_at") \
            else None
        outbox = DeliveryOutbox(
            self.dfs, self.clock, subscribers or {},
            root=outbox_root, faults=faults, seed=seed,
            max_delivery_attempts=cfg.max_delivery_attempts,
            retry_base_s=cfg.alert_retry_base_s)
        evaluator = AlertEvaluator(registry, self.serve_dataset(),
                                   num_shards=cfg.alert_shards,
                                   outbox=outbox)
        return registry, evaluator, outbox

    # ---------------------------------------------------------------- serving
    def serve_dataset(self, community_seed: int = 0) -> ServeDataset:
        """Indexes + summaries the online query tier serves (memoized)."""
        self.require_crawled()
        if self._serve_dataset is None:
            self._serve_dataset = ServeDataset.build(
                self.dfs, community_seed=community_seed)
        return self._serve_dataset

    def query_service(self, config: Optional[ServeConfig] = None,
                      faults: Any = None) -> QueryService:
        """A fresh overload-safe query service over this platform's data.

        The service gets its own :class:`SimClock`: serving time is a
        separate timeline from the crawl that produced the datasets, so
        benchmarks start at t=0 regardless of how long the crawl took.
        """
        return QueryService(self.serve_dataset(), self.dfs,
                            clock=SimClock(), config=config,
                            faults=faults)

    def sharded_query_service(self, config: Optional[ServeConfig] = None,
                              shard_config: Any = None,
                              tenants: Any = None,
                              autoscale: Any = None,
                              faults: Any = None) -> QueryService:
        """A scatter-gather sharded query service over this platform.

        Splits the serve indexes across shard servers (persisting each
        shard's index to the DFS for replica boots), optionally with
        per-tenant fair-share admission and a HealthMonitor-driven
        autoscaler. Same fresh-SimClock convention as
        :meth:`query_service`.
        """
        from repro.serve.sharding import ShardedQueryService

        return ShardedQueryService(self.serve_dataset(), self.dfs,
                                   clock=SimClock(), config=config,
                                   faults=faults,
                                   shard_config=shard_config,
                                   tenants=tenants,
                                   autoscale=autoscale)

    # --------------------------------------------------------------- plug-ins
    def run_plugin(self, name: str, **kwargs: Any) -> Any:
        """Run a registered analytics plug-in over this platform."""
        self.require_crawled()
        return self.plugins.get(name).run(self, **kwargs)

    def close(self) -> None:
        self.sc.stop()

    def __enter__(self) -> "ExploratoryPlatform":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _register_builtin_plugins(registry: PluginRegistry) -> None:
    """The analyses shipped with the platform, as plug-ins."""
    from repro.analysis.engagement import compute_engagement_table
    from repro.analysis.investors import compute_investor_activity
    from repro.analysis.concentration import concentration_report
    from repro.analysis.strength import run_community_study
    from repro.analysis.prediction import predict_success

    registry.register(
        "engagement_table",
        lambda platform, **kw: compute_engagement_table(
            platform.sc, platform.dfs, **kw),
        "Figure 6: social engagement vs fundraising success")
    registry.register(
        "investor_activity",
        lambda platform, **kw: compute_investor_activity(
            platform.sc, platform.dfs, platform.investor_graph(), **kw),
        "Figure 3: CDF of investments per investor")
    registry.register(
        "concentration",
        lambda platform, **kw: concentration_report(
            platform.investor_graph(), **kw),
        "§5.1: degree concentration of the bipartite graph")
    registry.register(
        "community_study",
        lambda platform, num_communities=None, **kw: run_community_study(
            platform.investor_graph(),
            num_communities=(num_communities
                             or platform.world.config.num_communities),
            **kw),
        "§5.2–5.3 + Figures 4/5/7: CoDA communities and strength metrics")
    registry.register(
        "success_prediction",
        lambda platform, **kw: predict_success(
            platform.sc, platform.dfs, platform.investor_graph(), **kw),
        "§7: logistic success prediction from graph/social features")
