"""The social-science "translation layer" (§3 / Figure 2).

"In future, we plan to provide familiar interfaces to social
scientists, so that they can directly validate theories using
computational platforms ... A translation layer will map the theories
to Spark queries for execution."

This module is that layer: a theory is written as a declarative
hypothesis string —

    "raised ~ has_facebook"            # binary outcome vs binary predictor
    "raised ~ fb_likes > median"       # binary vs thresholded numeric
    "total_funding_usd ~ has_video"    # numeric outcome vs binary predictor

and :class:`TheoryEngine` compiles it into engine jobs over the unified
company fact table, returning effect sizes with significance:

* binary ~ binary → 2×2 contingency, odds ratio, chi-square p-value,
  Wilson CIs per group;
* numeric ~ binary → group means with a Welch t-test.

Predictors may be negated (``~ !has_twitter``) and numeric thresholds
may be ``median`` or a literal (``fb_likes > 500``).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np
from scipy.stats import t as student_t

from repro.engine.dataframe import DataFrame
from repro.metrics.significance import (Chi2Result, chi_square_2x2,
                                        odds_ratio, wilson_interval)
from repro.util.errors import ConfigError

_HYPOTHESIS_RE = re.compile(
    r"^\s*(?P<outcome>\w+)\s*~\s*(?P<negate>!?)\s*(?P<predictor>\w+)"
    r"\s*(?:(?P<op>[><])\s*(?P<threshold>median|[-\d.]+))?\s*$")


@dataclass
class Hypothesis:
    """A parsed ``outcome ~ predictor [op threshold]`` statement."""

    outcome: str
    predictor: str
    negate: bool = False
    op: Optional[str] = None
    threshold: Optional[str] = None
    text: str = ""

    @classmethod
    def parse(cls, text: str) -> "Hypothesis":
        match = _HYPOTHESIS_RE.match(text)
        if match is None:
            raise ConfigError(
                f"cannot parse hypothesis {text!r}; expected "
                "'outcome ~ predictor', 'outcome ~ !predictor' or "
                "'outcome ~ predictor > median|<number>'")
        return cls(outcome=match["outcome"], predictor=match["predictor"],
                   negate=bool(match["negate"]), op=match["op"],
                   threshold=match["threshold"], text=text.strip())


@dataclass
class GroupStats:
    """Outcome statistics for one predictor group."""

    label: str
    count: int
    outcome_mean: float
    ci_low: float = float("nan")
    ci_high: float = float("nan")


@dataclass
class TheoryResult:
    """The verdict on one hypothesis."""

    hypothesis: str
    kind: str                       # "binary" or "numeric"
    exposed: GroupStats
    control: GroupStats
    effect: float                   # odds ratio / difference in means
    effect_name: str
    p_value: float

    @property
    def significant(self) -> bool:
        return self.p_value < 0.05

    def render(self) -> str:
        verdict = "SUPPORTED" if self.significant else "not significant"
        lines = [f"{self.hypothesis}  →  {verdict} (p={self.p_value:.2e})",
                 f"  {self.effect_name}: {self.effect:.3g}"]
        for group in (self.exposed, self.control):
            ci = ""
            if not math.isnan(group.ci_low):
                ci = f"  [{group.ci_low:.4f}, {group.ci_high:.4f}]"
            lines.append(f"  {group.label:<24} n={group.count:<8,} "
                         f"outcome={group.outcome_mean:.4f}{ci}")
        return "\n".join(lines)


class TheoryEngine:
    """Compiles hypotheses into engine jobs over a company fact table."""

    def __init__(self, facts: DataFrame):
        self._facts = facts

    @classmethod
    def over_platform(cls, platform) -> "TheoryEngine":
        from repro.analysis.facts import build_company_facts
        platform.require_crawled()
        return cls(build_company_facts(platform.sc, platform.dfs))

    def test(self, hypothesis_text: str) -> TheoryResult:
        """Evaluate one hypothesis; see the module docstring for syntax."""
        hypothesis = Hypothesis.parse(hypothesis_text)
        rows = self._facts.rdd.cache().collect()
        if not rows:
            raise ConfigError("the fact table is empty")
        self._check_column(rows[0], hypothesis.outcome)
        self._check_column(rows[0], hypothesis.predictor)

        predicate = self._compile_predicate(hypothesis, rows)
        exposed_rows = [r for r in rows if predicate(r)]
        control_rows = [r for r in rows if not predicate(r)]
        if not exposed_rows or not control_rows:
            raise ConfigError(
                f"predictor {hypothesis.predictor!r} does not split the "
                "population (one side is empty)")

        outcome_values = [rows[0][hypothesis.outcome]]
        if isinstance(outcome_values[0], bool):
            return self._binary_outcome(hypothesis, exposed_rows,
                                        control_rows)
        return self._numeric_outcome(hypothesis, exposed_rows, control_rows)

    def test_all(self, hypotheses: List[str]) -> List[TheoryResult]:
        return [self.test(h) for h in hypotheses]

    # ------------------------------------------------------------ internals
    @staticmethod
    def _check_column(sample_row: Dict, name: str) -> None:
        if name not in sample_row:
            known = ", ".join(sorted(sample_row))
            raise ConfigError(f"unknown variable {name!r}; "
                              f"fact columns: {known}")

    def _compile_predicate(self, hyp: Hypothesis,
                           rows: List[Dict]) -> Callable[[Dict], bool]:
        if hyp.op is None:
            base = lambda row: bool(row[hyp.predictor])  # noqa: E731
        else:
            if hyp.threshold == "median":
                cutoff = float(np.median(
                    [float(r[hyp.predictor]) for r in rows]))
            else:
                cutoff = float(hyp.threshold)
            if hyp.op == ">":
                base = lambda row: float(row[hyp.predictor]) > cutoff  # noqa: E731
            else:
                base = lambda row: float(row[hyp.predictor]) < cutoff  # noqa: E731
        if hyp.negate:
            return lambda row: not base(row)
        return base

    def _binary_outcome(self, hyp: Hypothesis, exposed: List[Dict],
                        control: List[Dict]) -> TheoryResult:
        a = sum(1 for r in exposed if r[hyp.outcome])
        b = len(exposed) - a
        c = sum(1 for r in control if r[hyp.outcome])
        d = len(control) - c
        chi: Chi2Result = chi_square_2x2(a, b, c, d)
        exp_lo, exp_hi = wilson_interval(a, len(exposed))
        ctl_lo, ctl_hi = wilson_interval(c, len(control))
        return TheoryResult(
            hypothesis=hyp.text, kind="binary",
            exposed=GroupStats(self._label(hyp, True), len(exposed),
                               a / len(exposed), exp_lo, exp_hi),
            control=GroupStats(self._label(hyp, False), len(control),
                               c / len(control), ctl_lo, ctl_hi),
            effect=odds_ratio(a, b, c, d), effect_name="odds ratio",
            p_value=chi.p_value)

    def _numeric_outcome(self, hyp: Hypothesis, exposed: List[Dict],
                         control: List[Dict]) -> TheoryResult:
        x = np.array([float(r[hyp.outcome]) for r in exposed])
        y = np.array([float(r[hyp.outcome]) for r in control])
        effect = float(x.mean() - y.mean())
        p_value = _welch_t_p(x, y)
        return TheoryResult(
            hypothesis=hyp.text, kind="numeric",
            exposed=GroupStats(self._label(hyp, True), len(x),
                               float(x.mean())),
            control=GroupStats(self._label(hyp, False), len(y),
                               float(y.mean())),
            effect=effect, effect_name="difference in means",
            p_value=p_value)

    @staticmethod
    def _label(hyp: Hypothesis, exposed: bool) -> str:
        core = hyp.predictor
        if hyp.op is not None:
            core = f"{core} {hyp.op} {hyp.threshold}"
        if hyp.negate:
            core = f"!{core}"
        return core if exposed else f"not ({core})"


def _welch_t_p(x: np.ndarray, y: np.ndarray) -> float:
    """Two-sided Welch's t-test p-value."""
    nx, ny = len(x), len(y)
    if nx < 2 or ny < 2:
        return 1.0
    vx, vy = x.var(ddof=1), y.var(ddof=1)
    se2 = vx / nx + vy / ny
    if se2 <= 0:
        return 1.0
    statistic = (x.mean() - y.mean()) / math.sqrt(se2)
    dof = se2 ** 2 / ((vx / nx) ** 2 / (nx - 1) + (vy / ny) ** 2 / (ny - 1))
    return float(2.0 * student_t.sf(abs(statistic), df=dof))
