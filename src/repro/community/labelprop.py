"""Weighted label propagation on the investor projection (cheap baseline)."""

from __future__ import annotations

from typing import Dict, Set

from repro.graph.bipartite import BipartiteGraph
from repro.util.rng import RngStream


def label_propagation(graph: BipartiteGraph, seed: int = 0,
                      max_iters: int = 20,
                      min_overlap: int = 1,
                      min_community_size: int = 2) -> Dict[int, Set[int]]:
    """Detect non-overlapping investor communities by label propagation.

    Edges of the one-mode projection are weighted by co-investment count;
    each investor repeatedly adopts the label with the largest total
    weight among its neighbors (ties broken by smaller label for
    determinism), until a fixed point or ``max_iters``.
    """
    rng = RngStream(seed, "labelprop")
    weights: Dict[int, Dict[int, int]] = {}
    for (a, b), weight in graph.investor_projection().items():
        if weight < min_overlap:
            continue
        weights.setdefault(a, {})[b] = weight
        weights.setdefault(b, {})[a] = weight

    labels = {uid: uid for uid in weights}
    nodes = sorted(weights)
    for _ in range(max_iters):
        rng.shuffle(nodes)
        changed = 0
        for node in nodes:
            tallies: Dict[int, int] = {}
            for neighbor, weight in weights[node].items():
                tallies[labels[neighbor]] = (
                    tallies.get(labels[neighbor], 0) + weight)
            if not tallies:
                continue
            best = min(label for label, score in tallies.items()
                       if score == max(tallies.values()))
            if best != labels[node]:
                labels[node] = best
                changed += 1
        if changed == 0:
            break

    communities: Dict[int, Set[int]] = {}
    for node, label in labels.items():
        communities.setdefault(label, set()).add(node)
    renumbered = {}
    for index, (_, members) in enumerate(sorted(
            communities.items(), key=lambda kv: (-len(kv[1]), kv[0]))):
        if len(members) >= min_community_size:
            renumbered[index] = members
    return renumbered
