"""Randomized communities — the paper's §5.3 control.

"As a point of comparison with a randomized community of investors, we
observe that the shared investment percentage is only 5.8%." The control
keeps the *size profile* of the detected communities but samples members
uniformly, destroying any herd structure.
"""

from __future__ import annotations

from typing import Dict, Sequence, Set

from repro.util.rng import RngStream


def random_communities(investors: Sequence[int], sizes: Sequence[int],
                       rng: RngStream) -> Dict[int, Set[int]]:
    """Communities with the given sizes, members sampled uniformly."""
    pool = list(investors)
    communities: Dict[int, Set[int]] = {}
    for index, size in enumerate(sizes):
        if size < 0:
            raise ValueError(f"community size must be >= 0, got {size}")
        size = min(size, len(pool))
        communities[index] = set(rng.sample(pool, size)) if size else set()
    return communities
