"""Community detection over the bipartite investor graph (§5.2, §6, §7).

* :class:`CoDA` — reimplementation of Communities through Directed
  Affiliations (Yang, McAuley & Leskovec, WSDM '14), the algorithm the
  paper ran from the SNAP library. Specialized to directed bipartite
  graphs: investors hold outgoing memberships F, companies incoming
  memberships H, and an edge exists with probability
  ``1 − exp(−F_u · H_v)``. Fit by row-wise projected gradient ascent
  with backtracking, seeded from high-degree company neighborhoods.
* :class:`BigClam` — the undirected ancestor, run on the co-investment
  projection (baseline).
* :class:`BipartiteSBM` — the stochastic-block-model inference the paper
  proposes as future work (§7), spectral init + Poisson EM.
* :func:`label_propagation` — cheap one-mode baseline.
* :func:`random_communities` — the paper's randomized control (§5.3).
* :mod:`repro.community.scoring` — best-match F1 against planted truth.
"""

from repro.community.coda import CoDA, CodaResult
from repro.community.bigclam import BigClam
from repro.community.sbm import BipartiteSBM, SbmResult
from repro.community.labelprop import label_propagation
from repro.community.random_baseline import random_communities
from repro.community.scoring import best_match_f1, cover_f1
from repro.community.selection import (SelectionResult,
                                       select_num_communities)

__all__ = [
    "CoDA",
    "CodaResult",
    "BigClam",
    "BipartiteSBM",
    "SbmResult",
    "label_propagation",
    "random_communities",
    "best_match_f1",
    "cover_f1",
    "SelectionResult",
    "select_num_communities",
]
