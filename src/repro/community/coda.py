"""CoDA: Communities through Directed Affiliations, from scratch.

Model (Yang, McAuley & Leskovec, WSDM '14), specialized to a directed
bipartite graph where edges always point investor → company:

* each investor ``u`` has a non-negative *outgoing* affiliation vector
  ``F_u ∈ R^C``; each company ``v`` a non-negative *incoming* vector
  ``H_v ∈ R^C``;
* an edge u→v exists with probability ``1 − exp(−F_u · H_v)``.

The log-likelihood over the observed graph is::

    L = Σ_{(u,v)∈E} log(1 − exp(−F_u·H_v)) − Σ_{(u,v)∉E} F_u·H_v

Maximized by block-coordinate projected gradient ascent: each row update
uses only the row's neighbors plus the cached column sums ``ΣF`` / ``ΣH``
(the standard BigCLAM trick that makes the non-edge term O(C)), with
backtracking line search on the row's local objective.

Membership: node n belongs to community c when its affiliation exceeds
``δ = sqrt(−log(1 − ρ))`` where ρ is the background edge density — i.e.
when the affiliation alone would explain an edge better than chance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

import numpy as np

from repro.community.seeds import select_seed_companies
from repro.graph.bipartite import BipartiteGraph
from repro.util.rng import RngStream

_EPS = 1e-10
_MAX_AFFILIATION = 12.0


@dataclass
class CodaResult:
    """Fitted CoDA model and the extracted communities."""

    investor_ids: List[int]
    company_ids: List[int]
    F: np.ndarray                      # (num_investors, C) outgoing
    H: np.ndarray                      # (num_companies, C) incoming
    delta: float
    log_likelihood: float
    iterations: int
    #: community id → set of investor ids (affiliation ≥ δ)
    investor_communities: Dict[int, Set[int]] = field(default_factory=dict)
    #: community id → set of company ids (affiliation ≥ δ)
    company_communities: Dict[int, Set[int]] = field(default_factory=dict)

    @property
    def num_communities(self) -> int:
        return len(self.investor_communities)

    @property
    def average_community_size(self) -> float:
        sizes = [len(m) for m in self.investor_communities.values()]
        return float(np.mean(sizes)) if sizes else 0.0

    def communities_sorted_by_size(self) -> List[Tuple[int, Set[int]]]:
        return sorted(self.investor_communities.items(),
                      key=lambda kv: len(kv[1]), reverse=True)


class CoDA:
    """Fits the CoDA affiliation model to a :class:`BipartiteGraph`.

    Args:
        num_communities: C, the affiliation dimensionality. The paper's
            SNAP run produced 96 communities at full scale.
        max_iters: full sweeps over all rows.
        tol: stop when a sweep improves the log-likelihood by less than
            ``tol`` in relative terms.
        seed: RNG seed for initialization noise and sweep order.
        min_community_size: detected communities smaller than this are
            dropped (they carry no pairwise statistics).
    """

    def __init__(self, num_communities: int, max_iters: int = 60,
                 tol: float = 1e-4, seed: int = 0,
                 min_community_size: int = 2):
        if num_communities < 1:
            raise ValueError("num_communities must be >= 1")
        self.num_communities = num_communities
        self.max_iters = max_iters
        self.tol = tol
        self.seed = seed
        self.min_community_size = min_community_size

    # ------------------------------------------------------------------- fit
    def fit(self, graph: BipartiteGraph) -> CodaResult:
        rng = RngStream(self.seed, "coda")
        investor_ids = graph.investors
        company_ids = graph.companies
        inv_index = {uid: i for i, uid in enumerate(investor_ids)}
        com_index = {cid: i for i, cid in enumerate(company_ids)}
        n_inv, n_com = len(investor_ids), len(company_ids)
        C = self.num_communities

        out_nbrs = [np.array(sorted(com_index[c]
                                    for c in graph.portfolio(uid)),
                             dtype=np.int64)
                    for uid in investor_ids]
        in_nbrs = [np.array(sorted(inv_index[u]
                                   for u in graph.backers(cid)),
                            dtype=np.int64)
                   for cid in company_ids]

        F, H = self._initialize(graph, investor_ids, company_ids,
                                inv_index, com_index, rng)

        sum_F = F.sum(axis=0)
        sum_H = H.sum(axis=0)
        last_ll = -np.inf
        iterations = 0
        for sweep in range(self.max_iters):
            iterations = sweep + 1
            order = list(range(n_inv))
            rng.shuffle(order)
            for i in order:
                sum_F -= F[i]
                F[i] = _update_row(F[i], H, out_nbrs[i], sum_H)
                sum_F += F[i]
            order = list(range(n_com))
            rng.shuffle(order)
            for j in order:
                sum_H -= H[j]
                H[j] = _update_row(H[j], F, in_nbrs[j], sum_F)
                sum_H += H[j]
            ll = _log_likelihood(F, H, out_nbrs, sum_H)
            if np.isfinite(last_ll) and abs(ll - last_ll) <= self.tol * (
                    abs(last_ll) + 1.0):
                last_ll = ll
                break
            last_ll = ll

        _balance_columns(F, H)
        density = graph.num_edges / max(1, n_inv * n_com)
        delta = float(np.sqrt(-np.log(max(_EPS, 1.0 - density))))

        result = CodaResult(
            investor_ids=investor_ids, company_ids=company_ids,
            F=F, H=H, delta=delta, log_likelihood=float(last_ll),
            iterations=iterations)
        self._extract_communities(result)
        return result

    # -------------------------------------------------------------- internals
    def _initialize(self, graph: BipartiteGraph,
                    investor_ids: List[int], company_ids: List[int],
                    inv_index: Dict[int, int], com_index: Dict[int, int],
                    rng: RngStream) -> Tuple[np.ndarray, np.ndarray]:
        """Seed each community from a high-degree company neighborhood."""
        n_inv, n_com, C = len(investor_ids), len(company_ids), \
            self.num_communities
        F = 0.05 * rng.np.random((n_inv, C))
        H = 0.05 * rng.np.random((n_com, C))
        seeds = select_seed_companies(graph, C, rng)
        for c, company in enumerate(seeds):
            H[com_index[company], c] += 1.0
            backers = graph.backers(company)
            for u in backers:
                F[inv_index[u], c] += 1.0
            # Pull in companies co-invested by ≥ 2 of the seed's backers.
            counts: Dict[int, int] = {}
            for u in backers:
                for other in graph.portfolio(u):
                    counts[other] = counts.get(other, 0) + 1
            for other, count in counts.items():
                if count >= 2 and other != company:
                    H[com_index[other], c] += 0.5
        return F, H

    def _extract_communities(self, result: CodaResult) -> None:
        keep = 0
        for c in range(result.F.shape[1]):
            investors = {result.investor_ids[i]
                         for i in np.nonzero(result.F[:, c]
                                             >= result.delta)[0]}
            if len(investors) < self.min_community_size:
                continue
            companies = {result.company_ids[j]
                         for j in np.nonzero(result.H[:, c]
                                             >= result.delta)[0]}
            result.investor_communities[keep] = investors
            result.company_communities[keep] = companies
            keep += 1


def _balance_columns(F: np.ndarray, H: np.ndarray) -> None:
    """Equalize per-community scales of F and H in place.

    The likelihood only sees ``F_u · H_v``, so column c can drift to
    (large F, tiny H) without changing the fit; rebalancing by
    ``s = sqrt(max H_c / max F_c)`` makes the shared membership
    threshold δ meaningful on both sides.
    """
    for c in range(F.shape[1]):
        f_peak = float(F[:, c].max(initial=0.0))
        h_peak = float(H[:, c].max(initial=0.0))
        if f_peak <= _EPS or h_peak <= _EPS:
            continue
        scale = np.sqrt(h_peak / f_peak)
        F[:, c] *= scale
        H[:, c] /= scale


def _update_row(row: np.ndarray, other: np.ndarray,
                neighbors: np.ndarray, sum_other: np.ndarray,
                step: float = 0.3, backtracks: int = 5) -> np.ndarray:
    """One projected-gradient step with backtracking on the row objective."""
    if neighbors.size == 0:
        return np.zeros_like(row)
    nbr_vecs = other[neighbors]                     # (d, C)
    nbr_sum = nbr_vecs.sum(axis=0)

    def objective(candidate: np.ndarray) -> float:
        dots = np.maximum(_EPS, nbr_vecs @ candidate)
        return float(np.log1p(-np.exp(-dots) + _EPS).sum()
                     - candidate @ (sum_other - nbr_sum))

    dots = np.maximum(_EPS, nbr_vecs @ row)
    weights = np.exp(-dots) / np.maximum(_EPS, 1.0 - np.exp(-dots))
    grad = weights @ nbr_vecs - (sum_other - nbr_sum)

    current = objective(row)
    scale = step
    for _ in range(backtracks):
        candidate = np.clip(row + scale * grad, 0.0, _MAX_AFFILIATION)
        if objective(candidate) > current:
            return candidate
        scale *= 0.5
    return row


def _log_likelihood(F: np.ndarray, H: np.ndarray,
                    out_nbrs: List[np.ndarray],
                    sum_H: np.ndarray) -> float:
    """Full model log-likelihood using the non-edge cache trick."""
    total = 0.0
    edge_dot_sum = 0.0
    for i, neighbors in enumerate(out_nbrs):
        if neighbors.size == 0:
            continue
        dots = np.maximum(_EPS, H[neighbors] @ F[i])
        total += float(np.log1p(-np.exp(-dots) + _EPS).sum())
        edge_dot_sum += float(dots.sum())
    total -= float(F.sum(axis=0) @ sum_H) - edge_dot_sum
    return total
