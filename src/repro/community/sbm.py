"""Bipartite stochastic block model inference (the §7 future-work item).

"We will perform community inference using stochastic block models,
which outputs an assignment of nodes to communities based on the
adjacency matrix of the graph" — here for the directed bipartite case:

1. **Spectral initialization**: SVD of the degree-normalized biadjacency
   matrix (the standard spectral co-clustering embedding), k-means on
   the left singular vectors for investors, right for companies.
2. **Poisson EM refinement**: given group assignments, estimate block
   rates ``λ_gh``; reassign each node to the group maximizing its
   Poisson log-likelihood; iterate to a fixed point.

Unlike CoDA the assignment is *hard* (non-overlapping) — which is
exactly the comparison X2 runs: how much does overlap matter for
recovering planted co-investment communities?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.util.rng import RngStream

_EPS = 1e-9


@dataclass
class SbmResult:
    """Hard bipartite block assignment."""

    investor_ids: List[int]
    company_ids: List[int]
    investor_groups: np.ndarray        # (n_inv,) group index per investor
    company_groups: np.ndarray         # (n_com,)
    rates: np.ndarray                  # (K, K) block rates λ
    iterations: int
    log_likelihood: float

    def investor_communities(self) -> Dict[int, Set[int]]:
        communities: Dict[int, Set[int]] = {}
        for uid, group in zip(self.investor_ids, self.investor_groups):
            communities.setdefault(int(group), set()).add(uid)
        return communities


class BipartiteSBM:
    """Spectral-init + Poisson-EM bipartite SBM."""

    def __init__(self, num_groups: int, max_iters: int = 30, seed: int = 0,
                 restarts: int = 4):
        if num_groups < 1:
            raise ValueError("num_groups must be >= 1")
        if restarts < 1:
            raise ValueError("restarts must be >= 1")
        self.num_groups = num_groups
        self.max_iters = max_iters
        self.seed = seed
        self.restarts = restarts

    def fit(self, graph: BipartiteGraph) -> SbmResult:
        """Best-of-``restarts`` EM runs (k-means init is a local search)."""
        best: Optional[SbmResult] = None
        for attempt in range(self.restarts):
            candidate = self._fit_once(graph, seed_offset=attempt)
            if best is None or candidate.log_likelihood > best.log_likelihood:
                best = candidate
        assert best is not None
        return best

    def _fit_once(self, graph: BipartiteGraph, seed_offset: int) -> SbmResult:
        rng = RngStream(self.seed + 7919 * seed_offset, "sbm")
        investor_ids = graph.investors
        company_ids = graph.companies
        inv_index = {u: i for i, u in enumerate(investor_ids)}
        com_index = {c: j for j, c in enumerate(company_ids)}
        n, m = len(investor_ids), len(company_ids)
        K = min(self.num_groups, max(1, n), max(1, m))

        A = np.zeros((n, m))
        for u, c in graph.edges():
            A[inv_index[u], com_index[c]] = 1.0

        inv_groups, com_groups = self._spectral_init(A, K, rng)

        last_ll = -np.inf
        iterations = 0
        rates = np.full((K, K), _EPS)
        for sweep in range(self.max_iters):
            iterations = sweep + 1
            rates = self._estimate_rates(A, inv_groups, com_groups, K)
            new_inv = self._reassign(A, rates, com_groups, K, axis=0)
            new_com = self._reassign(A.T, rates.T, new_inv, K, axis=0)
            ll = self._log_likelihood(A, rates, new_inv, new_com)
            inv_groups, com_groups = new_inv, new_com
            if ll <= last_ll + 1e-9:
                last_ll = ll
                break
            last_ll = ll

        return SbmResult(investor_ids=investor_ids, company_ids=company_ids,
                         investor_groups=inv_groups,
                         company_groups=com_groups, rates=rates,
                         iterations=iterations,
                         log_likelihood=float(last_ll))

    # ------------------------------------------------------------- internals
    def _spectral_init(self, A: np.ndarray, K: int, rng: RngStream):
        n, m = A.shape
        row_deg = np.maximum(1.0, A.sum(axis=1))
        col_deg = np.maximum(1.0, A.sum(axis=0))
        normalized = A / np.sqrt(row_deg)[:, None] / np.sqrt(col_deg)[None, :]
        # Randomized-free exact thin SVD; matrices here are small.
        U, _s, Vt = np.linalg.svd(normalized, full_matrices=False)
        dims = min(K, U.shape[1])
        inv_embed = U[:, :dims]
        com_embed = Vt[:dims, :].T
        inv_groups = _kmeans(inv_embed, K, rng)
        com_groups = _kmeans(com_embed, K, rng)
        return inv_groups, com_groups

    @staticmethod
    def _estimate_rates(A: np.ndarray, inv_groups: np.ndarray,
                        com_groups: np.ndarray, K: int) -> np.ndarray:
        rates = np.full((K, K), _EPS)
        inv_onehot = np.eye(K)[inv_groups]           # (n, K)
        com_onehot = np.eye(K)[com_groups]           # (m, K)
        edges = inv_onehot.T @ A @ com_onehot        # (K, K) edge counts
        sizes = np.outer(inv_onehot.sum(axis=0), com_onehot.sum(axis=0))
        np.divide(edges, np.maximum(1.0, sizes), out=rates)
        return np.maximum(rates, _EPS)

    @staticmethod
    def _reassign(A: np.ndarray, rates: np.ndarray,
                  other_groups: np.ndarray, K: int, axis: int) -> np.ndarray:
        other_onehot = np.eye(K)[other_groups]       # (m, K)
        edge_counts = A @ other_onehot               # (n, K) edges into group
        group_sizes = other_onehot.sum(axis=0)       # (K,)
        log_rates = np.log(rates)                    # (K, K)
        # score[u, g] = Σ_h edges(u,h) log λ_gh − |h| λ_gh
        scores = edge_counts @ log_rates.T - group_sizes @ rates.T
        return np.argmax(scores, axis=1)

    @staticmethod
    def _log_likelihood(A: np.ndarray, rates: np.ndarray,
                        inv_groups: np.ndarray,
                        com_groups: np.ndarray) -> float:
        lam = rates[np.ix_(inv_groups, com_groups)]
        return float((A * np.log(lam) - lam).sum())


def _kmeans(points: np.ndarray, k: int, rng: RngStream,
            iters: int = 25) -> np.ndarray:
    """Plain Lloyd's k-means with k-means++-style farthest-point init."""
    n = points.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    k = min(k, n)
    centers = [points[rng.py.randrange(n)]]
    for _ in range(1, k):
        dists = np.min(
            [np.sum((points - c) ** 2, axis=1) for c in centers], axis=0)
        total = dists.sum()
        if total <= 0:
            centers.append(points[rng.py.randrange(n)])
            continue
        draw = rng.uniform(0, total)
        centers.append(points[int(np.searchsorted(np.cumsum(dists), draw))])
    centers = np.array(centers)
    labels = np.zeros(n, dtype=np.int64)
    for _ in range(iters):
        dists = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        new_labels = dists.argmin(axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for c in range(k):
            mask = labels == c
            if mask.any():
                centers[c] = points[mask].mean(axis=0)
    return labels
