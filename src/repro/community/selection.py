"""Choosing the number of communities by held-out edge prediction.

The paper takes CoDA's community count as given (96); SNAP's tooling
selects it by cross-validation on held-out edges. This module
reproduces that selection: hide a fraction of edges, fit CoDA for each
candidate C on the rest, and score how well the fitted affiliations
predict the hidden edges against an equal number of sampled non-edges
(link-prediction AUC). The best C maximizes held-out AUC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.community.coda import CoDA, CodaResult
from repro.graph.bipartite import BipartiteGraph
from repro.util.rng import RngStream


@dataclass
class SelectionResult:
    """Outcome of the model-selection sweep."""

    best_num_communities: int
    scores: Dict[int, float]          # candidate C → held-out AUC
    holdout_edges: int

    def ranked(self) -> List[Tuple[int, float]]:
        return sorted(self.scores.items(), key=lambda kv: -kv[1])


def split_edges(graph: BipartiteGraph, holdout_fraction: float,
                rng: RngStream) -> Tuple[BipartiteGraph,
                                         List[Tuple[int, int]]]:
    """Randomly hide ``holdout_fraction`` of edges; returns (train, held)."""
    if not 0.0 < holdout_fraction < 1.0:
        raise ValueError("holdout_fraction must be in (0, 1)")
    edges = sorted(graph.edges())
    rng.shuffle(edges)
    cut = max(1, int(round(len(edges) * holdout_fraction)))
    held, train = edges[:cut], edges[cut:]
    return BipartiteGraph(train), held


def edge_scores(result: CodaResult,
                pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
    """Model probability of each (investor, company) pair existing."""
    inv_index = {u: i for i, u in enumerate(result.investor_ids)}
    com_index = {c: j for j, c in enumerate(result.company_ids)}
    scores = np.zeros(len(pairs))
    for k, (u, c) in enumerate(pairs):
        i, j = inv_index.get(u), com_index.get(c)
        if i is None or j is None:
            continue  # cold node: probability ≈ background (score 0)
        scores[k] = 1.0 - float(np.exp(-result.F[i] @ result.H[j]))
    return scores


def holdout_auc(result: CodaResult, held: Sequence[Tuple[int, int]],
                graph: BipartiteGraph, rng: RngStream) -> float:
    """AUC of held-out edges vs an equal number of sampled non-edges."""
    from repro.analysis.prediction import auc_score
    investors = graph.investors
    companies = graph.companies
    existing = set(graph.edges()) | set(held)
    negatives: List[Tuple[int, int]] = []
    attempts = 0
    while len(negatives) < len(held) and attempts < 50 * len(held):
        attempts += 1
        pair = (rng.choice(investors), rng.choice(companies))
        if pair not in existing:
            negatives.append(pair)
    pairs = list(held) + negatives
    labels = np.array([1.0] * len(held) + [0.0] * len(negatives))
    return auc_score(labels, edge_scores(result, pairs))


def select_num_communities(graph: BipartiteGraph,
                           candidates: Sequence[int],
                           holdout_fraction: float = 0.2,
                           max_iters: int = 30,
                           seed: int = 0) -> SelectionResult:
    """Sweep candidate community counts; return the AUC-best one."""
    if not candidates:
        raise ValueError("need at least one candidate community count")
    rng = RngStream(seed, "selection")
    train, held = split_edges(graph, holdout_fraction, rng.child("split"))
    scores: Dict[int, float] = {}
    for num in candidates:
        result = CoDA(num_communities=num, max_iters=max_iters,
                      seed=seed).fit(train)
        scores[num] = holdout_auc(result, held, train, rng.child(f"neg{num}"))
    best = max(scores, key=lambda c: scores[c])
    return SelectionResult(best_num_communities=best, scores=scores,
                           holdout_edges=len(held))
