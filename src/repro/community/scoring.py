"""Scoring detected communities against planted ground truth.

Uses the average best-match F1 of Yang & Leskovec: for each detected
community take its best F1 against any planted community, and vice
versa, then average the two directions. 1.0 = perfect recovery.
"""

from __future__ import annotations

from typing import Sequence, Set


def _f1(a: Set[int], b: Set[int]) -> float:
    if not a or not b:
        return 0.0
    intersection = len(a & b)
    if intersection == 0:
        return 0.0
    precision = intersection / len(a)
    recall = intersection / len(b)
    return 2 * precision * recall / (precision + recall)


def best_match_f1(detected: Sequence[Set[int]],
                  truth: Sequence[Set[int]]) -> float:
    """Mean over detected communities of their best F1 against truth."""
    if not detected:
        return 0.0
    return sum(max((_f1(d, t) for t in truth), default=0.0)
               for d in detected) / len(detected)


def cover_f1(detected: Sequence[Set[int]],
             truth: Sequence[Set[int]]) -> float:
    """Symmetric average of the two best-match directions."""
    return 0.5 * (best_match_f1(detected, truth)
                  + best_match_f1(truth, detected))
