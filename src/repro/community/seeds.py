"""Seed selection for affiliation-model initialization.

CoDA seeds communities from locally dense neighborhoods. Here we pick
high-in-degree companies greedily while penalizing backer-set overlap
with already-chosen seeds, so the C initial communities start from
different regions of the graph.
"""

from __future__ import annotations

from typing import List, Set

from repro.graph.bipartite import BipartiteGraph
from repro.util.rng import RngStream


def select_seed_companies(graph: BipartiteGraph, count: int,
                          rng: RngStream,
                          max_overlap: float = 0.5) -> List[int]:
    """Pick up to ``count`` companies with large, mutually distinct backers.

    Companies are scanned in decreasing in-degree; a candidate is skipped
    while the Jaccard overlap of its backer set with any chosen seed's
    exceeds ``max_overlap``. If the supply of distinct neighborhoods runs
    out, remaining seeds are filled with random companies so callers
    always get ``count`` seeds (when the graph has that many companies).
    """
    ranked = sorted(graph.companies,
                    key=lambda c: graph.in_degree(c), reverse=True)
    chosen: List[int] = []
    chosen_backers: List[Set[int]] = []
    for company in ranked:
        if len(chosen) >= count:
            break
        backers = graph.backers(company)
        if not backers:
            continue
        if any(_jaccard(backers, prior) > max_overlap
               for prior in chosen_backers):
            continue
        chosen.append(company)
        chosen_backers.append(set(backers))
    remaining = [c for c in ranked if c not in set(chosen)]
    while len(chosen) < count and remaining:
        pick = remaining.pop(rng.py.randrange(len(remaining)))
        chosen.append(pick)
    return chosen


def _jaccard(a: Set[int], b: Set[int]) -> float:
    if not a and not b:
        return 0.0
    return len(a & b) / len(a | b)
