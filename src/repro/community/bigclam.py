"""BigCLAM baseline on the undirected co-investment projection.

BigCLAM (Yang & Leskovec, WSDM '13) is the undirected ancestor of CoDA:
one non-negative affiliation matrix F, edge probability
``1 − exp(−F_u · F_v)``. The paper's §6 notes that classic detectors
assume undirected one-mode graphs — this baseline makes that concrete by
first projecting the bipartite graph onto investors (edge when two
investors share ≥ ``min_overlap`` companies) and then fitting the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.util.rng import RngStream

_EPS = 1e-10
_MAX_AFFILIATION = 12.0


@dataclass
class BigClamResult:
    """Fitted BigCLAM model over projected investors."""

    investor_ids: List[int]
    F: np.ndarray
    delta: float
    iterations: int
    communities: Dict[int, Set[int]] = field(default_factory=dict)

    @property
    def num_communities(self) -> int:
        return len(self.communities)


class BigClam:
    """Fits BigCLAM to the investor projection of a bipartite graph."""

    def __init__(self, num_communities: int, max_iters: int = 60,
                 seed: int = 0, min_overlap: int = 1,
                 min_community_size: int = 2):
        if num_communities < 1:
            raise ValueError("num_communities must be >= 1")
        self.num_communities = num_communities
        self.max_iters = max_iters
        self.seed = seed
        self.min_overlap = min_overlap
        self.min_community_size = min_community_size

    def fit(self, graph: BipartiteGraph) -> BigClamResult:
        rng = RngStream(self.seed, "bigclam")
        projection = graph.investor_projection()
        adjacency: Dict[int, Set[int]] = {}
        for (a, b), weight in projection.items():
            if weight >= self.min_overlap:
                adjacency.setdefault(a, set()).add(b)
                adjacency.setdefault(b, set()).add(a)
        investor_ids = sorted(adjacency)
        index = {uid: i for i, uid in enumerate(investor_ids)}
        n = len(investor_ids)
        C = self.num_communities
        if n == 0:
            return BigClamResult(investor_ids=[], F=np.zeros((0, C)),
                                 delta=0.0, iterations=0)
        neighbors = [np.array(sorted(index[v] for v in adjacency[uid]),
                              dtype=np.int64)
                     for uid in investor_ids]

        F = 0.1 * rng.np.random((n, C))
        # Seed: highest-degree nodes' neighborhoods.
        ranked = sorted(range(n), key=lambda i: len(neighbors[i]),
                        reverse=True)
        for c, i in enumerate(ranked[:C]):
            F[i, c] += 1.0
            F[neighbors[i], c] += 1.0

        sum_F = F.sum(axis=0)
        iterations = 0
        for sweep in range(self.max_iters):
            iterations = sweep + 1
            order = list(range(n))
            rng.shuffle(order)
            moved = 0.0
            for i in order:
                sum_F -= F[i]
                updated = _update_row_undirected(F[i], F, neighbors[i], sum_F)
                moved += float(np.abs(updated - F[i]).sum())
                F[i] = updated
                sum_F += F[i]
            if moved < 1e-3 * n:
                break

        edges = sum(len(nbrs) for nbrs in neighbors) / 2
        density = edges / max(1, n * (n - 1) / 2)
        delta = float(np.sqrt(-np.log(max(_EPS, 1.0 - density))))
        result = BigClamResult(investor_ids=investor_ids, F=F, delta=delta,
                               iterations=iterations)
        for c in range(C):
            members = {investor_ids[i]
                       for i in np.nonzero(F[:, c] >= delta)[0]}
            if len(members) >= self.min_community_size:
                result.communities[len(result.communities)] = members
        return result


def _update_row_undirected(row: np.ndarray, F: np.ndarray,
                           neighbors: np.ndarray, sum_other: np.ndarray,
                           step: float = 0.3, backtracks: int = 5) -> np.ndarray:
    if neighbors.size == 0:
        return np.zeros_like(row)
    nbr_vecs = F[neighbors]
    nbr_sum = nbr_vecs.sum(axis=0)

    def objective(candidate: np.ndarray) -> float:
        dots = np.maximum(_EPS, nbr_vecs @ candidate)
        return float(np.log1p(-np.exp(-dots) + _EPS).sum()
                     - candidate @ (sum_other - nbr_sum))

    dots = np.maximum(_EPS, nbr_vecs @ row)
    weights = np.exp(-dots) / np.maximum(_EPS, 1.0 - np.exp(-dots))
    grad = weights @ nbr_vecs - (sum_other - nbr_sum)
    current = objective(row)
    scale = step
    for _ in range(backtracks):
        candidate = np.clip(row + scale * grad, 0.0, _MAX_AFFILIATION)
        if objective(candidate) > current:
            return candidate
        scale *= 0.5
    return row
