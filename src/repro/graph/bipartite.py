"""Bipartite investment graph with the paper's §5.1 statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

import numpy as np


@dataclass
class DegreeConcentration:
    """One row of the §5.1 concentration analysis.

    "Only 30% of the investors have out-degree ≥ 3. However, these
    investment edges account for 75% of all the investment edges."
    """

    min_degree: int
    investor_fraction: float
    edge_fraction: float


class BipartiteGraph:
    """Directed bipartite graph: investors → companies.

    Stored as adjacency sets both ways. Construction drops duplicate
    edges; investors enter the graph only if they have ≥ 1 investment
    (the paper omits non-investing investors).
    """

    def __init__(self, edges: Iterable[Tuple[int, int]]):
        self._out: Dict[int, Set[int]] = {}
        self._in: Dict[int, Set[int]] = {}
        count = 0
        for investor, company in edges:
            targets = self._out.setdefault(investor, set())
            if company not in targets:
                targets.add(company)
                self._in.setdefault(company, set()).add(investor)
                count += 1
        self.num_edges = count

    # ------------------------------------------------------------- basic stats
    @property
    def investors(self) -> List[int]:
        return sorted(self._out)

    @property
    def companies(self) -> List[int]:
        return sorted(self._in)

    @property
    def num_investors(self) -> int:
        return len(self._out)

    @property
    def num_companies(self) -> int:
        return len(self._in)

    def portfolio(self, investor: int) -> Set[int]:
        """Companies the investor invested in (empty set if unknown)."""
        return self._out.get(investor, set())

    def portfolios(self) -> Dict[int, Set[int]]:
        """investor → company-set map (the metrics' input format)."""
        return dict(self._out)

    def backers(self, company: int) -> Set[int]:
        return self._in.get(company, set())

    def out_degree(self, investor: int) -> int:
        return len(self._out.get(investor, ()))

    def in_degree(self, company: int) -> int:
        return len(self._in.get(company, ()))

    def out_degrees(self) -> np.ndarray:
        return np.array([len(v) for v in self._out.values()], dtype=np.int64)

    def in_degrees(self) -> np.ndarray:
        return np.array([len(v) for v in self._in.values()], dtype=np.int64)

    @property
    def mean_investors_per_company(self) -> float:
        if not self._in:
            return 0.0
        return self.num_edges / self.num_companies

    # --------------------------------------------------------------- filtering
    def filter_investors(self, min_degree: int) -> "BipartiteGraph":
        """Subgraph of investors with ≥ ``min_degree`` investments (§5.2)."""
        return BipartiteGraph(
            (inv, c)
            for inv, targets in self._out.items()
            if len(targets) >= min_degree
            for c in targets)

    # ---------------------------------------------------------------- analyses
    def degree_concentration(
            self, thresholds: Sequence[int] = (3, 4, 5)) -> List[DegreeConcentration]:
        """The §5.1 concentration rows for the given degree thresholds."""
        degrees = self.out_degrees()
        total_investors = len(degrees)
        total_edges = degrees.sum()
        rows = []
        for threshold in thresholds:
            mask = degrees >= threshold
            rows.append(DegreeConcentration(
                min_degree=threshold,
                investor_fraction=(float(mask.sum()) / total_investors
                                   if total_investors else 0.0),
                edge_fraction=(float(degrees[mask].sum()) / total_edges
                               if total_edges else 0.0),
            ))
        return rows

    def investor_projection(self) -> Dict[Tuple[int, int], int]:
        """Weighted co-investment graph: (investor, investor) → overlap.

        Used by the baseline community detectors that need an undirected
        one-mode graph. Weight = number of co-invested companies.
        """
        weights: Dict[Tuple[int, int], int] = {}
        for backers in self._in.values():
            members = sorted(backers)
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    key = (a, b)
                    weights[key] = weights.get(key, 0) + 1
        return weights

    def edges(self) -> Iterable[Tuple[int, int]]:
        for investor, targets in self._out.items():
            for company in targets:
                yield (investor, company)

    def to_networkx(self):
        """A ``networkx.DiGraph`` view (for centrality features)."""
        import networkx as nx
        graph = nx.DiGraph()
        for investor in self._out:
            graph.add_node(("i", investor), bipartite=0)
        for company in self._in:
            graph.add_node(("c", company), bipartite=1)
        for investor, company in self.edges():
            graph.add_edge(("i", investor), ("c", company))
        return graph
