"""The bipartite investor→company investment graph (§5.1).

Built by a Spark-style merge of the AngelList investments dataset with
CrunchBase funding-round investor lists, deduplicated; investors with no
investments are omitted, as in the paper.
"""

from repro.graph.bipartite import BipartiteGraph, DegreeConcentration
from repro.graph.build import build_investor_graph, merge_investment_edges

__all__ = [
    "BipartiteGraph",
    "DegreeConcentration",
    "build_investor_graph",
    "merge_investment_edges",
]
