"""Spark-style construction of the investor graph from crawled datasets.

§5.1: "The extraction is done via a parallel Spark query that merges
AngelList and CrunchBase data, and then generates as output a bipartite
graph connecting investors and companies they invested in."

AngelList contributes the investments users list on their profiles;
CrunchBase contributes the per-round investor lists. The union is
deduplicated into distinct ``(investor_id, company_id)`` edges.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.engine.context import SparkLiteContext
from repro.graph.bipartite import BipartiteGraph


def merge_investment_edges(sc: SparkLiteContext, dfs,
                           angellist_root: str = "/crawl/angellist",
                           crunchbase_dir: str = "/crawl/crunchbase/organizations",
                           ) -> List[Tuple[int, int]]:
    """The merge job; returns distinct (investor, company) edges."""
    angellist_edges = (
        sc.json_dataset(dfs, f"{angellist_root}/investments")
        .map(lambda rec: (int(rec["investor_id"]), int(rec["company_id"]))))

    crunchbase_edges = (
        sc.json_dataset(dfs, crunchbase_dir)
        .flat_map(lambda org: [
            (int(investor_id), int(org["angellist_id"]))
            for round_ in org.get("funding_rounds", [])
            for investor_id in round_.get("investor_ids", [])]))

    return angellist_edges.union(crunchbase_edges).distinct().collect()


def build_investor_graph(sc: SparkLiteContext, dfs,
                         angellist_root: str = "/crawl/angellist",
                         crunchbase_dir: str = "/crawl/crunchbase/organizations",
                         ) -> BipartiteGraph:
    """Merged, deduplicated bipartite investment graph."""
    edges = merge_investment_edges(sc, dfs, angellist_root, crunchbase_dir)
    return BipartiteGraph(edges)
