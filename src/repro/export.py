"""Exporters: CSV tables and GraphML graphs for downstream tools.

§3 promises "familiar interfaces to social scientists, so that they can
directly validate theories using computational platforms such as R,
Matlab, and SPSS". Those platforms read CSV; graph tools (Gephi, igraph)
read GraphML. Everything here writes to the *local* filesystem (the
hand-off boundary out of the platform), not the simulated DFS.
"""

from __future__ import annotations

import csv
import xml.sax.saxutils as saxutils
from typing import Dict, Optional, Sequence

from repro.analysis.engagement import EngagementTable
from repro.engine.dataframe import DataFrame
from repro.graph.bipartite import BipartiteGraph


def write_csv(path: str, rows: Sequence[Dict],
              columns: Optional[Sequence[str]] = None) -> int:
    """Write dict rows as CSV; returns the number of data rows."""
    rows = list(rows)
    if columns is None:
        if not rows:
            raise ValueError("cannot infer columns from zero rows")
        columns = sorted(rows[0].keys())
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns),
                                extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return len(rows)


def dataframe_to_csv(frame: DataFrame, path: str) -> int:
    """Materialize a DataFrame and write it as CSV."""
    return write_csv(path, frame.collect(), columns=frame.columns)


def engagement_table_to_csv(table: EngagementTable, path: str) -> int:
    """The Figure 6 table as CSV (with success counts and Wilson CIs)."""
    rows = []
    for row in table.rows:
        lo, hi = row.wilson_ci()
        rows.append({
            "category": row.label,
            "companies": row.companies,
            "company_pct": round(row.company_pct, 4),
            "successes": row.successes,
            "success_pct": round(row.success_pct, 4),
            "success_ci_low_pct": round(100 * lo, 4),
            "success_ci_high_pct": round(100 * hi, 4),
        })
    return write_csv(path, rows,
                     columns=["category", "companies", "company_pct",
                              "successes", "success_pct",
                              "success_ci_low_pct", "success_ci_high_pct"])


def graph_to_graphml(graph: BipartiteGraph, path: str) -> int:
    """The bipartite investment graph as GraphML; returns edge count.

    Node ids are ``i<uid>`` / ``c<cid>`` with a ``kind`` attribute, so
    Gephi/igraph can color the two modes (as in Figure 7).
    """
    lines = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        '<graphml xmlns="http://graphml.graphdrawing.org/xmlns">',
        '<key id="kind" for="node" attr.name="kind" attr.type="string"/>',
        '<graph id="investments" edgedefault="directed">',
    ]
    for investor in graph.investors:
        lines.append(f'<node id="i{investor}"><data key="kind">'
                     'investor</data></node>')
    for company in graph.companies:
        lines.append(f'<node id="c{company}"><data key="kind">'
                     'company</data></node>')
    edge_count = 0
    for investor, company in graph.edges():
        lines.append(f'<edge source="i{investor}" target="c{company}"/>')
        edge_count += 1
    lines.append("</graph></graphml>")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines))
    return edge_count


def edges_to_csv(graph: BipartiteGraph, path: str) -> int:
    """Plain ``investor_id,company_id`` edge list (R/pandas-friendly)."""
    rows = [{"investor_id": u, "company_id": c} for u, c in graph.edges()]
    rows.sort(key=lambda r: (r["investor_id"], r["company_id"]))
    return write_csv(path, rows, columns=["investor_id", "company_id"])
