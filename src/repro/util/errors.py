"""Exception hierarchy for the repro library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch one base type at platform
boundaries while still distinguishing failure modes.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration value is missing, malformed, or inconsistent."""


class CrawlError(ReproError):
    """A crawl operation failed after exhausting its retry budget."""


class RateLimitExceeded(CrawlError):
    """A simulated API rejected a request because its rate limit was hit.

    Attributes:
        retry_after: seconds (simulated) until the limit window resets.
    """

    def __init__(self, message: str, retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = retry_after


class AuthError(CrawlError):
    """An access token was missing, expired, or invalid."""


class DeadLetterError(CrawlError):
    """A request exhausted its retries but was parked in a dead-letter
    queue for replay — the record is delayed, not lost.

    Attributes:
        letter_path: DFS path of the persisted dead letter.
    """

    def __init__(self, message: str, letter_path: str = ""):
        super().__init__(message)
        self.letter_path = letter_path


class NotFoundError(ReproError):
    """A requested entity, file, or path does not exist."""


class StorageError(ReproError):
    """The DFS rejected an operation (bad path, missing block, etc.)."""


class EngineError(ReproError):
    """The dataflow engine failed to plan or execute a job."""


class IngestError(ReproError):
    """The continuous-ingest tier hit an unrecoverable protocol error."""


class LeaseExpired(IngestError):
    """A worker's lease on a work unit lapsed or was fenced off.

    Raised by the ingest ledger when a heartbeat or commit arrives from
    an owner whose lease has expired or been reassigned (stale epoch).
    The worker must abandon the unit; the landing protocol guarantees
    whatever it already wrote is idempotent under redelivery.
    """


class IngestKilled(IngestError):
    """A simulated SIGKILL hit the ingest pipeline at a ledger state.

    Carries where the kill landed so chaos drills can assert coverage.
    """

    def __init__(self, unit: str, state: str):
        super().__init__(f"ingest killed at {unit} [{state}]")
        self.unit = unit
        self.state = state
