"""Deterministic, hierarchical random-number streams.

Reproducibility rule: every stochastic component takes an :class:`RngStream`
(or a seed) explicitly — nothing in the library touches the global
``random`` module state. Child streams are derived by hashing the parent
seed with a label, so adding a new consumer never perturbs existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator, Optional, Sequence, TypeVar

import numpy as np

T = TypeVar("T")

_MASK64 = (1 << 64) - 1


def derive_seed(seed: int, label: str) -> int:
    """Derive a stable 64-bit child seed from ``seed`` and a text label."""
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & _MASK64


class RngStream:
    """A named, seeded stream exposing both stdlib and numpy generators.

    The two generators share a seed derivation but are independent objects;
    use ``.py`` for discrete choices over Python objects and ``.np`` for
    vectorized draws.
    """

    def __init__(self, seed: int, label: str = "root"):
        self.seed = seed & _MASK64
        self.label = label
        self.py = random.Random(self.seed)
        self.np = np.random.default_rng(self.seed)

    def child(self, label: str) -> "RngStream":
        """Create an independent stream keyed by ``label``."""
        return RngStream(derive_seed(self.seed, label), label)

    def children(self, label: str, count: int) -> Iterator["RngStream"]:
        """Yield ``count`` independent streams ``label[0..count)``."""
        for index in range(count):
            yield self.child(f"{label}[{index}]")

    # Convenience passthroughs used pervasively in the generator code.
    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return self.py.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Inclusive-range integer, mirroring ``random.Random.randint``."""
        return self.py.randint(low, high)

    def choice(self, items: Sequence[T]) -> T:
        return self.py.choice(items)

    def sample(self, items: Sequence[T], k: int) -> list:
        return self.py.sample(items, k)

    def shuffle(self, items: list) -> None:
        self.py.shuffle(items)

    def bernoulli(self, probability: float) -> bool:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability out of range: {probability}")
        return self.py.random() < probability

    def zipf_bounded(
        self,
        alpha: float,
        max_value: int,
        size: Optional[int] = None,
    ):
        """Draw from a Zipf distribution truncated to ``[1, max_value]``.

        Rejection-free: samples ranks from the normalized discrete
        power-law directly, which keeps the heavy tail without the
        unbounded draws ``numpy.random.zipf`` can produce.
        """
        if max_value < 1:
            raise ValueError("max_value must be >= 1")
        ranks = np.arange(1, max_value + 1, dtype=np.float64)
        weights = ranks ** (-alpha)
        weights /= weights.sum()
        drawn = self.np.choice(max_value, size=size, p=weights) + 1
        if size is None:
            return int(drawn)
        return drawn.astype(np.int64)
