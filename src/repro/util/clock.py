"""Clock abstraction so rate limiters and schedulers are testable.

All time-dependent components (rate limiters, token expiry, snapshot
schedulers, the latency model) take a :class:`Clock`. Production code can
use :class:`WallClock`; tests and benchmarks use :class:`SimClock`, which
advances instantly, making "15-minute rate-limit windows" run in
microseconds while preserving ordering semantics.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Callable, List, Tuple


class Clock:
    """Interface: a monotonically non-decreasing source of seconds."""

    def now(self) -> float:
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError


class WallClock(Clock):
    """Real time, for interactive use."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class SimClock(Clock):
    """Simulated time that advances only when asked to.

    ``sleep`` advances the clock immediately and fires any timers that
    become due, so a crawl that would spend hours waiting on rate-limit
    windows completes in wall-clock milliseconds.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._timers: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot sleep a negative duration: {seconds}")
        self.advance(seconds)

    def advance(self, seconds: float) -> None:
        """Move time forward, firing due timers in order."""
        target = self._now + seconds
        while self._timers and self._timers[0][0] <= target:
            due, _, callback = heapq.heappop(self._timers)
            self._now = max(self._now, due)
            callback()
        self._now = target

    def call_at(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire when the clock reaches ``when``."""
        heapq.heappush(self._timers, (when, next(self._counter), callback))

    def call_later(self, delay: float, callback: Callable[[], None]) -> None:
        self.call_at(self._now + delay, callback)

    @property
    def pending_timers(self) -> int:
        return len(self._timers)
