"""Shared utilities: errors, seeded randomness, simulated clock, timers, stats."""

from repro.util.errors import (
    ReproError,
    ConfigError,
    CrawlError,
    RateLimitExceeded,
    AuthError,
    NotFoundError,
    StorageError,
    EngineError,
)
from repro.util.clock import Clock, SimClock, WallClock
from repro.util.rng import RngStream, derive_seed
from repro.util.timer import Timer
from repro.util.stats import (
    mean,
    median,
    quantile,
    describe,
    weighted_choice_index,
)

__all__ = [
    "ReproError",
    "ConfigError",
    "CrawlError",
    "RateLimitExceeded",
    "AuthError",
    "NotFoundError",
    "StorageError",
    "EngineError",
    "Clock",
    "SimClock",
    "WallClock",
    "RngStream",
    "derive_seed",
    "Timer",
    "mean",
    "median",
    "quantile",
    "describe",
    "weighted_choice_index",
]
