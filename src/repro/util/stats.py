"""Small numeric helpers shared across analyses.

These are deliberately tiny wrappers over numpy with input validation and
edge-case handling; the heavier statistical machinery (ECDF, DKW bounds)
lives in :mod:`repro.metrics`.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence (a count-weighted sum)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return 0.0
    return float(arr.mean())


def median(values: Sequence[float]) -> float:
    """Median; raises ``ValueError`` on empty input (no sensible default)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("median of empty sequence is undefined")
    return float(np.median(arr))


def quantile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile with linear interpolation, ``q`` in [0, 1]."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("quantile of empty sequence is undefined")
    return float(np.quantile(arr, q))


def describe(values: Sequence[float]) -> Dict[str, float]:
    """Summary statistics: count/mean/median/min/max/p90/p99."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return {"count": 0, "mean": 0.0, "median": 0.0, "min": 0.0,
                "max": 0.0, "p90": 0.0, "p99": 0.0}
    return {
        "count": int(arr.size),
        "mean": float(arr.mean()),
        "median": float(np.median(arr)),
        "min": float(arr.min()),
        "max": float(arr.max()),
        "p90": float(np.quantile(arr, 0.90)),
        "p99": float(np.quantile(arr, 0.99)),
    }


def weighted_choice_index(weights: Sequence[float], draw: float) -> int:
    """Map a uniform draw in [0, 1) to an index proportional to ``weights``.

    Used where callers hold a ``random.Random`` and want a choice without
    building a numpy Generator.
    """
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    if not 0.0 <= draw < 1.0:
        raise ValueError(f"draw must be in [0, 1), got {draw}")
    threshold = draw * total
    cumulative = 0.0
    for index, weight in enumerate(weights):
        if weight < 0:
            raise ValueError("weights must be non-negative")
        cumulative += weight
        if threshold < cumulative:
            return index
    return len(weights) - 1
