"""A small context-manager timer used by benchmarks and crawl statistics."""

from __future__ import annotations

import time


class Timer:
    """Measures wall-clock elapsed seconds as a context manager.

    Example:
        >>> with Timer() as t:
        ...     _ = sum(range(1000))
        >>> t.elapsed >= 0.0
        True
    """

    def __init__(self):
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start

    def restart(self) -> None:
        self._start = time.perf_counter()
        self.elapsed = 0.0
