"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``crawl``     — generate a world (or load one), run the full §3 crawl,
  print the populations; optionally save the world for reuse.
* ``analyze``   — run one of the built-in analyses over a fresh crawl.
* ``theory``    — test declarative hypotheses via the translation layer.
* ``snapshot``  — run the longitudinal study for N days and print the
  causality panel.
* ``ingest``    — run the durable continuous-ingest tier (write-ahead
  ledger, leases, exactly-once landing); ``--kill-at`` plus
  ``--ingest-resume`` demonstrates crash recovery.
* ``select-communities`` — sweep CoDA community counts by held-out AUC.
* ``serve``     — answer sample queries through the overload-safe online
  query tier and print per-request outcomes.
* ``serve-bench`` — replay a seeded open-loop overload schedule against
  the query tier and report shed/degradation/latency metrics.

Every command accepts ``--scale`` and ``--seed`` (or ``--world FILE`` to
reuse a saved world), and is fully offline and deterministic.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.platform import ExploratoryPlatform, PlatformConfig
from repro.world.config import WorldConfig
from repro.world.generator import World, generate_world


def _add_world_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.0125,
                        help="world scale; 1.0 = the paper's 744k crawl")
    parser.add_argument("--seed", type=int, default=20160626)
    parser.add_argument("--world", metavar="FILE",
                        help="load a world saved with 'crawl --save'")
    parser.add_argument("--engine-backend", default="thread",
                        choices=("serial", "thread", "process"),
                        help="execution backend for the SparkLite engine")
    parser.add_argument("--engine-metrics", metavar="FILE",
                        help="dump the per-stage JobMetrics trace of every "
                             "engine job as JSON")
    parser.add_argument("--fault-profile", default="none",
                        choices=("none", "flaky", "chaos", "chaos-engine",
                                 "chaos-ingest", "alert-chaos"),
                        help="inject seeded faults into every simulated "
                             "source (see repro.net.faults.FaultSchedule); "
                             "chaos-engine adds kill-worker/hang-task "
                             "faults inside the engine itself; "
                             "chaos-ingest kills the continuous-ingest "
                             "scheduler at ledger protocol steps and "
                             "lapses its leases; alert-chaos targets the "
                             "standing-query delivery path (kill "
                             "subscribers, drop acks, duplicate "
                             "deliveries) plus occasional ingest kills")
    parser.add_argument("--chaos-seed", type=int, default=0,
                        help="seed of the fault schedule; same seed, same "
                             "faults")
    parser.add_argument("--task-retries", type=int, default=1,
                        help="engine per-partition task re-execution budget")
    parser.add_argument("--shuffle-compress", action="store_true",
                        help="zlib-compress shuffle blocks above the "
                             "engine's size threshold")
    parser.add_argument("--engine-columnar", action="store_true",
                        help="run the engine's columnar hot path: "
                             "batch-at-a-time narrow ops, per-batch "
                             "combiners, typed batch shuffle blocks "
                             "(shared-memory backed on the process "
                             "backend); results are byte-identical")
    parser.add_argument("--batch-rows", type=int, default=4096,
                        metavar="ROWS",
                        help="rows per record batch for the columnar "
                             "engine")
    parser.add_argument("--broadcast-join-threshold", type=int,
                        default=256 * 1024, metavar="BYTES",
                        help="broadcast one join side when its serialized "
                             "size fits under this (0 disables)")
    parser.add_argument("--engine-adaptive", action="store_true",
                        help="adaptive query planning: sample stage "
                             "cardinalities at runtime, coalesce "
                             "undersized post-shuffle partitions, split "
                             "skewed buckets, choose broadcast joins from "
                             "observed sizes and push filters/projections "
                             "into dataset scans; results are "
                             "byte-identical to the static plans")
    parser.add_argument("--target-partition-bytes", type=int,
                        default=1 << 20, metavar="BYTES",
                        help="adaptive planner's post-shuffle partition "
                             "size target (coalesce up / split down "
                             "toward it)")
    parser.add_argument("--cache-budget", type=int,
                        default=64 * 1024 * 1024, metavar="BYTES",
                        help="LRU byte budget for persisted partitions; "
                             "over-budget entries spill to the DFS")
    parser.add_argument("--checkpoint-dir", default="/engine/checkpoints",
                        metavar="DFS_DIR",
                        help="DFS directory where RDD.checkpoint() "
                             "persists partitions (lineage truncation)")
    parser.add_argument("--speculation", action="store_true",
                        help="launch deterministic backup attempts for "
                             "straggler partition tasks (first result "
                             "wins, outputs byte-identical)")
    parser.add_argument("--task-deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="per-task zombie deadline; a partition task "
                             "running longer is replaced in-driver")


def _resolve_world(args: argparse.Namespace) -> World:
    if args.world:
        from repro.world.io import load_world
        return load_world(args.world)
    return generate_world(WorldConfig(scale=args.scale, seed=args.seed))


def _platform_config(args: argparse.Namespace) -> PlatformConfig:
    from repro.net.faults import FaultSchedule
    profile = getattr(args, "fault_profile", "none")
    config = PlatformConfig(
        engine_backend=getattr(args, "engine_backend", "thread"),
        task_retries=getattr(args, "task_retries", 1),
        shuffle_compress=getattr(args, "shuffle_compress", False),
        engine_columnar=getattr(args, "engine_columnar", False),
        batch_rows=getattr(args, "batch_rows", 4096),
        broadcast_join_threshold=getattr(
            args, "broadcast_join_threshold", 256 * 1024),
        engine_adaptive=getattr(args, "engine_adaptive", False),
        target_partition_bytes=getattr(
            args, "target_partition_bytes", 1 << 20),
        cache_budget=getattr(args, "cache_budget", 64 * 1024 * 1024),
        checkpoint_dir=getattr(args, "checkpoint_dir",
                               "/engine/checkpoints"),
        speculation=getattr(args, "speculation", False),
        task_deadline=getattr(args, "task_deadline", None),
        faults=FaultSchedule.from_profile(
            profile, seed=getattr(args, "chaos_seed", 0)))
    if profile in ("chaos", "chaos-engine"):
        # survive brownout windows: retry harder, decorrelate workers
        config.client_max_retries = 10
        config.client_backoff_jitter = 0.25
    return config


def _dump_engine_metrics(platform: ExploratoryPlatform,
                         args: argparse.Namespace) -> None:
    path = getattr(args, "engine_metrics", None)
    if not path:
        return
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(platform.sc.metrics_trace.to_json() + "\n")
    print(f"engine metrics ({len(platform.sc.metrics_trace)} jobs) "
          f"written to {path}")


def _crawled_platform(args: argparse.Namespace) -> ExploratoryPlatform:
    platform = ExploratoryPlatform(_resolve_world(args),
                                   config=_platform_config(args))
    platform.run_full_crawl()
    return platform


def cmd_crawl(args: argparse.Namespace) -> int:
    world = _resolve_world(args)
    if args.save:
        from repro.world.io import save_world
        save_world(world, args.save)
        print(f"world saved to {args.save}")
    platform = ExploratoryPlatform(world, config=_platform_config(args))
    summary = platform.run_full_crawl()
    bfs = summary.angellist
    print(f"crawled {bfs.startups:,} startups and {bfs.users:,} users "
          f"in {len(bfs.rounds)} BFS rounds "
          f"({bfs.client_stats.requests:,} requests, "
          f"{bfs.sim_duration / 3600:.1f} simulated hours)")
    print(f"augmented {summary.crunchbase.records:,} CrunchBase orgs "
          f"({summary.crunchbase.matched_by_url:,} by URL, "
          f"{summary.crunchbase.matched_by_search:,} by name search)")
    print(f"enriched {summary.facebook.fetched:,} Facebook pages and "
          f"{summary.twitter.fetched:,} Twitter profiles")
    _dump_engine_metrics(platform, args)
    platform.close()
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    platform = _crawled_platform(args)
    try:
        if args.what == "engagement":
            table = platform.run_plugin("engagement_table")
            print(table.render())
            print(f"\nFacebook lift vs no-social: "
                  f"{table.success_lift('Facebook only'):.0f}x")
        elif args.what == "investors":
            activity = platform.run_plugin("investor_activity")
            print(activity.render_cdf())
            print(f"mean={activity.mean_investments:.2f} "
                  f"median={activity.median_investments:.0f} "
                  f"max={activity.max_investments} "
                  f"mean_follows={activity.mean_follows_per_investor:.1f}")
        elif args.what == "concentration":
            print(platform.run_plugin("concentration").render())
        elif args.what == "communities":
            study = platform.run_plugin("community_study",
                                        global_pairs=args.pairs)
            print(f"{study.coda.num_communities} communities, "
                  f"avg size {study.coda.average_community_size:.1f}")
            print(f"mean shared-investor pct: {study.mean_shared_pct:.1f}% "
                  f"(random control {study.randomized_mean_shared_pct:.1f}%)")
            strong = study.strength(study.strong_community_id)
            print(f"strongest: size={strong.size} "
                  f"avg_shared={strong.avg_shared_size:.2f} "
                  f"pct={strong.shared_investor_pct:.1f}%")
        elif args.what == "prediction":
            result = platform.run_plugin("success_prediction")
            print(f"held-out AUC: {result.test_auc:.3f} "
                  f"(positive rate {100 * result.positive_rate:.2f}%)")
            for name, coef in result.top_features(6):
                print(f"  {name:<22} {coef:+.3f}")
        else:  # pragma: no cover - argparse restricts choices
            raise AssertionError(args.what)
    finally:
        _dump_engine_metrics(platform, args)
        platform.close()
    return 0


def cmd_theory(args: argparse.Namespace) -> int:
    from repro.core.theories import TheoryEngine
    platform = _crawled_platform(args)
    try:
        engine = TheoryEngine.over_platform(platform)
        for hypothesis in args.hypotheses:
            print(engine.test(hypothesis).render())
            print()
    finally:
        _dump_engine_metrics(platform, args)
        platform.close()
    return 0


def cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.analysis.longitudinal import analyze_snapshots
    from repro.crawl.snapshots import SnapshotScheduler
    from repro.dfs.filesystem import MiniDfs
    from repro.sources.hub import SourceHub
    from repro.world.dynamics import WorldDynamics

    world = _resolve_world(args)
    hub = SourceHub.from_world(world)
    dynamics = WorldDynamics(world, seed=args.seed,
                             base_close_hazard=args.hazard)
    dfs = MiniDfs()
    scheduler = SnapshotScheduler(hub, dynamics, dfs)
    history = scheduler.run(days=args.days)
    closed = sum(s.rounds_closed for s in history)
    print(f"tracked {history[-1].tracked} startups over {args.days} days; "
          f"{closed} rounds closed")
    result = analyze_snapshots(dfs, window=args.window)
    print(f"pre-event engagement lift: {result.pre_event_lift:.2f}x")
    print(f"post-event follower bump: "
          f"+{result.post_event_follower_bump:.0f}")
    return 0


def _alerting_setup(platform: ExploratoryPlatform,
                    args: argparse.Namespace):
    """Register --subscribe/--subscribers standing queries and return
    (registry, evaluator, outbox), or None on a malformed spec."""
    import random

    from repro.serve.outbox import Subscriber
    from repro.serve.subscriptions import SUBSCRIPTION_KINDS

    # predicates need community labels + the follow graph
    platform.run_full_crawl()
    registry = platform.subscription_registry()
    subscribers = {}

    def ensure(sub) -> None:
        subscribers.setdefault(
            sub.subscriber_id,
            Subscriber(sub.subscriber_id, tenant=sub.tenant))

    for spec in args.subscribe:
        parts = spec.split(":")
        if len(parts) not in (2, 3) or parts[0] not in SUBSCRIPTION_KINDS \
                or not parts[1].lstrip("-").isdigit():
            print(f"--subscribe takes KIND:KEY[:TENANT] with KIND one of "
                  f"{', '.join(SUBSCRIPTION_KINDS)}; got {spec!r}",
                  file=sys.stderr)
            return None
        tenant = parts[2] if len(parts) == 3 else "default"
        ensure(registry.register(tenant, parts[0], int(parts[1])))
    if args.subscribers:
        dataset = platform.serve_dataset()
        rng = random.Random(args.seed)
        pools = {
            "company_funding": dataset.keys_for("company"),
            "community_investor": sorted(dataset.community_members),
            "neighborhood_follow": sorted(dataset.follows_out),
        }
        kinds = [k for k in SUBSCRIPTION_KINDS if pools.get(k)]
        for i in range(args.subscribers):
            kind = kinds[i % len(kinds)]
            ensure(registry.register(f"tenant-{i % 4}", kind,
                                     int(rng.choice(pools[kind]))))
    _, evaluator, outbox = platform.alerting_stack(
        registry=registry, subscribers=subscribers, seed=args.seed)
    return registry, evaluator, outbox


def cmd_ingest(args: argparse.Namespace) -> int:
    from repro.crawl.scheduler import CRASH_STATES
    from repro.net.faults import FaultSchedule
    from repro.util.errors import IngestKilled

    platform = ExploratoryPlatform(_resolve_world(args),
                                   config=_platform_config(args))
    platform.config.beat_interval_s = args.beat_interval
    platform.config.frontier_batch = args.frontier_batch
    platform.config.max_delivery_attempts = args.max_delivery_attempts
    if args.alert_chaos:
        platform.config.faults = FaultSchedule.alert_chaos(
            args.alert_chaos, seed=args.chaos_seed)
    try:
        alerting = outbox = None
        if args.subscribe or args.subscribers:
            setup = _alerting_setup(platform, args)
            if setup is None:
                return 2
            _, alerting, outbox = setup
        scheduler = platform.ingest_pipeline(alerting=alerting)
        if args.kill_at:
            unit, sep, state = args.kill_at.partition("@")
            if not sep or state not in CRASH_STATES:
                print(f"--kill-at takes UNIT@STATE with STATE one of "
                      f"{', '.join(CRASH_STATES)}", file=sys.stderr)
                return 2
            if scheduler.faults is None:
                scheduler.faults = FaultSchedule.none()
            scheduler.faults.force_ingest_kill(unit, state)
        while True:
            try:
                report = scheduler.run_until_day(args.days)
                break
            except IngestKilled as kill:
                print(f"scheduler killed at {kill.unit} [{kill.state}]")
                if not args.ingest_resume:
                    print("rerun with --ingest-resume to pick the work "
                          "back up from the write-ahead ledger")
                    return 1
                scheduler = platform.ingest_pipeline(alerting=alerting)
                pending = scheduler.ledger.pending_units()
                print(f"resumed as {scheduler.owner}: "
                      f"{len(pending)} pending unit(s) to redeliver, "
                      f"{scheduler.stats.vacuumed_files} orphan file(s) "
                      f"vacuumed")
        stats = report.stats
        print(f"day {report.day} reached in {stats.beats} beats: "
              f"{stats.units_committed} units committed, "
              f"{stats.units_redelivered} redelivered, "
              f"{stats.lands_skipped} duplicate lands absorbed, "
              f"{stats.leases_taken_over} leases taken over")
        for name, count in sorted(report.dataset_keys.items()):
            print(f"  {name:<26} {count:>7} keys")
        print(f"derived recompute scanned "
              f"{report.derived_records_scanned} delta records")
        if outbox is not None:
            outbox.drain()
            ostats = outbox.stats
            quarantined = outbox.quarantined()
            print(f"standing queries: {alerting.stats.notifications} "
                  f"notifications from "
                  f"{alerting.stats.units_evaluated} derived units "
                  f"({alerting.stats.records_scanned} delta records "
                  f"scanned, never a rescan)")
            print(f"outbox: {ostats.delivered} delivered in "
                  f"{ostats.attempts} attempts "
                  f"({ostats.failures} subscriber failures, "
                  f"{ostats.acks_dropped} dropped acks, "
                  f"{ostats.dup_deliveries} channel duplicates deduped), "
                  f"{len(quarantined)} poison subscriber(s) quarantined")
    finally:
        platform.close()
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    """Regenerate every paper artifact into an output directory."""
    import json
    import os

    from repro.analysis.strength import community_figure_svg
    from repro.viz.ascii import ascii_cdf, ascii_histogram

    os.makedirs(args.out, exist_ok=True)
    platform = _crawled_platform(args)
    try:
        def write(name: str, content: str) -> None:
            path = os.path.join(args.out, name)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(content)
            print(f"wrote {path}")

        table = platform.run_plugin("engagement_table")
        write("fig6_engagement_table.txt", table.render() + "\n")

        activity = platform.run_plugin("investor_activity")
        write("fig3_investor_cdf.txt", activity.render_cdf() + "\n")

        report = platform.run_plugin("concentration")
        write("sec51_concentration.txt", report.render() + "\n")

        study = platform.run_plugin("community_study",
                                    global_pairs=args.pairs)
        strong_cdf = next(iter(study.strong_cdfs.values()))
        write("fig4_shared_size_cdf.txt",
              ascii_cdf(list(strong_cdf._sorted),
                        label="shared investment size") + "\n")
        write("fig5_community_pdf.txt",
              ascii_histogram(study.shared_pcts, bins=10,
                              label="% companies ≥2 shared investors")
              + "\n")
        graph = platform.investor_graph()
        write("fig7a_strong.svg", community_figure_svg(
            study, graph, study.strong_community_id, title="strong"))
        write("fig7b_weak.svg", community_figure_svg(
            study, graph, study.weak_community_id, title="weak"))

        summary = {
            "engagement": {row.label: row.success_pct
                           for row in table.rows},
            "investor_activity": {
                "mean": activity.mean_investments,
                "median": activity.median_investments,
                "max": activity.max_investments},
            "communities": {
                "count": study.coda.num_communities,
                "mean_shared_pct": study.mean_shared_pct,
                "randomized_pct": study.randomized_mean_shared_pct},
        }
        write("summary.json", json.dumps(summary, indent=2) + "\n")
    finally:
        _dump_engine_metrics(platform, args)
        platform.close()
    return 0


def _add_serve_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--qps-limit", type=float, default=50.0,
                        help="sustained admitted request rate; excess "
                             "arrivals are shed at the front door")
    parser.add_argument("--queue-depth", type=int, default=16,
                        help="bounded request queue depth")
    parser.add_argument("--default-deadline", type=float, default=0.25,
                        metavar="SECONDS",
                        help="latency budget of requests without one")
    parser.add_argument("--stale-ttl", type=float, default=30.0,
                        metavar="SECONDS",
                        help="serve cached answers this old (flagged "
                             "stale) when the fresh path is unaffordable")
    parser.add_argument("--serve-workers", type=int, default=2,
                        help="simulated query worker slots")
    parser.add_argument("--slow-datanode", type=float, default=0.0,
                        metavar="SECONDS",
                        help="make one DFS datanode this slow (exercises "
                             "hedged replica reads); others get 4 ms")
    parser.add_argument("--shards", type=int, default=0,
                        help="shard the serve indexes across N scatter-"
                             "gather shard servers (0 = single node)")
    parser.add_argument("--shard-replicas", type=int, default=2,
                        help="replicas per shard server")
    parser.add_argument("--tenants", type=int, default=1,
                        help="number of tenants in the workload")
    parser.add_argument("--fair-share", action="store_true",
                        help="isolate tenants with weighted-fair "
                             "admission (per-tenant buckets + WFQ)")
    parser.add_argument("--tenant-weights", default=None,
                        metavar="W1,W2,...",
                        help="fair-share weights, one per tenant "
                             "(default: equal)")
    parser.add_argument("--autoscale", action="store_true",
                        help="enable the HealthMonitor-driven shard "
                             "replica autoscaler")


def _shard_objects(args: argparse.Namespace):
    """(shard_config, tenants, autoscale) from the serve CLI flags."""
    from repro.serve.autoscale import AutoscaleConfig
    from repro.serve.sharding import ShardConfig
    from repro.serve.tenancy import default_tenants

    if args.shards <= 0:
        return None, None, None
    shard_config = ShardConfig(num_shards=args.shards,
                               replicas=args.shard_replicas)
    tenants = None
    if args.fair_share and args.tenants > 1:
        weights = ()
        if args.tenant_weights:
            weights = [float(w) for w in args.tenant_weights.split(",")]
        tenants = default_tenants(args.tenants, weights)
    autoscale = AutoscaleConfig() if args.autoscale else None
    return shard_config, tenants, autoscale


def _serve_config(args: argparse.Namespace):
    from repro.serve.service import ServeConfig
    return ServeConfig(qps_limit=args.qps_limit,
                       queue_depth=args.queue_depth,
                       workers=args.serve_workers,
                       default_deadline_s=args.default_deadline,
                       stale_ttl_s=args.stale_ttl)


def _apply_serve_latencies(platform: ExploratoryPlatform,
                           args: argparse.Namespace) -> None:
    if args.slow_datanode <= 0:
        return
    for index, node_id in enumerate(sorted(platform.dfs.datanodes)):
        platform.dfs.set_datanode_latency(
            node_id, args.slow_datanode if index == 0 else 0.004)


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.loadgen import LoadProfile, generate_schedule

    platform = _crawled_platform(args)
    try:
        dataset = platform.serve_dataset()
        _apply_serve_latencies(platform, args)
        shard_config, tenants, autoscale = _shard_objects(args)
        if shard_config is not None:
            service = platform.sharded_query_service(
                config=_serve_config(args), shard_config=shard_config,
                tenants=tenants, autoscale=autoscale)
        else:
            service = platform.query_service(config=_serve_config(args))
        profile = LoadProfile(qps=max(1.0, args.qps_limit / 2),
                              duration_s=max(1.0,
                                             args.queries / args.qps_limit),
                              seed=args.serve_seed,
                              tenants=args.tenants if tenants else 1)
        schedule = generate_schedule(profile, dataset)[:args.queries]
        for request in schedule:
            result = service.handle(request)
            flag = " (stale)" if result.stale else ""
            print(f"{request.kind:<12} key={request.key:<8} "
                  f"[{request.priority}] -> {result.status}{flag} "
                  f"{1000 * result.latency_s:.1f} ms")
        metrics = service.metrics
        print(f"\n{metrics.offered} offered, {metrics.admitted} admitted, "
              f"{metrics.shed} shed; p50 {1000 * metrics.p50():.1f} ms, "
              f"p99 {1000 * metrics.p99():.1f} ms; "
              f"health={service.health.state}")
    finally:
        platform.close()
    return 0


def cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.net.faults import FAULT_BROWNOUT, FaultSchedule
    from repro.serve.loadgen import LoadProfile, run_bench

    platform = _crawled_platform(args)
    try:
        dataset = platform.serve_dataset()
        _apply_serve_latencies(platform, args)
        if args.serve_shard_chaos > 0:
            faults = FaultSchedule.serve_shard_chaos(
                args.serve_shard_chaos, seed=args.chaos_seed)
        elif args.serve_chaos > 0:
            faults = FaultSchedule.serve_chaos(args.serve_chaos,
                                               seed=args.chaos_seed)
        else:
            faults = FaultSchedule.none()
        if args.brownout_at is not None:
            faults.force_window(FAULT_BROWNOUT, start=args.brownout_at,
                                span=args.brownout_span, duration=0.4)
        shard_config, tenants, autoscale = _shard_objects(args)
        if shard_config is not None:
            service = platform.sharded_query_service(
                config=_serve_config(args), shard_config=shard_config,
                tenants=tenants, autoscale=autoscale, faults=faults)
        else:
            service = platform.query_service(config=_serve_config(args),
                                             faults=faults)
        profile = LoadProfile(qps=args.qps_limit * args.overload,
                              duration_s=args.duration,
                              seed=args.serve_seed,
                              tenants=args.tenants if tenants else 1)
        report = run_bench(service, dataset, profile)
        print(f"offered {report.offered} at {profile.qps:.0f} qps "
              f"({args.overload:.0f}x the {args.qps_limit:.0f} qps limit) "
              f"over {args.duration:.0f}s")
        print(f"admitted {report.admitted}, shed {report.shed} "
              f"({100 * report.shed_fraction:.1f}%), "
              f"answered {report.answered} "
              f"({100 * report.answered_fraction:.1f}% of admitted, "
              f"{report.stale_served} stale)")
        print(f"p50 {1000 * report.p50_latency_s:.1f} ms, "
              f"p99 {1000 * report.p99_latency_s:.1f} ms, "
              f"goodput {report.goodput_qps:.1f} qps, "
              f"max queue {report.max_queue_len}/{args.queue_depth}")
        print(f"hedges {report.hedges_launched} launched / "
              f"{report.hedges_won} won "
              f"({report.hedge_wasted_reads} wasted loser reads); "
              f"health={report.health_state} "
              f"after {report.health_transitions} transitions")
        if shard_config is not None:
            shards = service.metrics.per_shard
            calls = sum(c.calls for c in shards.values())
            failed = sum(c.failed_dead + c.failed_partitioned
                         + c.failed_deadline for c in shards.values())
            print(f"shards: {shard_config.num_shards} x "
                  f"{shard_config.replicas} replicas, {calls} calls "
                  f"({failed} failed), {report.partial_results} partial "
                  f"results, {report.scaling_decisions} scaling decisions")
        for tenant_id in sorted(report.per_tenant):
            row = report.per_tenant[tenant_id]
            print(f"  tenant {tenant_id}: offered {row['offered']}, "
                  f"admitted {row['admitted']}, answered "
                  f"{row['answered']}")
        if args.json:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(report.to_json() + "\n")
            print(f"report written to {args.json}")
    finally:
        platform.close()
    return 0


def cmd_select_communities(args: argparse.Namespace) -> int:
    from repro.community.selection import select_num_communities
    platform = _crawled_platform(args)
    try:
        graph = platform.investor_graph().filter_investors(4)
        result = select_num_communities(graph, args.candidates,
                                        seed=args.seed)
        print(f"held-out edges: {result.holdout_edges}")
        for num, auc in result.ranked():
            marker = "  ← best" if num == result.best_num_communities else ""
            print(f"  C={num:<4} AUC={auc:.3f}{marker}")
    finally:
        _dump_engine_metrics(platform, args)
        platform.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the ExploreDB'16 crowdfunding study")
    sub = parser.add_subparsers(dest="command", required=True)

    crawl = sub.add_parser("crawl", help="run the full §3 crawl")
    _add_world_args(crawl)
    crawl.add_argument("--save", metavar="FILE",
                       help="save the generated world (gzipped JSON)")
    crawl.set_defaults(fn=cmd_crawl)

    analyze = sub.add_parser("analyze", help="run a built-in analysis")
    _add_world_args(analyze)
    analyze.add_argument("what", choices=("engagement", "investors",
                                          "concentration", "communities",
                                          "prediction"))
    analyze.add_argument("--pairs", type=int, default=50_000,
                         help="global pair-sample size for Figure 4")
    analyze.set_defaults(fn=cmd_analyze)

    theory = sub.add_parser(
        "theory", help='test hypotheses, e.g. "raised ~ has_facebook"')
    _add_world_args(theory)
    theory.add_argument("hypotheses", nargs="+")
    theory.set_defaults(fn=cmd_theory)

    snapshot = sub.add_parser("snapshot", help="longitudinal study")
    _add_world_args(snapshot)
    snapshot.add_argument("--days", type=int, default=30)
    snapshot.add_argument("--window", type=int, default=3)
    snapshot.add_argument("--hazard", type=float, default=0.02)
    snapshot.set_defaults(fn=cmd_snapshot)

    ingest = sub.add_parser(
        "ingest", help="run the durable continuous-ingest tier")
    _add_world_args(ingest)
    ingest.add_argument("--days", type=int, default=5,
                        help="run until this simulated day fully commits")
    ingest.add_argument("--beat-interval", type=float, default=60.0,
                        metavar="SECONDS",
                        help="simulated seconds between scheduler beats")
    ingest.add_argument("--frontier-batch", type=int, default=16,
                        help="frontier entities expanded per work unit")
    ingest.add_argument("--kill-at", metavar="UNIT@STATE",
                        help="SIGKILL-equivalent the scheduler when UNIT "
                             "(e.g. day-0002:snapshot) reaches STATE "
                             "(pre-intent/post-intent/mid-land/"
                             "pre-commit/post-commit)")
    ingest.add_argument("--ingest-resume", action="store_true",
                        help="after a kill, construct a fresh scheduler "
                             "over the same storage and resume from the "
                             "write-ahead ledger")
    ingest.add_argument("--subscribe", action="append", default=[],
                        metavar="KIND:KEY[:TENANT]",
                        help="register a standing query before ingest "
                             "starts (kinds: community_investor, "
                             "company_funding, neighborhood_follow; "
                             "tenant defaults to 'default'); repeatable. "
                             "Matched events are delivered through the "
                             "durable outbox after the run")
    ingest.add_argument("--subscribers", type=int, default=0, metavar="N",
                        help="additionally register N synthetic standing "
                             "queries spread across kinds and tenants "
                             "(deterministic in --seed)")
    ingest.add_argument("--max-delivery-attempts", type=int, default=5,
                        help="failed outbox deliveries before a "
                             "subscriber is quarantined as poison")
    ingest.add_argument("--alert-chaos", type=float, default=0.0,
                        metavar="INTENSITY",
                        help="seeded delivery-path fault intensity "
                             "(kill_subscriber/drop_ack/dup_deliver + "
                             "rare ingest kills; 0 disables, 1.0 = the "
                             "alert-chaos profile)")
    ingest.set_defaults(fn=cmd_ingest)

    figures = sub.add_parser(
        "figures", help="regenerate every paper artifact into a directory")
    _add_world_args(figures)
    figures.add_argument("--out", default="artifacts")
    figures.add_argument("--pairs", type=int, default=50_000)
    figures.set_defaults(fn=cmd_figures)

    select = sub.add_parser("select-communities",
                            help="sweep CoDA community counts")
    _add_world_args(select)
    select.add_argument("--candidates", type=int, nargs="+",
                        default=[6, 12, 24, 48])
    select.set_defaults(fn=cmd_select_communities)

    serve = sub.add_parser(
        "serve", help="answer sample queries via the online query tier")
    _add_world_args(serve)
    _add_serve_args(serve)
    serve.add_argument("--queries", type=int, default=20,
                       help="number of sample queries to answer")
    serve.add_argument("--serve-seed", type=int, default=0,
                       help="seed of the sampled query schedule")
    serve.set_defaults(fn=cmd_serve)

    bench = sub.add_parser(
        "serve-bench",
        help="replay a seeded overload schedule against the query tier")
    _add_world_args(bench)
    _add_serve_args(bench)
    bench.add_argument("--overload", type=float, default=10.0,
                       help="offered load as a multiple of --qps-limit")
    bench.add_argument("--duration", type=float, default=10.0,
                       metavar="SECONDS",
                       help="simulated length of the arrival schedule")
    bench.add_argument("--serve-seed", type=int, default=0,
                       help="seed of the arrival schedule")
    bench.add_argument("--brownout-at", type=int, default=None,
                       metavar="INDEX",
                       help="force a backend brownout window starting at "
                            "this backend-request index")
    bench.add_argument("--brownout-span", type=int, default=20,
                       help="length of the forced brownout window")
    bench.add_argument("--serve-chaos", type=float, default=0.0,
                       metavar="INTENSITY",
                       help="seeded request-path fault intensity "
                            "(0 disables; 1.0 = the chaos profile)")
    bench.add_argument("--serve-shard-chaos", type=float, default=0.0,
                       metavar="INTENSITY",
                       help="seeded shard-tier fault intensity: replica "
                            "slowdowns, shard partitions, shard kills "
                            "(0 disables; takes precedence over "
                            "--serve-chaos)")
    bench.add_argument("--json", metavar="FILE",
                       help="write the full BenchReport as JSON")
    bench.set_defaults(fn=cmd_serve_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
