"""Sharded scatter-gather serving with partial-result deadlines.

The single-node :class:`~repro.serve.service.QueryService` keeps every
index in one process — one failure domain. This module splits the
:class:`~repro.serve.dataset.ServeDataset` into N hash shards, gives
each shard R simulated replicas booted from a DFS-persisted index, and
routes every query through a coordinator:

* **routing** — point kinds (company / investor / engagement) go to the
  key's owner shard; community membership is a two-phase owner-lookup +
  all-shard fragment scatter; neighborhood BFS scatters each hop's
  frontier to the owner shards and merges adjacency in frontier order,
  so a fully-answered query is *byte-identical* to the unsharded oracle;
* **per-shard deadline budgets** — each fan-out call gets the request's
  remaining budget minus the degradation-ladder reserve; a call that
  cannot finish inside its budget is abandoned at the budget boundary,
  so the coordinator always has time left to degrade gracefully and the
  p99-under-deadline contract holds by construction;
* **replica failover + hedging** — dead replicas cost a detection fee
  and the call rotates to the next; a slow chosen replica is hedged to a
  sibling after ``hedge_after_s`` and the faster path wins;
* **partial results** — a query that loses shards inside its deadline
  returns ``status="partial"`` with exact coverage accounting
  (``shards_answered / shards_total`` and a per-shard status map in
  ``ServeResult.coverage``) instead of failing; only a query that loses
  *every* contacted shard falls back to the stale/summary ladder.

Shard faults (``kill_shard`` / ``partition_shard`` / ``slow_replica``)
come from the :class:`~repro.net.faults.FaultSchedule`; their target
shard/replica derives from the fault window's start index, exported
here (:func:`kill_target` and friends) so benchmarks can predict the
victim. Everything — fan-out costs, failovers, autoscaler decisions —
runs on the simulated clock and replays byte-for-bit with the seed.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.dfs.filesystem import MiniDfs
from repro.net.faults import (FAULT_BROWNOUT, FAULT_KILL_SHARD,
                              FAULT_PARTITION_SHARD, FAULT_SLOW,
                              FAULT_SLOW_REPLICA, FAULT_STORM,
                              FaultSchedule)
from repro.serve.autoscale import AutoscaleConfig, Autoscaler
from repro.serve.dataset import (KIND_COMMUNITY, KIND_COMPANY,
                                 KIND_ENGAGEMENT, KIND_INVESTOR,
                                 KIND_NEIGHBORHOOD, MAX_IDS_IN_ANSWER,
                                 ServeDataset)
from repro.serve.health import (EVENT_DEGRADED, EVENT_OK, HealthMonitor)
from repro.serve.metrics import (SHARD_DEAD, SHARD_DEADLINE, SHARD_OK,
                                 SHARD_PARTITIONED, STATUS_CACHED,
                                 STATUS_FRESH, STATUS_PARTIAL)
from repro.serve.service import (QueryService, ServeConfig, ServeRequest,
                                 ServeResult)
from repro.serve.tenancy import FairShareAdmission, Tenant
from repro.util.clock import Clock
from repro.util.errors import ConfigError
from repro.util.rng import derive_seed


def shard_of(key: int, num_shards: int) -> int:
    """Stable hash placement: CRC32 of the decimal key, mod N."""
    return zlib.crc32(str(int(key)).encode("ascii")) % num_shards


def kill_target(seed: int, window_start: int, num_shards: int) -> int:
    """The shard a ``kill_shard`` window starting at this index hits."""
    return derive_seed(seed, f"{FAULT_KILL_SHARD}:target:{window_start}") \
        % num_shards


def partition_target(seed: int, window_start: int, num_shards: int) -> int:
    """The shard a ``partition_shard`` window isolates."""
    return derive_seed(
        seed, f"{FAULT_PARTITION_SHARD}:target:{window_start}") % num_shards


def slow_replica_target(seed: int, window_start: int,
                        num_shards: int) -> Tuple[int, int]:
    """(shard, replica draw) a ``slow_replica`` window pads.

    The replica draw is reduced mod the shard's live replica count at
    call time, so the pad lands on a deterministic live replica even
    after the autoscaler has changed the fleet.
    """
    base = derive_seed(seed, f"{FAULT_SLOW_REPLICA}:target:{window_start}")
    return base % num_shards, (base // num_shards) % 1_000_003


@dataclass
class ShardConfig:
    """Topology + cost model of the sharded tier."""

    num_shards: int = 4
    replicas: int = 2
    #: per-shard RPC overhead (seconds, simulated)
    call_cost_s: float = 0.0005
    #: coordinator merge cost per fan-out round
    gather_cost_s: float = 0.0002
    #: where the shard indexes persist (replica boot source)
    dfs_root: str = "/serve/shards"

    def __post_init__(self):
        if self.num_shards < 1:
            raise ConfigError(
                f"num_shards must be >= 1, got {self.num_shards}")
        if self.replicas < 1:
            raise ConfigError(
                f"replicas must be >= 1, got {self.replicas}")
        if self.call_cost_s < 0 or self.gather_cost_s < 0:
            raise ConfigError("shard costs must be >= 0")


# --------------------------------------------------------------- data split
def split_dataset(dataset: ServeDataset,
                  num_shards: int) -> List[ServeDataset]:
    """Slice one ServeDataset into per-shard ServeDatasets.

    Company-keyed indexes shard by company id, user-keyed indexes by
    user id, and community membership by *member*, so every point
    lookup is fully local to its owner shard and a shard's community
    fragment is exactly its own members (sorted). ``part_records`` is
    replicated: it is the planner's cost table, tiny, and needed by
    every shard's local scans.
    """
    shards = [ServeDataset() for _ in range(num_shards)]
    for shard in shards:
        shard.part_records = dict(dataset.part_records)
        shard.summaries = dataset.summaries
    for cid, part in dataset.company_parts.items():
        shards[shard_of(cid, num_shards)].company_parts[cid] = part
    for cid, name in dataset.company_names.items():
        shards[shard_of(cid, num_shards)].company_names[cid] = name
    for cid, info in dataset.funding.items():
        shards[shard_of(cid, num_shards)].funding[cid] = info
    for cid, investors in dataset.backers.items():
        shards[shard_of(cid, num_shards)].backers[cid] = investors
    for cid, row in dataset.engagement.items():
        shards[shard_of(cid, num_shards)].engagement[cid] = row
    for uid, part in dataset.user_parts.items():
        shards[shard_of(uid, num_shards)].user_parts[uid] = part
    for uid, companies in dataset.portfolio.items():
        shards[shard_of(uid, num_shards)].portfolio[uid] = companies
    for uid, adj in dataset.follows_out.items():
        shards[shard_of(uid, num_shards)].follows_out[uid] = adj
    for dst, count in dataset.follower_counts.items():
        shards[shard_of(dst[1], num_shards)].follower_counts[dst] = count
    for uid, label in dataset.community_of.items():
        shards[shard_of(uid, num_shards)].community_of[uid] = label
    for label, members in dataset.community_members.items():
        for member in members:
            owner = shards[shard_of(member, num_shards)]
            owner.community_members.setdefault(label, []).append(member)
    return shards


def shard_index_json(shard: ServeDataset) -> str:
    """Deterministic JSON codec for persisting one shard's index."""
    payload = {
        "company_parts": {str(k): v
                          for k, v in shard.company_parts.items()},
        "company_names": {str(k): v
                          for k, v in shard.company_names.items()},
        "funding": {str(k): list(v) for k, v in shard.funding.items()},
        "backers": {str(k): v for k, v in shard.backers.items()},
        "engagement": {str(k): v for k, v in shard.engagement.items()},
        "user_parts": {str(k): v for k, v in shard.user_parts.items()},
        "portfolio": {str(k): v for k, v in shard.portfolio.items()},
        "follows_out": {str(k): [list(e) for e in v]
                        for k, v in shard.follows_out.items()},
        "follower_counts": {f"{t}:{i}": c for (t, i), c
                            in shard.follower_counts.items()},
        "community_of": {str(k): v
                         for k, v in shard.community_of.items()},
        "community_members": {str(k): v for k, v
                              in shard.community_members.items()},
        "part_records": dict(shard.part_records),
    }
    return json.dumps(payload, sort_keys=True)


def shard_index_from_json(text: str) -> ServeDataset:
    """Rebuild a shard's ServeDataset from its persisted index."""
    raw = json.loads(text)
    shard = ServeDataset()
    shard.company_parts = {int(k): v
                           for k, v in raw["company_parts"].items()}
    shard.company_names = {int(k): v
                           for k, v in raw["company_names"].items()}
    shard.funding = {int(k): tuple(v) for k, v in raw["funding"].items()}
    shard.backers = {int(k): v for k, v in raw["backers"].items()}
    shard.engagement = {int(k): v for k, v in raw["engagement"].items()}
    shard.user_parts = {int(k): v for k, v in raw["user_parts"].items()}
    shard.portfolio = {int(k): v for k, v in raw["portfolio"].items()}
    shard.follows_out = {
        int(k): [(e[0], e[1]) for e in v]
        for k, v in raw["follows_out"].items()}
    shard.follower_counts = {
        (key.rsplit(":", 1)[0], int(key.rsplit(":", 1)[1])): c
        for key, c in raw["follower_counts"].items()}
    shard.community_of = {int(k): v
                          for k, v in raw["community_of"].items()}
    shard.community_members = {int(k): v for k, v
                               in raw["community_members"].items()}
    shard.part_records = dict(raw["part_records"])
    return shard


# ------------------------------------------------------------ shard servers
@dataclass
class ShardReplica:
    """One simulated replica process of one shard."""

    replica_id: str
    ordinal: int
    alive: bool = True
    #: simulated time at which the boot (index load from DFS) completes
    ready_at: float = 0.0

    def available(self, now: float) -> bool:
        return self.alive and now >= self.ready_at


class ShardServer:
    """The replica fleet of one shard."""

    def __init__(self, shard_id: int, data: ServeDataset,
                 index_path: str, replicas: int):
        self.shard_id = shard_id
        self.data = data
        self.index_path = index_path
        self.replicas: List[ShardReplica] = []
        self._next_ordinal = 0
        for _ in range(replicas):
            self._spawn(0.0, 0.0)

    def _spawn(self, now: float, boot_s: float) -> ShardReplica:
        replica = ShardReplica(
            replica_id=f"s{self.shard_id}r{self._next_ordinal}",
            ordinal=self._next_ordinal, ready_at=now + boot_s)
        self._next_ordinal += 1
        self.replicas.append(replica)
        return replica

    @property
    def replica_count(self) -> int:
        return sum(1 for r in self.replicas if r.alive)

    @property
    def fleet_size(self) -> int:
        """All replica slots, dead ones included (the scaling bound)."""
        return len(self.replicas)

    def alive_count(self, now: float) -> int:
        return sum(1 for r in self.replicas if r.available(now))

    def available_replicas(self, now: float) -> List[ShardReplica]:
        return [r for r in self.replicas if r.available(now)]

    def kill_all(self) -> None:
        for replica in self.replicas:
            replica.alive = False

    def add_replica(self, now: float, boot_s: float,
                    dfs: Optional[MiniDfs] = None) -> ShardReplica:
        """Boot a new replica from the DFS-persisted shard index."""
        if dfs is not None and not dfs.exists(self.index_path):
            raise ConfigError(
                f"shard index missing: {self.index_path}")
        return self._spawn(now, boot_s)

    def reboot_one(self, now: float, boot_s: float) -> ShardReplica:
        """Restart the lowest-ordinal dead replica (fleet at max size)."""
        for replica in self.replicas:
            if not replica.alive:
                replica.alive = True
                replica.ready_at = now + boot_s
                return replica
        return self.replicas[0]

    def drain_replica(self) -> Optional[ShardReplica]:
        """Retire the highest-ordinal live replica."""
        for replica in reversed(self.replicas):
            if replica.alive:
                replica.alive = False
                return replica
        return None


@dataclass
class _ShardCall:
    """Outcome of one fan-out call to one shard."""

    shard_id: int
    status: str
    elapsed_s: float
    value: Any = None
    failovers: int = 0
    hedges_launched: int = 0
    hedges_won: int = 0
    hedged_wasted: int = 0
    dfs_hedges: Optional[object] = None   # HedgedRead of a point lookup


# -------------------------------------------------------------- coordinator
class ShardedQueryService(QueryService):
    """Scatter-gather coordinator over N shard servers.

    Subclasses :class:`QueryService` so the open-loop replay, admission
    protocol, cache, breaker, and degradation ladder are shared; only
    backend execution (step 5) is replaced by the fan-out, and admission
    swaps to :class:`FairShareAdmission` when tenants are configured.
    """

    def __init__(self, dataset: ServeDataset, dfs: MiniDfs,
                 clock: Optional[Clock] = None,
                 config: Optional[ServeConfig] = None,
                 faults: Optional[FaultSchedule] = None,
                 shard_config: Optional[ShardConfig] = None,
                 tenants: Optional[Sequence[Tenant]] = None,
                 autoscale: Optional[AutoscaleConfig] = None):
        super().__init__(dataset, dfs, clock=clock, config=config,
                         faults=faults)
        self.shard_config = shard_config or ShardConfig()
        scfg = self.shard_config
        shards = split_dataset(dataset, scfg.num_shards)
        self.servers: List[ShardServer] = []
        for shard_id, shard_data in enumerate(shards):
            path = f"{scfg.dfs_root}/shard-{shard_id:05d}.json"
            dfs.write_atomic_text(path, shard_index_json(shard_data))
            self.servers.append(ShardServer(shard_id, shard_data, path,
                                            scfg.replicas))
        #: short-window per-shard health (feeds the autoscaler)
        self.shard_health: Dict[int, HealthMonitor] = {
            s.shard_id: HealthMonitor(window=20, min_events=5)
            for s in self.servers}
        self._multi_tenant = bool(tenants)
        if tenants:
            self.admission = FairShareAdmission(
                self.config.qps_limit, self.config.queue_depth, tenants,
                burst=self.config.burst)
        self.autoscaler = (Autoscaler(autoscale, self.servers,
                                      self.shard_health, self.metrics)
                          if autoscale is not None else None)
        #: one-shot kill windows already consumed (window start indexes)
        self._consumed_kills: set = set()
        self._executed = 0

    # ------------------------------------------------------------- admission
    def submit(self, request: ServeRequest, now: Optional[float] = None,
               ) -> Tuple[Optional[ServeResult], Optional[ServeResult]]:
        own, evicted = super().submit(request, now)
        if self._multi_tenant:
            self.metrics.record_tenant_offered(request.tenant)
            if own is not None:
                self.metrics.record_tenant_shed(request.tenant, own.status)
            else:
                self.metrics.record_tenant_admitted(request.tenant)
            if evicted is not None:
                self.metrics.record_tenant_evicted(evicted.request.tenant)
        return own, evicted

    def _finish(self, request: ServeRequest, start_s: float, status: str,
                value, stale: bool, cost: float) -> ServeResult:
        result = super()._finish(request, start_s, status, value, stale,
                                 cost)
        if self._multi_tenant:
            self.metrics.record_tenant_result(request.tenant, status)
        return result

    # ------------------------------------------------------------- execution
    def execute(self, request: ServeRequest, start_s: float) -> ServeResult:
        cfg = self.config
        scfg = self.shard_config
        self._advance_to(start_s)
        deadline_abs = request.arrival_s + (
            request.deadline_s if request.deadline_s is not None
            else cfg.default_deadline_s)
        remaining = deadline_abs - start_s
        cache_key = (request.kind, request.key, request.depth)
        result = None

        # 1. fresh cache answer (identical to the base tier)
        if remaining >= cfg.cache_read_cost_s:
            answer = self.cache.lookup_fresh(cache_key, start_s)
            if answer is not None:
                result = self._finish(request, start_s, STATUS_CACHED,
                                      answer.value, False,
                                      cfg.cache_read_cost_s)
                result.coverage = None
                self._autoscale_tick()
                return result

        # 2. deadline gate over the *sharded* cost estimate
        units = self.dataset.units(request.kind, request.key, request.depth)
        fanout, rounds = self._fanout_bound(request)
        unit_factor = 2 if request.kind == KIND_NEIGHBORHOOD else 1
        estimate = (cfg.base_cost_s + unit_factor * units * cfg.unit_cost_s
                    + self._dfs_latency_bound(request)
                    + fanout * scfg.call_cost_s
                    + rounds * scfg.gather_cost_s)
        margin = (cfg.fault_detect_cost_s + cfg.cache_read_cost_s
                  + cfg.summary_cost_s)
        if remaining < estimate + margin:
            result = self._degraded(request, cache_key, start_s,
                                    deadline_abs)
            self._autoscale_tick()
            return result

        # 3. circuit breaker (store-wide brownouts, as in the base tier)
        breaker = self.breakers[request.kind]
        if not breaker.try_acquire():
            self.metrics.record_breaker_short_circuit(request.priority)
            result = self._degraded(request, cache_key, start_s,
                                    deadline_abs)
            self._autoscale_tick()
            return result

        # 4. injected faults: store brownouts, latency spikes, shard faults
        index = self._request_index
        self._request_index += 1
        spec = self.faults.serve_fault_at(index)
        if spec is not None and spec.kind in (FAULT_BROWNOUT, FAULT_STORM):
            breaker.record_failure()
            self.metrics.record_backend_fault(request.priority)
            result = self._degraded(request, cache_key, start_s,
                                    deadline_abs,
                                    extra_cost=cfg.fault_detect_cost_s)
            self._autoscale_tick()
            return result
        pad = (spec.duration if spec is not None
               and spec.kind == FAULT_SLOW else 0.0)
        if pad > 0.0 and (start_s + estimate + pad
                          + cfg.cache_read_cost_s + cfg.summary_cost_s
                          > deadline_abs):
            breaker.record_failure()
            self.metrics.record_backend_fault(request.priority)
            result = self._degraded(request, cache_key, start_s,
                                    deadline_abs,
                                    extra_cost=cfg.fault_detect_cost_s)
            self._autoscale_tick()
            return result
        partitioned, slow_map = self._apply_shard_faults(index, start_s)

        # 5. scatter-gather across the owner shards
        budget_abs = deadline_abs - (cfg.cache_read_cost_s
                                     + cfg.summary_cost_s)
        value, cost, coverage = self._scatter(
            request, start_s, budget_abs, index, partitioned, slow_map)
        cost += pad

        if value is None:
            # every contacted shard failed: degrade, carry the coverage
            self.metrics.record_backend_fault(request.priority)
            result = self._degraded(request, cache_key, start_s,
                                    deadline_abs,
                                    extra_cost=cfg.fault_detect_cost_s)
            result.coverage = coverage
            self._autoscale_tick()
            return result

        if coverage["partial"]:
            result = self._finish(request, start_s, STATUS_PARTIAL, value,
                                  False, cost)
        else:
            breaker.record_success()
            self.cache.store(cache_key, value, start_s + cost)
            result = self._finish(request, start_s, STATUS_FRESH, value,
                                  False, cost)
        result.coverage = coverage
        self._autoscale_tick()
        return result

    # ------------------------------------------------------------ shard faults
    def _apply_shard_faults(self, index: int, now: float,
                            ) -> Tuple[set, Dict[int, Tuple[int, float]]]:
        """Consume the shard faults active at this request index.

        Returns ``(partitioned_shards, slow_map)`` where ``slow_map``
        maps a shard id to ``(replica_draw, pad_s)``. Kill windows are
        one-shot: the first request inside the window kills the target
        shard's whole fleet; it stays dead until the autoscaler reacts.
        """
        scfg = self.shard_config
        partitioned: set = set()
        slow_map: Dict[int, Tuple[int, float]] = {}
        for spec, window_start in self.faults.shard_faults_at(index):
            if spec.kind == FAULT_KILL_SHARD:
                if window_start in self._consumed_kills:
                    continue
                self._consumed_kills.add(window_start)
                target = kill_target(self.faults.seed, window_start,
                                     scfg.num_shards)
                self.servers[target].kill_all()
            elif spec.kind == FAULT_PARTITION_SHARD:
                partitioned.add(partition_target(
                    self.faults.seed, window_start, scfg.num_shards))
            elif spec.kind == FAULT_SLOW_REPLICA:
                shard, draw = slow_replica_target(
                    self.faults.seed, window_start, scfg.num_shards)
                slow_map[shard] = (draw, spec.duration)
        return partitioned, slow_map

    # ---------------------------------------------------------------- routing
    def _fanout_bound(self, request: ServeRequest) -> Tuple[int, int]:
        """(max shard calls, fan-out rounds) the gate must budget for."""
        n = self.shard_config.num_shards
        if request.kind == KIND_COMMUNITY:
            return 1 + n, 2
        if request.kind == KIND_NEIGHBORHOOD:
            depth = max(1, min(int(request.depth), 3))
            return depth * n, depth
        return 1, 1

    def _scatter(self, request: ServeRequest, start_s: float,
                 budget_abs: float, index: int, partitioned: set,
                 slow_map: Dict[int, Tuple[int, float]],
                 ) -> Tuple[Any, float, Dict[str, Any]]:
        """Run the fan-out; returns (value | None, cost, coverage)."""
        kind = request.kind
        if kind in (KIND_COMPANY, KIND_INVESTOR, KIND_ENGAGEMENT):
            return self._scatter_point(request, start_s, budget_abs,
                                       index, partitioned, slow_map)
        if kind == KIND_COMMUNITY:
            return self._scatter_community(request, start_s, budget_abs,
                                           index, partitioned, slow_map)
        return self._scatter_neighborhood(request, start_s, budget_abs,
                                          index, partitioned, slow_map)

    def _coverage(self, statuses: Dict[int, str]) -> Dict[str, Any]:
        answered = sum(1 for s in statuses.values() if s == SHARD_OK)
        return {
            "partial": answered < len(statuses),
            "shards_total": len(statuses),
            "shards_answered": answered,
            "per_shard": {str(sid): statuses[sid]
                          for sid in sorted(statuses)},
        }

    def _scatter_point(self, request, start_s, budget_abs, index,
                       partitioned, slow_map):
        scfg = self.shard_config
        owner = shard_of(request.key, scfg.num_shards)
        call = self._call_shard(
            owner, request.kind, [request.key], request, start_s,
            budget_abs - start_s, index, partitioned, slow_map)
        cost = self.config.base_cost_s + call.elapsed_s \
            + scfg.gather_cost_s
        coverage = self._coverage({owner: call.status})
        if call.status != SHARD_OK:
            return None, cost, coverage
        return call.value, cost, coverage

    def _scatter_community(self, request, start_s, budget_abs, index,
                           partitioned, slow_map):
        scfg = self.shard_config
        cfg = self.config
        statuses: Dict[int, str] = {}
        owner = shard_of(request.key, scfg.num_shards)
        t = start_s + cfg.base_cost_s
        lookup = self._call_shard(
            owner, "community_label", [request.key], request, t,
            budget_abs - t, index, partitioned, slow_map)
        statuses[owner] = lookup.status
        t += lookup.elapsed_s + scfg.gather_cost_s
        if lookup.status != SHARD_OK:
            return None, t - start_s, self._coverage(statuses)
        label = lookup.value
        if label is None:
            value = {"user_id": request.key, "community": None,
                     "size": 0, "member_sample": []}
            return value, t - start_s, self._coverage(statuses)
        # phase 2: every shard contributes its members fragment
        round_elapsed = 0.0
        fragments: Dict[int, List[int]] = {}
        for sid in range(scfg.num_shards):
            call = self._call_shard(
                sid, "community_fragment", [label], request, t,
                budget_abs - t, index, partitioned, slow_map)
            # a shard is "ok" only if every call to it succeeded
            if statuses.get(sid) in (None, SHARD_OK):
                statuses[sid] = call.status
            if call.status == SHARD_OK:
                fragments[sid] = call.value
            round_elapsed = max(round_elapsed, call.elapsed_s)
        t += round_elapsed + scfg.gather_cost_s
        if all(s != SHARD_OK for s in statuses.values()):
            return None, t - start_s, self._coverage(statuses)
        members = sorted(m for frag in fragments.values() for m in frag)
        value = {
            "user_id": request.key,
            "community": label,
            "size": len(members),
            "member_sample": [m for m in members
                              if m != request.key][:MAX_IDS_IN_ANSWER],
        }
        return value, t - start_s, self._coverage(statuses)

    def _scatter_neighborhood(self, request, start_s, budget_abs, index,
                              partitioned, slow_map):
        scfg = self.shard_config
        cfg = self.config
        depth = max(1, min(int(request.depth), 3))
        key = request.key
        statuses: Dict[int, str] = {}
        seen_users = {key}
        seen_companies: set = set()
        frontier = [key]
        t = start_s + cfg.base_cost_s
        for _ in range(depth):
            if not frontier:
                break
            by_owner: Dict[int, List[int]] = {}
            for uid in frontier:
                by_owner.setdefault(shard_of(uid, scfg.num_shards),
                                    []).append(uid)
            adj: Dict[int, List[Tuple[str, int]]] = {}
            round_elapsed = 0.0
            for sid in sorted(by_owner):
                call = self._call_shard(
                    sid, "adjacency", by_owner[sid], request, t,
                    budget_abs - t, index, partitioned, slow_map)
                if call.status == SHARD_OK:
                    adj.update(call.value)
                    if statuses.get(sid) is None:
                        statuses[sid] = SHARD_OK
                else:
                    statuses[sid] = call.status
                round_elapsed = max(round_elapsed, call.elapsed_s)
            t += round_elapsed + scfg.gather_cost_s
            next_frontier: List[int] = []
            for uid in frontier:            # oracle order, not shard order
                for dst_type, dst_id in adj.get(uid, ()):
                    if dst_type == "user":
                        if dst_id not in seen_users:
                            seen_users.add(dst_id)
                            next_frontier.append(dst_id)
                    else:
                        seen_companies.add(dst_id)
            frontier = next_frontier
        coverage = self._coverage(statuses)
        if statuses and all(s != SHARD_OK for s in statuses.values()):
            return None, t - start_s, coverage
        value = {
            "user_id": key,
            "known": key in self.dataset.user_parts,
            "depth": depth,
            "users_reached": len(seen_users) - 1,
            "companies_reached": len(seen_companies),
            "user_sample": sorted(seen_users - {key})[:MAX_IDS_IN_ANSWER],
            "company_sample": sorted(seen_companies)[:MAX_IDS_IN_ANSWER],
        }
        return value, t - start_s, coverage

    # ------------------------------------------------------------ shard calls
    def _call_shard(self, shard_id: int, op: str, keys: List[int],
                    request: ServeRequest, now: float, budget: float,
                    index: int, partitioned: set,
                    slow_map: Dict[int, Tuple[int, float]]) -> _ShardCall:
        """One fan-out RPC: replica selection, failover, hedging, budget.

        The elapsed time never exceeds ``budget`` — a call that would,
        is abandoned *at* the budget boundary with status ``deadline``,
        which is what keeps the coordinator's ladder reachable inside
        the request deadline no matter what the shards do.
        """
        cfg = self.config
        scfg = self.shard_config
        budget = max(0.0, budget)
        call = None
        if shard_id in partitioned:
            call = _ShardCall(shard_id, SHARD_PARTITIONED,
                              min(cfg.fault_detect_cost_s, budget))
        else:
            server = self.servers[shard_id]
            order = sorted(server.replicas, key=lambda r: r.ordinal)
            if order:
                rot = index % len(order)
                order = order[rot:] + order[:rot]
            failovers = 0
            chosen = None
            for replica in order:
                if replica.available(now + failovers
                                     * cfg.fault_detect_cost_s):
                    chosen = replica
                    break
                failovers += 1
            detect_cost = failovers * cfg.fault_detect_cost_s
            if chosen is None:
                call = _ShardCall(shard_id, SHARD_DEAD,
                                  min(detect_cost, budget),
                                  failovers=failovers)
            else:
                value, local_units, hedged = self._shard_op(
                    server.data, op, keys, request)
                base = scfg.call_cost_s + local_units * cfg.unit_cost_s
                if hedged is not None:
                    base += hedged.elapsed_s
                slow = slow_map.get(shard_id)
                pad_for = None
                if slow is not None:
                    avail = server.available_replicas(now)
                    if avail:
                        pad_for = avail[slow[0] % len(avail)]
                cost = base + (slow[1] if pad_for is chosen
                               and slow is not None else 0.0)
                launched = won = 0
                siblings = [r for r in order
                            if r is not chosen
                            and r.available(now + detect_cost)]
                if cost > cfg.hedge_after_s and siblings:
                    launched = 1
                    sibling = siblings[0]
                    sibling_cost = cfg.hedge_after_s + base + (
                        slow[1] if slow is not None
                        and pad_for is sibling else 0.0)
                    if sibling_cost < cost:
                        won = 1
                        cost = sibling_cost
                elapsed = detect_cost + cost
                if elapsed > budget:
                    call = _ShardCall(shard_id, SHARD_DEADLINE, budget,
                                      failovers=failovers,
                                      hedges_launched=launched)
                else:
                    call = _ShardCall(shard_id, SHARD_OK, elapsed,
                                      value=value, failovers=failovers,
                                      hedges_launched=launched,
                                      hedges_won=won, dfs_hedges=hedged)
        self.metrics.record_shard_call(shard_id, call.status,
                                       failovers=call.failovers,
                                       hedges_launched=call.hedges_launched,
                                       hedges_won=call.hedges_won)
        if call.dfs_hedges is not None:
            self.metrics.record_hedges(request.priority,
                                       call.dfs_hedges.hedges_launched,
                                       call.dfs_hedges.hedges_won,
                                       call.dfs_hedges.wasted_reads)
        self.shard_health[shard_id].record(
            EVENT_OK if call.status == SHARD_OK else EVENT_DEGRADED,
            now + call.elapsed_s)
        return call

    def _shard_op(self, data: ServeDataset, op: str, keys: List[int],
                  request: ServeRequest):
        """Execute one local operation on a shard's sliced dataset.

        Returns ``(value, local_units, hedged_read_or_None)``. Point
        kinds reuse the unsharded dataset code over the shard's slice,
        so a healthy sharded answer is byte-identical to the oracle.
        """
        cfg = self.config
        if op in (KIND_COMPANY, KIND_INVESTOR, KIND_ENGAGEMENT):
            answer = data.run(op, keys[0], self.dfs,
                              hedge_after_s=cfg.hedge_after_s)
            return answer.value, answer.units, answer.hedged
        if op == "community_label":
            return data.community_of.get(keys[0]), 1, None
        if op == "community_fragment":
            fragment = data.community_members.get(keys[0], [])
            return list(fragment), 1 + len(fragment), None
        if op == "adjacency":
            adj = {uid: list(data.follows_out.get(uid, []))
                   for uid in keys}
            units = sum(1 + len(v) for v in adj.values())
            return adj, units, None
        raise ConfigError(f"unknown shard op {op!r}")

    # -------------------------------------------------------------- autoscale
    def _autoscale_tick(self) -> None:
        self._executed += 1
        if (self.autoscaler is not None
                and self._executed % self.autoscaler.config.tick_every == 0):
            self.autoscaler.tick(self.clock.now())
