"""Graceful degradation: stale-while-revalidate cache + cheap summaries.

The degradation ladder the service walks when it cannot (or should not)
run the full backend query:

1. a **fresh** cache entry (age ≤ ``fresh_ttl_s``) answers outright;
2. a **stale** entry (age ≤ ``stale_ttl_s``) is served flagged
   ``stale=True`` when the backend faults or the deadline budget is too
   tight — last good answer beats no answer;
3. a **precomputed summary** (tiny, built once from the datasets) is the
   floor: always available, never wrong about global facts, honest about
   being degraded.

Entries are keyed by the full query identity ``(kind, key, depth)``; a
bounded LRU keeps memory flat under adversarial key churn.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Optional, Tuple


@dataclass
class CacheEntry:
    value: Any
    written_at: float


@dataclass
class CacheAnswer:
    """A cache lookup that produced a servable value."""

    value: Any
    age_s: float
    stale: bool


class ResultCache:
    """Bounded LRU with two TTLs: fresh (hit) and stale (fallback)."""

    def __init__(self, fresh_ttl_s: float = 1.0, stale_ttl_s: float = 30.0,
                 max_entries: int = 4096):
        if fresh_ttl_s < 0:
            raise ValueError(f"fresh_ttl_s must be >= 0, got {fresh_ttl_s}")
        if stale_ttl_s < fresh_ttl_s:
            raise ValueError("stale_ttl_s must be >= fresh_ttl_s "
                             f"({stale_ttl_s} < {fresh_ttl_s})")
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.fresh_ttl_s = fresh_ttl_s
        self.stale_ttl_s = stale_ttl_s
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple, CacheEntry]" = OrderedDict()
        #: lifetime counters
        self.hits_fresh = 0
        self.hits_stale = 0
        self.misses = 0
        self.evictions = 0

    def store(self, key: Tuple, value: Any, now: float) -> None:
        if key in self._entries:
            self._entries.pop(key)
        self._entries[key] = CacheEntry(value=value, written_at=now)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def lookup_fresh(self, key: Tuple, now: float) -> Optional[CacheAnswer]:
        """A within-fresh-TTL entry, or None. Refreshes LRU position."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        age = now - entry.written_at
        if age > self.fresh_ttl_s:
            return None
        self._entries.move_to_end(key)
        self.hits_fresh += 1
        return CacheAnswer(value=entry.value, age_s=age, stale=False)

    def lookup_stale(self, key: Tuple, now: float) -> Optional[CacheAnswer]:
        """Any entry still within the stale TTL, flagged stale."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        age = now - entry.written_at
        if age > self.stale_ttl_s:
            self._entries.pop(key)
            return None
        self.hits_stale += 1
        return CacheAnswer(value=entry.value, age_s=age, stale=True)

    def __len__(self) -> int:
        return len(self._entries)
