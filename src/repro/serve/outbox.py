"""At-least-once delivery outbox for standing-query notifications.

The evaluator proves a notification *should* exist; the outbox makes it
survive everything between "matched" and "observed by the subscriber":

* **manifest-last commits** — a notification is durable the moment its
  pending file lands (atomic write); the delivered marker is written
  only *after* the subscriber's effect applied, so a crash between
  effect and marker re-delivers — and the subscriber's dedupe by
  notification id turns the redelivery into a no-op. At-least-once on
  the channel, exactly-once in observable effect;
* **per-subscriber leases with fencing epochs** — delivery attempts run
  under the same lease machinery as ingest units
  (:class:`~repro.crawl.ledger.IngestLedger`, one "unit" per
  subscriber): a delivery worker whose lease lapsed mid-attempt is
  fenced off the delivered marker and the notification is redelivered
  under a higher epoch;
* **deterministic jittered backoff** — retry delays derive from
  ``(seed, notification, attempt)``, never wall clock, so a same-seed
  chaos run replays the same delivery log byte for byte;
* **poison-subscriber quarantine** — a notification failing
  ``max_delivery_attempts`` times marks its subscriber poison: the
  subscriber's pending notifications move to a quarantine directory
  (the dead-letter pattern of :mod:`repro.crawl.deadletter`) and the
  outbox keeps draining everyone else instead of stalling;
* **fair-share delivery** — deliveries are offered to the same
  per-tenant token buckets and WFQ as interactive queries (as
  ``bulk``-priority tickets), so a tenant with 100x subscribers is
  clipped to its own weighted share and cannot starve anyone.

Chaos enters through :meth:`FaultSchedule.alert_fault_at` — subscriber
kills, dropped acks, duplicated deliveries — keyed by per-attempt step
keys so retries roll new dice.
"""

from __future__ import annotations

import json
import posixpath
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.crawl.ledger import IngestLedger
from repro.dfs.filesystem import MiniDfs
from repro.net.faults import (FAULT_DROP_ACK, FAULT_DUP_DELIVER,
                              FAULT_KILL_SUBSCRIBER)
from repro.serve.alerting import Notification
from repro.util.clock import Clock
from repro.util.errors import ConfigError, LeaseExpired
from repro.util.rng import derive_seed

#: delivery-log outcomes
OUTCOME_DELIVERED = "delivered"
OUTCOME_FAILED = "failed"            # subscriber down; retry scheduled
OUTCOME_ACK_DROPPED = "ack_dropped"  # effect applied, marker withheld
OUTCOME_FENCED = "fenced"            # lease lost mid-attempt
OUTCOME_QUARANTINED = "quarantined"  # subscriber declared poison


class Subscriber:
    """A simulated delivery endpoint with idempotent observable effects.

    ``received`` is the raw channel log (duplicates and all) — the
    at-least-once side. ``effects`` is what the subscriber *observably
    did*, deduplicated by notification id — the exactly-once side the
    chaos bench asserts on. ``poison=True`` models an endpoint that
    never acks (every delivery attempt fails).
    """

    def __init__(self, subscriber_id: str, tenant: str = "default",
                 poison: bool = False):
        self.subscriber_id = subscriber_id
        self.tenant = tenant
        self.poison = poison
        self.received: List[str] = []
        self.effects: List[str] = []
        self._seen: set = set()

    def deliver(self, notification: Notification) -> bool:
        """Accept one channel delivery; apply the effect once per id."""
        self.received.append(notification.id)
        if notification.id in self._seen:
            return False
        self._seen.add(notification.id)
        self.effects.append(notification.id)
        return True


@dataclass
class DeliveryTicket:
    """A delivery attempt shaped like a serve request, so it can ride
    the same FairShareAdmission (tenant bucket + WFQ) as queries."""

    nid: str
    tenant: str
    arrival_s: float
    priority: str = "bulk"


@dataclass
class OutboxStats:
    """Lifetime counters of one outbox incarnation."""

    enqueued: int = 0
    duplicates_suppressed: int = 0   # re-enqueues absorbed by the id
    attempts: int = 0
    delivered: int = 0
    effects_deduped: int = 0         # redeliveries the subscriber absorbed
    failures: int = 0
    acks_dropped: int = 0
    dup_deliveries: int = 0
    fenced: int = 0
    deferred_fair_share: int = 0     # attempts pushed back by the bucket
    quarantined_subscribers: int = 0
    quarantined_notifications: int = 0


class DeliveryOutbox:
    """Durable at-least-once delivery with idempotent redelivery."""

    def __init__(self, dfs: MiniDfs, clock: Clock,
                 subscribers: Dict[str, Subscriber],
                 root: str = "/serve/outbox",
                 faults: Any = None, seed: int = 0,
                 owner: str = "outbox-1",
                 max_delivery_attempts: int = 5,
                 retry_base_s: float = 5.0,
                 retry_max_s: float = 300.0,
                 lease_ttl_s: float = 120.0):
        if max_delivery_attempts < 1:
            raise ConfigError("max_delivery_attempts must be >= 1")
        if retry_base_s <= 0:
            raise ConfigError("retry_base_s must be > 0")
        self.dfs = dfs
        self.clock = clock
        self.subscribers = subscribers
        self.root = root.rstrip("/")
        self.faults = faults
        self.seed = seed
        self.owner = owner
        self.max_delivery_attempts = max_delivery_attempts
        self.retry_base_s = retry_base_s
        self.retry_max_s = retry_max_s
        self.stats = OutboxStats()
        #: (sim_time, subscriber, notification id, outcome, attempt) —
        #: byte-identical across same-seed reruns
        self.delivery_log: List[Tuple] = []
        #: per-subscriber leases ride the ingest ledger's lease files
        #: (fencing epochs included); records stay unused
        self.leases = IngestLedger(dfs, clock,
                                   root=f"{self.root}/leases",
                                   lease_ttl_s=lease_ttl_s).open()

    # ---------------------------------------------------------------- layout
    def _pending_path(self, nid: str) -> str:
        return f"{self.root}/pending/{nid}.json"

    def _delivered_path(self, nid: str) -> str:
        return f"{self.root}/delivered/{nid}.json"

    def _quarantine_marker(self, subscriber_id: str) -> str:
        return f"{self.root}/quarantine/{subscriber_id}.poison.json"

    def _quarantine_path(self, subscriber_id: str, nid: str) -> str:
        return f"{self.root}/quarantine/{subscriber_id}/{nid}.json"

    # --------------------------------------------------------------- enqueue
    def enqueue(self, notification: Notification) -> bool:
        """Admit one notification; idempotent by notification id.

        A re-emitted id (ledger replay after a crash, duplicate match)
        is a no-op whether the original is still pending, already
        delivered, or quarantined with its subscriber.
        """
        nid = notification.id
        sid = notification.subscriber_id
        if (self.dfs.exists(self._pending_path(nid))
                or self.dfs.exists(self._delivered_path(nid))
                or self.dfs.exists(self._quarantine_path(sid, nid))):
            self.stats.duplicates_suppressed += 1
            return False
        entry = {"notification": notification.as_dict(),
                 "attempts": 0, "not_before": 0.0}
        self.dfs.write_atomic_text(self._pending_path(nid),
                                   json.dumps(entry, sort_keys=True))
        self.stats.enqueued += 1
        return True

    # ------------------------------------------------------------ inspection
    def _load_pending(self, nid: str) -> Dict:
        return json.loads(self.dfs.read_text(self._pending_path(nid)))

    def pending(self) -> List[str]:
        """Pending notification ids (sorted; includes deferred ones)."""
        out = []
        for path in self.dfs.listdir(f"{self.root}/pending"):
            base = posixpath.basename(path)
            if base.startswith("."):
                continue
            out.append(base[:-len(".json")])
        return sorted(out)

    def delivered_ids(self) -> List[str]:
        out = []
        for path in self.dfs.listdir(f"{self.root}/delivered"):
            base = posixpath.basename(path)
            if base.startswith("."):
                continue
            out.append(base[:-len(".json")])
        return sorted(out)

    def quarantined(self) -> Dict[str, List[str]]:
        """Poison subscriber id → its quarantined notification ids."""
        out: Dict[str, List[str]] = {}
        for path in self.dfs.listdir(f"{self.root}/quarantine"):
            base = posixpath.basename(path)
            if base.startswith("."):
                continue
            if base.endswith(".poison.json"):
                out.setdefault(base[:-len(".poison.json")], [])
            else:
                sid = posixpath.basename(posixpath.dirname(path))
                out.setdefault(sid, []).append(base[:-len(".json")])
        return {sid: sorted(nids) for sid, nids in sorted(out.items())}

    def is_quarantined(self, subscriber_id: str) -> bool:
        return self.dfs.exists(self._quarantine_marker(subscriber_id))

    def due(self, now: Optional[float] = None) -> List[str]:
        """Pending ids ready for a delivery attempt, in id order."""
        now = self.clock.now() if now is None else now
        ready = []
        for nid in self.pending():
            entry = self._load_pending(nid)
            sid = entry["notification"]["subscriber_id"]
            if self.is_quarantined(sid):
                continue
            if entry["not_before"] <= now:
                ready.append(nid)
        return ready

    def next_due_at(self) -> Optional[float]:
        """Earliest ``not_before`` over non-quarantined pending ids."""
        times = []
        for nid in self.pending():
            entry = self._load_pending(nid)
            if not self.is_quarantined(
                    entry["notification"]["subscriber_id"]):
                times.append(entry["not_before"])
        return min(times) if times else None

    # ---------------------------------------------------------------- policy
    def backoff_s(self, nid: str, attempt: int) -> float:
        """Deterministic jittered exponential backoff for this retry."""
        base = self.retry_base_s * (2 ** max(0, attempt - 1))
        jitter = (derive_seed(self.seed, f"backoff:{nid}:a{attempt}")
                  % 100_000) / 100_000
        return round(min(self.retry_max_s, base * (1.0 + 0.5 * jitter)), 9)

    def ticket(self, nid: str, now: Optional[float] = None,
               ) -> DeliveryTicket:
        """Wrap a pending id for fair-share admission alongside queries."""
        entry = self._load_pending(nid)
        return DeliveryTicket(
            nid=nid, tenant=entry["notification"]["tenant"],
            arrival_s=self.clock.now() if now is None else now)

    def defer(self, nid: str, until: float) -> None:
        """Push one pending delivery back (bucket said not now); does
        not count as a failed attempt — fair-share pressure is not the
        subscriber's fault."""
        entry = self._load_pending(nid)
        entry["not_before"] = round(until, 9)
        self.dfs.write_atomic_text(self._pending_path(nid),
                                   json.dumps(entry, sort_keys=True))
        self.stats.deferred_fair_share += 1

    # -------------------------------------------------------------- delivery
    def _log(self, sid: str, nid: str, outcome: str, attempt: int) -> None:
        self.delivery_log.append(
            (round(self.clock.now(), 9), sid, nid, outcome, attempt))

    def _quarantine_subscriber(self, sid: str) -> None:
        """Declare a subscriber poison; park its pending notifications."""
        self.dfs.write_atomic_text(
            self._quarantine_marker(sid),
            json.dumps({"subscriber": sid,
                        "at": round(self.clock.now(), 9)},
                       sort_keys=True))
        self.stats.quarantined_subscribers += 1
        for nid in self.pending():
            entry = self._load_pending(nid)
            if entry["notification"]["subscriber_id"] != sid:
                continue
            self.dfs.write_atomic_text(
                self._quarantine_path(sid, nid),
                json.dumps(entry, sort_keys=True))
            self.dfs.delete(self._pending_path(nid))
            self.stats.quarantined_notifications += 1

    def _fail(self, sid: str, nid: str, entry: Dict, attempt: int,
              outcome: str) -> None:
        entry["attempts"] = attempt
        if attempt >= self.max_delivery_attempts:
            self.dfs.write_atomic_text(self._pending_path(nid),
                                       json.dumps(entry, sort_keys=True))
            self._log(sid, nid, OUTCOME_QUARANTINED, attempt)
            self._quarantine_subscriber(sid)
            return
        entry["not_before"] = round(
            self.clock.now() + self.backoff_s(nid, attempt), 9)
        self.dfs.write_atomic_text(self._pending_path(nid),
                                   json.dumps(entry, sort_keys=True))
        self._log(sid, nid, outcome, attempt)

    def attempt(self, nid: str) -> str:
        """One delivery attempt for one pending notification.

        Returns the outcome recorded in the delivery log. The happy
        path is manifest-last: subscriber effect, then (under a still-
        valid lease) the delivered marker, then the pending file drops.
        """
        entry = self._load_pending(nid)
        notification = Notification.from_dict(entry["notification"])
        sid = notification.subscriber_id
        subscriber = self.subscribers.get(sid)
        if subscriber is None:
            raise ConfigError(f"no subscriber registered for {sid!r}")
        attempt_no = entry["attempts"] + 1
        self.stats.attempts += 1

        lease = self.leases.acquire_lease(sid, self.owner)
        if lease is None:
            # someone else is delivering to this subscriber; not a fault
            self._log(sid, nid, OUTCOME_FENCED, attempt_no)
            self.stats.fenced += 1
            return OUTCOME_FENCED

        spec = None
        if self.faults is not None and hasattr(self.faults,
                                               "alert_fault_at"):
            spec = self.faults.alert_fault_at(
                f"{sid}:{nid}#a{attempt_no}")
        kind = spec.kind if spec is not None else None

        if subscriber.poison or kind == FAULT_KILL_SUBSCRIBER:
            self.stats.failures += 1
            self._fail(sid, nid, entry, attempt_no, OUTCOME_FAILED)
            self.leases.release(lease)
            return self.delivery_log[-1][3]

        # effect first (at-least-once): the channel may duplicate it
        applied = subscriber.deliver(notification)
        if not applied:
            self.stats.effects_deduped += 1
        if kind == FAULT_DUP_DELIVER:
            self.stats.dup_deliveries += 1
            if not subscriber.deliver(notification):
                self.stats.effects_deduped += 1

        if kind == FAULT_DROP_ACK:
            # the subscriber observed the event but we cannot prove it:
            # leave the pending file, back off, redeliver — the dedupe
            # above is what makes that safe
            self.stats.acks_dropped += 1
            self._fail(sid, nid, entry, attempt_no, OUTCOME_ACK_DROPPED)
            self.leases.release(lease)
            return self.delivery_log[-1][3]

        # manifest-last: the delivered marker publishes, fenced by the
        # lease epoch — a worker that lost its lease must not publish
        try:
            lease = self.leases.heartbeat(lease)
        except LeaseExpired:
            self.stats.fenced += 1
            self._log(sid, nid, OUTCOME_FENCED, attempt_no)
            return OUTCOME_FENCED
        self.dfs.write_atomic_text(
            self._delivered_path(nid),
            json.dumps({"id": nid, "subscriber": sid,
                        "attempt": attempt_no,
                        "at": round(self.clock.now(), 9)},
                       sort_keys=True))
        self.dfs.delete(self._pending_path(nid))
        self.stats.delivered += 1
        self._log(sid, nid, OUTCOME_DELIVERED, attempt_no)
        self.leases.release(lease)
        return OUTCOME_DELIVERED

    # ----------------------------------------------------------------- drain
    def drain(self, max_rounds: int = 1000) -> int:
        """Deliver until nothing non-quarantined is pending.

        Advances the simulated clock across backoff gaps. Returns the
        number of attempts made; raises if ``max_rounds`` passes
        without converging (a liveness bug, not a retry storm).
        """
        made = 0
        for _ in range(max_rounds):
            ready = self.due()
            if not ready:
                next_at = self.next_due_at()
                if next_at is None:
                    return made
                self.clock.sleep(max(1e-9, next_at - self.clock.now()))
                continue
            for nid in ready:
                if self.dfs.exists(self._pending_path(nid)):
                    self.attempt(nid)
                    made += 1
        raise ConfigError(
            f"outbox failed to drain within {max_rounds} rounds")

    # -------------------------------------------------------------- snapshot
    def log_json(self) -> str:
        """The delivery log as canonical JSON (rerun-identity checks)."""
        return json.dumps([list(e) for e in self.delivery_log],
                          sort_keys=True)
