"""Admission control: token-bucket rate limit + bounded priority queue.

The point of this layer is that *overload is decided at the front door*,
deterministically, instead of queueing unboundedly and collapsing:

* a token bucket caps the sustained admitted rate at ``qps_limit`` with
  a small burst allowance — excess arrivals are shed with
  ``shed_rate`` before they cost anything;
* a bounded queue (``queue_depth``) absorbs the burst that *was*
  admitted; when it is full, an arriving higher-priority request evicts
  the worst queued lower-priority one (the evictee is shed with
  ``shed_queue``), and an arriving request with nothing to displace is
  shed itself.

Everything is a pure function of (arrival time, current queue), so a
replayed schedule sheds the same requests at the same indexes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.serve.metrics import (PRIORITY_CLASSES, STATUS_SHED_QUEUE,
                                 STATUS_SHED_RATE)

ADMIT = "admit"

_RANK = {cls: rank for rank, cls in enumerate(PRIORITY_CLASSES)}


def priority_rank(priority: str) -> int:
    """Lower rank = more important. Raises on unknown classes."""
    try:
        return _RANK[priority]
    except KeyError:
        raise ValueError(f"unknown priority class {priority!r}; "
                         f"expected one of {PRIORITY_CLASSES}") from None


class TokenBucket:
    """Continuous-refill token bucket (rate per second, burst capacity)."""

    def __init__(self, rate: float, burst: float):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last_refill = 0.0

    def _refill(self, now: float) -> None:
        if now > self._last_refill:
            self._tokens = min(self.burst, self._tokens
                               + (now - self._last_refill) * self.rate)
            self._last_refill = now

    def try_take(self, now: float) -> bool:
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def available(self, now: float) -> float:
        self._refill(now)
        return self._tokens


@dataclass
class AdmissionDecision:
    """What happened to one arrival (plus any eviction it caused)."""

    status: str                       # ADMIT / shed_rate / shed_queue
    evicted: Optional[object] = None  # queued request displaced, if any


@dataclass(order=True)
class _QueueEntry:
    rank: int
    seq: int
    request: object = field(compare=False)


class AdmissionController:
    """Front door of the query service: rate limit, then bounded queue."""

    def __init__(self, qps_limit: float, queue_depth: int,
                 burst: float = None):
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        self.qps_limit = float(qps_limit)
        self.queue_depth = int(queue_depth)
        self.bucket = TokenBucket(qps_limit,
                                  burst if burst is not None
                                  else max(1.0, qps_limit * 0.25))
        self._queue: List[_QueueEntry] = []
        self._seq = 0
        #: high-water mark, asserted by the overload contract
        self.max_queue_len = 0

    # ------------------------------------------------------------------ flow
    def offer(self, request, now: float) -> AdmissionDecision:
        """Admit, shed, or admit-by-eviction one arrival at ``now``.

        An admitted request is appended to the internal queue; the
        caller (the worker loop) pulls it back out with :meth:`pop`.
        """
        if not self.bucket.try_take(now):
            return AdmissionDecision(STATUS_SHED_RATE)
        rank = priority_rank(request.priority)
        if len(self._queue) >= self.queue_depth:
            worst = max(self._queue)
            if worst.rank <= rank:
                # nothing less important to displace: shed the arrival
                return AdmissionDecision(STATUS_SHED_QUEUE)
            self._queue.remove(worst)
            self._push(rank, request)
            return AdmissionDecision(ADMIT, evicted=worst.request)
        self._push(rank, request)
        return AdmissionDecision(ADMIT)

    def _push(self, rank: int, request) -> None:
        self._queue.append(_QueueEntry(rank, self._seq, request))
        self._seq += 1
        self.max_queue_len = max(self.max_queue_len, len(self._queue))

    def pop(self):
        """Next request: highest priority first, FIFO within a class."""
        if not self._queue:
            return None
        entry = min(self._queue)
        self._queue.remove(entry)
        return entry.request

    # ------------------------------------------------------------ inspection
    @property
    def queue_len(self) -> int:
        return len(self._queue)

    def queued(self) -> Tuple:
        return tuple(e.request for e in sorted(self._queue))
