"""Serve-side indexes over the landed crawl datasets.

The online tier never scans datasets at request time the way the batch
engine does; it builds compact in-memory indexes once (ids, adjacency,
community membership, engagement summaries) and keeps the *bulky* record
payloads on the DFS, locating them through an id → part-file map. A
company-lookup therefore pays a real replicated-DFS read per cache miss
— which is exactly where hedged reads earn their keep — while graph
traversals run over the in-memory adjacency with a per-record simulated
cost.

Every index is a plain dict built deterministically from the part files,
so two builds over the same crawl are identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.community.labelprop import label_propagation
from repro.dfs.filesystem import HedgedRead, MiniDfs
from repro.graph.bipartite import BipartiteGraph
from repro.util.errors import ConfigError

#: the query kinds the service answers
KIND_COMPANY = "company"
KIND_INVESTOR = "investor"
KIND_NEIGHBORHOOD = "neighborhood"
KIND_COMMUNITY = "community"
KIND_ENGAGEMENT = "engagement"
QUERY_KINDS = (KIND_COMPANY, KIND_INVESTOR, KIND_NEIGHBORHOOD,
               KIND_COMMUNITY, KIND_ENGAGEMENT)

#: cap on the id lists embedded in answers (keep payloads bounded)
MAX_IDS_IN_ANSWER = 25


@dataclass
class QueryAnswer:
    """One backend answer: the value plus its simulated cost drivers."""

    value: Any
    units: int                          # records/edges touched
    hedged: Optional[HedgedRead] = None  # set when a DFS read happened


@dataclass
class ServeDataset:
    """Immutable query indexes over one crawl's datasets."""

    #: id → DFS part file holding the full record
    company_parts: Dict[int, str] = field(default_factory=dict)
    user_parts: Dict[int, str] = field(default_factory=dict)
    #: part path → record count (the planner's exact scan-cost table)
    part_records: Dict[str, int] = field(default_factory=dict)
    #: light per-company fields served without touching the DFS
    company_names: Dict[int, str] = field(default_factory=dict)
    #: crunchbase augmentation: company → (num_rounds, num_investors)
    funding: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    #: investor → sorted companies; company → sorted investors
    portfolio: Dict[int, List[int]] = field(default_factory=dict)
    backers: Dict[int, List[int]] = field(default_factory=dict)
    #: follow-graph adjacency: user → sorted [(dst_type, dst_id)]
    follows_out: Dict[int, List[Tuple[str, int]]] = field(
        default_factory=dict)
    #: reverse follow edges: (dst_type, dst_id) → follower count
    follower_counts: Dict[Tuple[str, int], int] = field(
        default_factory=dict)
    #: investor → community label, label → sorted members
    community_of: Dict[int, int] = field(default_factory=dict)
    community_members: Dict[int, List[int]] = field(default_factory=dict)
    #: company → engagement summary row
    engagement: Dict[int, Dict] = field(default_factory=dict)
    #: per-kind precomputed degraded answers (the fallback floor)
    summaries: Dict[str, Dict] = field(default_factory=dict)

    # ------------------------------------------------------------------ build
    @classmethod
    def build(cls, dfs: MiniDfs, angellist_root: str = "/crawl/angellist",
              crunchbase_dir: str = "/crawl/crunchbase/organizations",
              facebook_dir: str = "/crawl/facebook/pages",
              twitter_dir: str = "/crawl/twitter/profiles",
              community_seed: int = 0) -> "ServeDataset":
        ds = cls()
        edges: Set[Tuple[int, int]] = set()

        for path, rec in _iter_parts(dfs, f"{angellist_root}/startups",
                                     ds.part_records):
            cid = int(rec["id"])
            ds.company_parts[cid] = path
            ds.company_names[cid] = rec.get("name", "")
        for path, rec in _iter_parts(dfs, f"{angellist_root}/users",
                                     ds.part_records):
            ds.user_parts[int(rec["id"])] = path
        for _, rec in _iter_parts(dfs, f"{angellist_root}/investments",
                                  ds.part_records):
            edges.add((int(rec["investor_id"]), int(rec["company_id"])))
        for _, rec in _iter_parts(dfs, f"{angellist_root}/follow_edges",
                                  ds.part_records):
            src = int(rec["src_user"])
            dst = (str(rec["dst_type"]), int(rec["dst_id"]))
            ds.follows_out.setdefault(src, []).append(dst)
            ds.follower_counts[dst] = ds.follower_counts.get(dst, 0) + 1
        for adj in ds.follows_out.values():
            adj.sort()

        for _, org in _iter_parts(dfs, crunchbase_dir, ds.part_records,
                                  optional=True):
            cid = int(org["angellist_id"])
            rounds = org.get("funding_rounds", [])
            investor_ids = {int(i) for r in rounds
                            for i in r.get("investor_ids", [])}
            ds.funding[cid] = (len(rounds), len(investor_ids))
            for investor in investor_ids:
                edges.add((investor, cid))

        for investor, company in sorted(edges):
            ds.portfolio.setdefault(investor, []).append(company)
            ds.backers.setdefault(company, []).append(investor)

        graph = BipartiteGraph(sorted(edges))
        communities = label_propagation(graph, seed=community_seed)
        for label, members in sorted(communities.items()):
            ordered = sorted(members)
            ds.community_members[label] = ordered
            for member in ordered:
                ds.community_of[member] = label

        likes: Dict[int, int] = {}
        tweets: Dict[int, Tuple[int, int]] = {}
        for _, page in _iter_parts(dfs, facebook_dir, ds.part_records,
                                   optional=True):
            likes[int(page["angellist_id"])] = int(page.get("fan_count", 0))
        for _, prof in _iter_parts(dfs, twitter_dir, ds.part_records,
                                   optional=True):
            tweets[int(prof["angellist_id"])] = (
                int(prof.get("statuses_count", 0)),
                int(prof.get("followers_count", 0)))
        for cid in ds.company_parts:
            rounds, _ = ds.funding.get(cid, (0, 0))
            statuses, followers = tweets.get(cid, (0, 0))
            ds.engagement[cid] = {
                "company_id": cid,
                "likes": likes.get(cid, 0),
                "tweets": statuses,
                "tw_followers": followers,
                "has_facebook": cid in likes,
                "has_twitter": cid in tweets,
                "success": rounds > 0,
            }

        ds._build_summaries()
        return ds

    def _build_summaries(self) -> None:
        num_companies = len(self.company_parts)
        successes = sum(1 for row in self.engagement.values()
                        if row["success"])
        degrees = [len(adj) for adj in self.follows_out.values()]
        self.summaries = {
            KIND_COMPANY: {
                "total_companies": num_companies,
                "success_pct": round(100.0 * successes
                                     / max(1, num_companies), 2)},
            KIND_INVESTOR: {
                "total_investors": len(self.portfolio),
                "total_investments": sum(len(p) for p in
                                         self.portfolio.values())},
            KIND_NEIGHBORHOOD: {
                "total_users": len(self.user_parts),
                "mean_out_degree": round(sum(degrees)
                                         / max(1, len(degrees)), 3)},
            KIND_COMMUNITY: {
                "num_communities": len(self.community_members),
                "covered_investors": len(self.community_of)},
            KIND_ENGAGEMENT: {
                "tracked_companies": len(self.engagement),
                "with_facebook": sum(1 for r in self.engagement.values()
                                     if r["has_facebook"]),
                "with_twitter": sum(1 for r in self.engagement.values()
                                    if r["has_twitter"])},
        }

    # ---------------------------------------------------------------- queries
    def units(self, kind: str, key: int, depth: int = 1) -> int:
        """Exact work units a query will touch (the planner's estimate).

        In the simulator the planner is exact: traversals over in-memory
        adjacency cost nothing in real time, so computing the true unit
        count up front is free — what matters is that the service charges
        the *simulated* seconds only when it decides to execute.
        """
        if kind == KIND_COMPANY:
            part = self.company_parts.get(key)
            return self.part_records.get(part, 1) if part else 1
        if kind == KIND_INVESTOR:
            part = self.user_parts.get(key)
            scan = self.part_records.get(part, 1) if part else 1
            return scan + len(self.portfolio.get(key, ()))
        if kind == KIND_NEIGHBORHOOD:
            _, units = self._traverse(key, depth)
            return units
        if kind == KIND_COMMUNITY:
            label = self.community_of.get(key)
            return 1 + len(self.community_members.get(label, ()))
        if kind == KIND_ENGAGEMENT:
            return 1
        raise ConfigError(f"unknown query kind {kind!r}; "
                          f"expected one of {QUERY_KINDS}")

    def dfs_part_for(self, kind: str, key: int) -> Optional[str]:
        """The DFS part file a query must read, if any."""
        if kind == KIND_COMPANY:
            return self.company_parts.get(key)
        if kind == KIND_INVESTOR:
            return self.user_parts.get(key)
        return None

    def run(self, kind: str, key: int, dfs: MiniDfs, depth: int = 1,
            hedge_after_s: float = 0.03) -> QueryAnswer:
        """Execute one query against the indexes (and DFS if needed)."""
        if kind == KIND_COMPANY:
            return self._run_company(key, dfs, hedge_after_s)
        if kind == KIND_INVESTOR:
            return self._run_investor(key, dfs, hedge_after_s)
        if kind == KIND_NEIGHBORHOOD:
            value, units = self._traverse(key, depth)
            return QueryAnswer(value=value, units=units)
        if kind == KIND_COMMUNITY:
            return self._run_community(key)
        if kind == KIND_ENGAGEMENT:
            row = self.engagement.get(key)
            return QueryAnswer(
                value=dict(row) if row else {"company_id": key,
                                             "known": False},
                units=1)
        raise ConfigError(f"unknown query kind {kind!r}; "
                          f"expected one of {QUERY_KINDS}")

    def _read_record(self, part: str, key: int, dfs: MiniDfs,
                     hedge_after_s: float) -> Tuple[Optional[Dict],
                                                    HedgedRead]:
        hedged = dfs.read_hedged(part, hedge_after_s=hedge_after_s)
        for line in hedged.data.decode("utf-8").splitlines():
            if not line:
                continue
            rec = json.loads(line)
            if int(rec.get("id", -1)) == key:
                return rec, hedged
        return None, hedged

    def _run_company(self, key: int, dfs: MiniDfs,
                     hedge_after_s: float) -> QueryAnswer:
        part = self.company_parts.get(key)
        if part is None:
            return QueryAnswer(value={"company_id": key, "known": False},
                               units=1)
        rec, hedged = self._read_record(part, key, dfs, hedge_after_s)
        rounds, round_investors = self.funding.get(key, (0, 0))
        value = {
            "company_id": key,
            "known": rec is not None,
            "record": rec,
            "funding_rounds": rounds,
            "round_investors": round_investors,
            "backers": len(self.backers.get(key, ())),
            "followers": self.follower_counts.get(("startup", key), 0),
        }
        return QueryAnswer(value=value, units=self.part_records[part],
                           hedged=hedged)

    def _run_investor(self, key: int, dfs: MiniDfs,
                      hedge_after_s: float) -> QueryAnswer:
        part = self.user_parts.get(key)
        if part is None:
            return QueryAnswer(value={"user_id": key, "known": False},
                               units=1)
        rec, hedged = self._read_record(part, key, dfs, hedge_after_s)
        portfolio = self.portfolio.get(key, [])
        value = {
            "user_id": key,
            "known": rec is not None,
            "record": rec,
            "investments": len(portfolio),
            "portfolio_sample": portfolio[:MAX_IDS_IN_ANSWER],
            "community": self.community_of.get(key),
            "follows": len(self.follows_out.get(key, ())),
            "followers": self.follower_counts.get(("user", key), 0),
        }
        units = self.part_records[part] + len(portfolio)
        return QueryAnswer(value=value, units=units, hedged=hedged)

    def _traverse(self, key: int, depth: int) -> Tuple[Dict, int]:
        """BFS over follow edges from a user, ``depth`` hops out."""
        depth = max(1, min(int(depth), 3))
        seen_users = {key}
        seen_companies: Set[int] = set()
        frontier = [key]
        units = 1
        for _ in range(depth):
            next_frontier: List[int] = []
            for uid in frontier:
                for dst_type, dst_id in self.follows_out.get(uid, ()):
                    units += 1
                    if dst_type == "user":
                        if dst_id not in seen_users:
                            seen_users.add(dst_id)
                            next_frontier.append(dst_id)
                    else:
                        seen_companies.add(dst_id)
            frontier = next_frontier
        value = {
            "user_id": key,
            "known": key in self.user_parts,
            "depth": depth,
            "users_reached": len(seen_users) - 1,
            "companies_reached": len(seen_companies),
            "user_sample": sorted(seen_users - {key})[:MAX_IDS_IN_ANSWER],
            "company_sample": sorted(seen_companies)[:MAX_IDS_IN_ANSWER],
        }
        return value, units

    def _run_community(self, key: int) -> QueryAnswer:
        label = self.community_of.get(key)
        members = self.community_members.get(label, []) if (
            label is not None) else []
        value = {
            "user_id": key,
            "community": label,
            "size": len(members),
            "member_sample": [m for m in members
                              if m != key][:MAX_IDS_IN_ANSWER],
        }
        return QueryAnswer(value=value, units=1 + len(members))

    def summary_answer(self, kind: str, key: int) -> Dict:
        """The degraded floor: a cheap global summary echoing the key."""
        base = self.summaries.get(kind)
        if base is None:
            raise ConfigError(f"unknown query kind {kind!r}")
        return {"key": key, "degraded": True, **base}

    # -------------------------------------------------------------- key pools
    def keys_for(self, kind: str) -> List[int]:
        """Valid keys for a kind, sorted (the load generator draws here)."""
        if kind == KIND_COMPANY or kind == KIND_ENGAGEMENT:
            return sorted(self.company_parts)
        if kind == KIND_INVESTOR or kind == KIND_COMMUNITY:
            return sorted(self.portfolio)
        if kind == KIND_NEIGHBORHOOD:
            return sorted(self.follows_out)
        raise ConfigError(f"unknown query kind {kind!r}")


def _iter_parts(dfs: MiniDfs, directory: str,
                part_records: Dict[str, int], optional: bool = False):
    """Yield (part_path, record) over a dataset, counting records/part."""
    parts = dfs.glob_parts(directory)
    if not parts and not optional:
        raise ConfigError(f"no part files under {directory}; "
                          f"run the crawl before building serve indexes")
    for path in parts:
        count = 0
        for line in dfs.read_text(path).splitlines():
            if not line:
                continue
            count += 1
            yield path, json.loads(line)
        part_records[path] = count
