"""Overload-safe online query serving over the crawled datasets.

The serve tier answers company/investor/graph/community/engagement
queries out of a :class:`~repro.serve.dataset.ServeDataset` while
staying predictable under load: admission control at the front door,
deadline propagation before any work starts, and a graceful-degradation
ladder (stale cache → precomputed summary) when the full answer cannot
be afforded. Everything runs in simulated time on the shared clock, so
overload scenarios replay deterministically.
"""

from repro.serve.admission import AdmissionController, TokenBucket
from repro.serve.autoscale import AutoscaleConfig, Autoscaler
from repro.serve.dataset import QUERY_KINDS, QueryAnswer, ServeDataset
from repro.serve.degrade import ResultCache
from repro.serve.health import (STATE_DEGRADED, STATE_HEALTHY,
                                STATE_SHEDDING, HealthMonitor)
from repro.serve.loadgen import (BenchReport, LoadProfile,
                                 generate_schedule, replay, run_bench)
from repro.serve.metrics import (PRIORITY_CLASSES, STATUS_PARTIAL,
                                 ServeMetrics)
from repro.serve.service import (QueryService, ServeConfig, ServeRequest,
                                 ServeResult)
from repro.serve.sharding import (ShardConfig, ShardedQueryService,
                                  ShardServer, shard_of, split_dataset)
from repro.serve.tenancy import (FairShareAdmission, Tenant,
                                 default_tenants)

__all__ = [
    "AdmissionController",
    "TokenBucket",
    "AutoscaleConfig",
    "Autoscaler",
    "QUERY_KINDS",
    "QueryAnswer",
    "ServeDataset",
    "ResultCache",
    "HealthMonitor",
    "STATE_HEALTHY",
    "STATE_DEGRADED",
    "STATE_SHEDDING",
    "BenchReport",
    "LoadProfile",
    "generate_schedule",
    "replay",
    "run_bench",
    "PRIORITY_CLASSES",
    "STATUS_PARTIAL",
    "ServeMetrics",
    "QueryService",
    "ServeConfig",
    "ServeRequest",
    "ServeResult",
    "ShardConfig",
    "ShardedQueryService",
    "ShardServer",
    "shard_of",
    "split_dataset",
    "FairShareAdmission",
    "Tenant",
    "default_tenants",
]
