"""Health state machine of the query tier: healthy → degraded → shedding.

The monitor watches a sliding window of recent request outcomes and
classifies the service's posture:

* **healthy** — requests are answered fresh, nothing is shed;
* **degraded** — a meaningful fraction of answers are stale/summary
  fallbacks or backend faults are being observed;
* **shedding** — the front door is actively rejecting load.

Exit thresholds sit below entry thresholds (hysteresis), so the state
does not flap at the boundary. All decisions are counter-based and
deterministic; transitions are exported through
:class:`~repro.serve.metrics.ServeMetrics` for the benchmark reports.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

STATE_HEALTHY = "healthy"
STATE_DEGRADED = "degraded"
STATE_SHEDDING = "shedding"

#: window event categories
EVENT_OK = "ok"              # fresh/cached answer
EVENT_DEGRADED = "degraded"  # stale/summary answer, fault, deadline miss
EVENT_SHED = "shed"          # rejected at admission


class HealthMonitor:
    """Sliding-window classifier over request outcomes."""

    def __init__(self, window: int = 100, min_events: int = 20,
                 shed_enter: float = 0.10, shed_exit: float = 0.02,
                 degrade_enter: float = 0.05, degrade_exit: float = 0.01):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if not 0 < shed_exit <= shed_enter < 1:
            raise ValueError("need 0 < shed_exit <= shed_enter < 1")
        if not 0 < degrade_exit <= degrade_enter < 1:
            raise ValueError("need 0 < degrade_exit <= degrade_enter < 1")
        self.window = window
        self.min_events = max(1, min_events)
        self.shed_enter = shed_enter
        self.shed_exit = shed_exit
        self.degrade_enter = degrade_enter
        self.degrade_exit = degrade_exit
        self.state = STATE_HEALTHY
        self._events: Deque[str] = deque(maxlen=window)
        self._metrics = None

    def attach_metrics(self, metrics) -> None:
        """Export transitions through a ServeMetrics instance."""
        self._metrics = metrics

    # ------------------------------------------------------------------ flow
    def record(self, event: str, sim_time: float) -> str:
        """Feed one outcome; returns the (possibly new) state."""
        if event not in (EVENT_OK, EVENT_DEGRADED, EVENT_SHED):
            raise ValueError(f"unknown health event {event!r}")
        self._events.append(event)
        new_state = self._classify()
        if new_state != self.state:
            if self._metrics is not None:
                self._metrics.record_health_transition(
                    sim_time, self.state, new_state)
            self.state = new_state
        return self.state

    def _classify(self) -> str:
        total = len(self._events)
        if total < self.min_events:
            return self.state
        shed = sum(1 for e in self._events if e == EVENT_SHED) / total
        degraded = sum(1 for e in self._events
                       if e == EVENT_DEGRADED) / total
        if self.state == STATE_SHEDDING:
            # leave shedding only once rejections have really stopped
            if shed > self.shed_exit:
                return STATE_SHEDDING
            return (STATE_DEGRADED if degraded > self.degrade_exit
                    else STATE_HEALTHY)
        if shed >= self.shed_enter:
            return STATE_SHEDDING
        if self.state == STATE_DEGRADED:
            if degraded > self.degrade_exit:
                return STATE_DEGRADED
            return STATE_HEALTHY
        if degraded >= self.degrade_enter:
            return STATE_DEGRADED
        return STATE_HEALTHY

    # ------------------------------------------------------------ inspection
    @property
    def window_fill(self) -> int:
        return len(self._events)
