"""Per-tenant fair-share admission: weighted buckets + WFQ dequeue.

Multi-tenant isolation is enforced at the same front door as single-
tenant admission control, with two mechanisms stacked:

* **strict weighted token buckets** — tenant *i* gets its own bucket at
  rate ``qps_limit * w_i / W`` (W = sum of weights). There is no
  borrowing: an abusive tenant offering 10x its share is clipped to its
  own bucket and cannot draw down anyone else's tokens;
* **weighted-fair queueing** — each tenant owns a bounded priority
  queue (an arrival displacing a queued request can only evict a
  *same-tenant* victim), and the worker loop dequeues by virtual finish
  time: when tenant *i* becomes backlogged (and again after each
  service) it is stamped a frozen tag
  ``max(V, last_finish_i) + 1 / w_i``; the smallest stamped tag wins
  each dequeue. Freezing the tag at backlog time — not at pop time —
  is what makes the schedule converge to the weight ratio: a
  backlogged tenant's turn cannot be pushed back by the virtual clock
  advancing under other tenants' service.

Together these give zero cross-tenant starvation *by construction*: a
compliant tenant's admitted rate and queue space never depend on any
other tenant's behaviour. The class mirrors the protocol of
:class:`~repro.serve.admission.AdmissionController` (``offer`` /
``pop`` / ``queue_len`` / ``max_queue_len``) so the open-loop replay in
:mod:`repro.serve.loadgen` drives either interchangeably.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.serve.admission import (ADMIT, AdmissionDecision, TokenBucket,
                                   priority_rank)
from repro.serve.metrics import STATUS_SHED_QUEUE, STATUS_SHED_RATE
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class Tenant:
    """One tenant of the serve tier and its fair-share weight."""

    tenant_id: str
    weight: float = 1.0

    def __post_init__(self):
        if not self.tenant_id:
            raise ConfigError("tenant_id must be non-empty")
        if self.weight <= 0:
            raise ConfigError(
                f"tenant weight must be > 0, got {self.weight}")


def default_tenants(count: int, weights: Sequence[float] = ()) -> List[Tenant]:
    """``t0..t{n-1}`` with the given weights (default: all 1.0)."""
    if count < 1:
        raise ConfigError(f"tenant count must be >= 1, got {count}")
    if weights and len(weights) != count:
        raise ConfigError(f"expected {count} weights, got {len(weights)}")
    return [Tenant(f"t{i}", weights[i] if weights else 1.0)
            for i in range(count)]


@dataclass(order=True)
class _Entry:
    rank: int
    seq: int
    request: object = field(compare=False)


class FairShareAdmission:
    """Front door with per-tenant isolation; drop-in for AdmissionController."""

    def __init__(self, qps_limit: float, queue_depth: int,
                 tenants: Sequence[Tenant], burst: float = None):
        if qps_limit <= 0:
            raise ConfigError(f"qps_limit must be > 0, got {qps_limit}")
        if queue_depth < 1:
            raise ConfigError(
                f"queue_depth must be >= 1, got {queue_depth}")
        if not tenants:
            raise ConfigError("need at least one tenant")
        ids = [t.tenant_id for t in tenants]
        if len(set(ids)) != len(ids):
            raise ConfigError(f"duplicate tenant ids in {ids}")
        self.qps_limit = float(qps_limit)
        self.queue_depth = int(queue_depth)
        self.tenants: Dict[str, Tenant] = {t.tenant_id: t for t in tenants}
        total_weight = sum(t.weight for t in tenants)
        total_burst = (burst if burst is not None
                       else max(1.0, qps_limit * 0.25))
        per_tenant_depth = max(1, queue_depth // len(tenants))
        self.tenant_queue_depth = per_tenant_depth
        self.buckets: Dict[str, TokenBucket] = {}
        self._queues: Dict[str, List[_Entry]] = {}
        self._last_finish: Dict[str, float] = {}
        #: frozen virtual finish tag of each backlogged tenant (None =
        #: idle); stamped on idle→backlogged and after every dequeue
        self._tags: Dict[str, Optional[float]] = {}
        for t in tenants:
            share = t.weight / total_weight
            self.buckets[t.tenant_id] = TokenBucket(
                qps_limit * share, max(1.0, total_burst * share))
            self._queues[t.tenant_id] = []
            self._last_finish[t.tenant_id] = 0.0
            self._tags[t.tenant_id] = None
        self._virtual_time = 0.0
        self._seq = 0
        #: high-water mark over the *total* queued population
        self.max_queue_len = 0

    # ------------------------------------------------------------------ flow
    def share(self, tenant_id: str) -> float:
        """Tenant's guaranteed fraction of the admitted rate."""
        tenant = self.tenants.get(tenant_id)
        if tenant is None:
            raise ConfigError(f"unknown tenant {tenant_id!r}")
        return tenant.weight / sum(t.weight for t in self.tenants.values())

    def offer(self, request, now: float) -> AdmissionDecision:
        """Admit, shed, or admit-by-same-tenant-eviction one arrival.

        Isolation invariant: every path through here touches only the
        arriving request's own tenant — its bucket, its queue, its
        eviction victims.
        """
        tenant_id = getattr(request, "tenant", "default")
        bucket = self.buckets.get(tenant_id)
        if bucket is None:
            raise ConfigError(f"unknown tenant {tenant_id!r}; expected "
                              f"one of {sorted(self.tenants)}")
        if not bucket.try_take(now):
            return AdmissionDecision(STATUS_SHED_RATE)
        rank = priority_rank(request.priority)
        queue = self._queues[tenant_id]
        if len(queue) >= self.tenant_queue_depth:
            worst = max(queue)
            if worst.rank <= rank:
                return AdmissionDecision(STATUS_SHED_QUEUE)
            queue.remove(worst)
            self._push(tenant_id, rank, request)
            return AdmissionDecision(ADMIT, evicted=worst.request)
        self._push(tenant_id, rank, request)
        return AdmissionDecision(ADMIT)

    def _stamp(self, tenant_id: str) -> None:
        """Freeze this tenant's next virtual finish tag."""
        weight = self.tenants[tenant_id].weight
        self._tags[tenant_id] = max(
            self._virtual_time,
            self._last_finish[tenant_id]) + 1.0 / weight

    def _push(self, tenant_id: str, rank: int, request) -> None:
        if not self._queues[tenant_id]:
            self._stamp(tenant_id)   # idle -> backlogged
        self._queues[tenant_id].append(_Entry(rank, self._seq, request))
        self._seq += 1
        self.max_queue_len = max(self.max_queue_len, self.queue_len)

    def pop(self):
        """WFQ dequeue: the tenant with the smallest frozen finish tag.

        The tag was stamped when the tenant became backlogged (or after
        its previous dequeue), so other tenants' service cannot push it
        back; a tenant re-stamps immediately after each dequeue, so its
        opportunities advance by ``1 / w_i`` per service and the
        long-run dequeue ratio among backlogged tenants equals the
        weight ratio. Within the chosen tenant: highest priority first,
        FIFO within a class. Ties break on tenant id (deterministic).
        """
        best_id, best_tag = None, 0.0
        for tenant_id in sorted(self._queues):
            tag = self._tags[tenant_id]
            if not self._queues[tenant_id] or tag is None:
                continue
            if best_id is None or tag < best_tag:
                best_id, best_tag = tenant_id, tag
        if best_id is None:
            return None
        queue = self._queues[best_id]
        entry = min(queue)
        queue.remove(entry)
        self._last_finish[best_id] = best_tag
        self._virtual_time = max(self._virtual_time, best_tag)
        if queue:
            self._stamp(best_id)
        else:
            self._tags[best_id] = None
        return entry.request

    # ------------------------------------------------------------ inspection
    @property
    def queue_len(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def tenant_queue_len(self, tenant_id: str) -> int:
        return len(self._queues[tenant_id])

    def queued(self) -> Tuple:
        merged: List[_Entry] = []
        for queue in self._queues.values():
            merged.extend(queue)
        return tuple(e.request for e in sorted(merged))
