"""Deterministic HealthMonitor-driven autoscaling of shard replicas.

The autoscaler is a pure control loop over simulated state: it ticks
every ``tick_every`` executed requests (request count, not wall time, so
two same-seed runs tick at identical points), reads each shard's
short-window :class:`~repro.serve.health.HealthMonitor` plus its live
replica count, and turns *sustained* signals into scaling actions:

* **panic add** — a shard with zero live replicas gets a new replica
  immediately (no hysteresis: the shard is serving nothing);
* **scale up** — ``scale_up_after`` consecutive degraded/shedding ticks
  add one replica, up to ``max_replicas``;
* **scale down** — ``scale_down_after`` consecutive healthy ticks drain
  one replica, down to ``min_replicas``.

A new replica boots from the shard's DFS-persisted index and becomes
available ``replica_boot_s`` later on the service clock. Every decision
is appended to ``ServeMetrics.scaling_decisions`` with its simulated
time, shard, action, resulting replica count, and reason — the bench
asserts this log is byte-identical across same-seed runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.serve.health import STATE_HEALTHY
from repro.util.errors import ConfigError

ACTION_ADD = "add_replica"
ACTION_DRAIN = "drain_replica"

REASON_DEAD = "all-replicas-dead"
REASON_DEGRADED = "sustained-degraded"
REASON_HEALTHY = "sustained-healthy"


@dataclass
class AutoscaleConfig:
    """Control-loop knobs (CLI: ``--autoscale``)."""

    #: evaluate every N executed requests
    tick_every: int = 25
    #: consecutive degraded ticks before adding a replica
    scale_up_after: int = 2
    #: consecutive healthy ticks before draining a replica
    scale_down_after: int = 6
    min_replicas: int = 1
    max_replicas: int = 4
    #: simulated time for a new replica to load its index from DFS
    replica_boot_s: float = 0.05

    def __post_init__(self):
        if self.tick_every < 1:
            raise ConfigError("tick_every must be >= 1")
        if self.scale_up_after < 1 or self.scale_down_after < 1:
            raise ConfigError("scale thresholds must be >= 1")
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ConfigError("need 1 <= min_replicas <= max_replicas")
        if self.replica_boot_s < 0:
            raise ConfigError("replica_boot_s must be >= 0")


class Autoscaler:
    """Ticks over shard servers; adds/drains replicas deterministically.

    ``servers`` is any sequence of shard-server objects exposing
    ``shard_id``, ``replica_count``, ``fleet_size``,
    ``alive_count(now)``, ``add_replica(now, boot_s)``,
    ``reboot_one(now, boot_s)`` and ``drain_replica()`` — the concrete
    type lives in :mod:`repro.serve.sharding`.
    """

    def __init__(self, config: AutoscaleConfig, servers: Sequence,
                 monitors: Dict[int, object], metrics):
        self.config = config
        self.servers = list(servers)
        self.monitors = monitors
        self.metrics = metrics
        self._degraded_ticks: Dict[int, int] = {
            s.shard_id: 0 for s in self.servers}
        self._healthy_ticks: Dict[int, int] = {
            s.shard_id: 0 for s in self.servers}
        self.ticks = 0

    def tick(self, now: float) -> List[tuple]:
        """One control-loop evaluation; returns the decisions taken."""
        cfg = self.config
        self.ticks += 1
        decisions: List[tuple] = []
        for server in self.servers:
            sid = server.shard_id
            if server.alive_count(now) == 0:
                # bound on fleet *size*: a dead fleet at max_replicas is
                # rebooted in place, never grown past the cap
                if server.fleet_size < cfg.max_replicas:
                    server.add_replica(now, cfg.replica_boot_s)
                else:
                    server.reboot_one(now, cfg.replica_boot_s)
                self._degraded_ticks[sid] = 0
                self._healthy_ticks[sid] = 0
                decisions.append(self._record(now, sid, ACTION_ADD,
                                              server.replica_count,
                                              REASON_DEAD))
                continue
            state = self.monitors[sid].state
            if state != STATE_HEALTHY:
                self._degraded_ticks[sid] += 1
                self._healthy_ticks[sid] = 0
                if (self._degraded_ticks[sid] >= cfg.scale_up_after
                        and server.replica_count < cfg.max_replicas):
                    if server.fleet_size < cfg.max_replicas:
                        server.add_replica(now, cfg.replica_boot_s)
                    else:
                        server.reboot_one(now, cfg.replica_boot_s)
                    self._degraded_ticks[sid] = 0
                    decisions.append(self._record(now, sid, ACTION_ADD,
                                                  server.replica_count,
                                                  REASON_DEGRADED))
            else:
                self._healthy_ticks[sid] += 1
                self._degraded_ticks[sid] = 0
                if (self._healthy_ticks[sid] >= cfg.scale_down_after
                        and server.alive_count(now) > cfg.min_replicas):
                    server.drain_replica()
                    self._healthy_ticks[sid] = 0
                    decisions.append(self._record(now, sid, ACTION_DRAIN,
                                                  server.replica_count,
                                                  REASON_HEALTHY))
        return decisions

    def _record(self, now: float, shard_id: int, action: str,
                replicas_after: int, reason: str) -> tuple:
        self.metrics.record_scaling(now, shard_id, action, replicas_after,
                                    reason)
        return (now, shard_id, action, replicas_after, reason)
