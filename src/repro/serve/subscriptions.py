"""Durable standing-query subscriptions: a MiniDfs-persisted registry.

The batch tier answers "who invested in my community?" when asked; the
standing-query tier answers it the moment the ingest pipeline lands the
edge. A *subscription* is a tenant-scoped predicate over the derived
edge streams:

``community_investor``   fire when a new investment lands whose
                         investor belongs to community ``key``;
``company_funding``      fire when a funding (investment) edge lands
                         for company ``key``;
``neighborhood_follow``  fire when a follow edge lands whose target is
                         user ``key`` or one of the users ``key``
                         already follows (the 1-hop neighborhood).

The registry is an append-only event log on the MiniDfs — one atomic
JSON file per lifecycle event (register / pause / resume / cancel),
numbered by a monotonic sequence recovered on :meth:`open`. Nothing
about a subscription lives only in memory: a crashed process rebuilds
the registry byte-identically by replaying the log, the same recovery
discipline as the ingest ledger (:mod:`repro.crawl.ledger`). Ids are
deterministic (``sub-000001`` in registration order), so a same-seed
rerun mints the same ids and the downstream notification ids — keyed by
(subscription, unit, entity) — reproduce bit-for-bit.
"""

from __future__ import annotations

import json
import posixpath
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.dfs.filesystem import MiniDfs
from repro.util.errors import ConfigError

#: predicate kinds a subscription can watch
KIND_COMMUNITY_INVESTOR = "community_investor"
KIND_COMPANY_FUNDING = "company_funding"
KIND_NEIGHBORHOOD_FOLLOW = "neighborhood_follow"
SUBSCRIPTION_KINDS = (KIND_COMMUNITY_INVESTOR, KIND_COMPANY_FUNDING,
                      KIND_NEIGHBORHOOD_FOLLOW)

#: lifecycle states
STATE_ACTIVE = "active"
STATE_PAUSED = "paused"
STATE_CANCELLED = "cancelled"

_OP_REGISTER = "register"
_OP_PAUSE = "pause"
_OP_RESUME = "resume"
_OP_CANCEL = "cancel"


@dataclass
class Subscription:
    """One standing query and its lifecycle state."""

    sub_id: str
    tenant: str
    kind: str
    key: int
    subscriber_id: str
    state: str = STATE_ACTIVE

    @property
    def active(self) -> bool:
        return self.state == STATE_ACTIVE

    def as_dict(self) -> Dict:
        return {"sub_id": self.sub_id, "tenant": self.tenant,
                "kind": self.kind, "key": self.key,
                "subscriber_id": self.subscriber_id, "state": self.state}


class SubscriptionRegistry:
    """MiniDfs-persisted subscription store, rebuilt by log replay."""

    def __init__(self, dfs: MiniDfs, root: str = "/serve/subscriptions"):
        self.dfs = dfs
        self.root = root.rstrip("/")
        self._subs: Dict[str, Subscription] = {}
        self._next_seq = 1
        self._next_sub = 1
        self._opened = False
        #: bumped on every applied event; index builders use it to know
        #: when their compiled predicate index went stale
        self.version = 0

    # ---------------------------------------------------------------- open
    @property
    def events_root(self) -> str:
        return f"{self.root}/events"

    def open(self) -> "SubscriptionRegistry":
        """Recover the registry by replaying the event log in order."""
        self.dfs.sweep_temps(self.root)
        self._subs = {}
        self._next_seq = 1
        self._next_sub = 1
        events = []
        for path in self.dfs.listdir(self.events_root):
            if not posixpath.basename(path).startswith("evt-"):
                continue
            events.append(json.loads(self.dfs.read_text(path)))
        for event in sorted(events, key=lambda e: e["seq"]):
            self._apply(event)
            self._next_seq = event["seq"] + 1
        self._opened = True
        return self

    def _check_open(self) -> None:
        if not self._opened:
            raise ConfigError("registry must be open()ed before use")

    # -------------------------------------------------------------- events
    def _append(self, event: Dict) -> Dict:
        event = dict(event, seq=self._next_seq)
        path = f"{self.events_root}/evt-{event['seq']:06d}.json"
        self.dfs.write_atomic_text(path, json.dumps(event, sort_keys=True))
        self._next_seq += 1
        self._apply(event)
        return event

    def _apply(self, event: Dict) -> None:
        op = event["op"]
        if op == _OP_REGISTER:
            sub = Subscription(
                sub_id=event["sub_id"], tenant=event["tenant"],
                kind=event["kind"], key=int(event["key"]),
                subscriber_id=event["subscriber_id"])
            self._subs[sub.sub_id] = sub
            ordinal = int(sub.sub_id.split("-")[1])
            self._next_sub = max(self._next_sub, ordinal + 1)
        elif op == _OP_PAUSE:
            self._subs[event["sub_id"]].state = STATE_PAUSED
        elif op == _OP_RESUME:
            self._subs[event["sub_id"]].state = STATE_ACTIVE
        elif op == _OP_CANCEL:
            self._subs[event["sub_id"]].state = STATE_CANCELLED
        else:  # pragma: no cover - log corruption guard
            raise ConfigError(f"unknown subscription event op {op!r}")
        self.version += 1

    # ------------------------------------------------------------ lifecycle
    def register(self, tenant: str, kind: str, key: int,
                 subscriber_id: Optional[str] = None) -> Subscription:
        """Create a standing query; durable before this returns."""
        self._check_open()
        if kind not in SUBSCRIPTION_KINDS:
            raise ConfigError(f"unknown subscription kind {kind!r}; "
                              f"expected one of {SUBSCRIPTION_KINDS}")
        if not tenant:
            raise ConfigError("tenant must be non-empty")
        sub_id = f"sub-{self._next_sub:06d}"
        self._append({"op": _OP_REGISTER, "sub_id": sub_id,
                      "tenant": tenant, "kind": kind, "key": int(key),
                      "subscriber_id": subscriber_id or f"{tenant}:default"})
        return self._subs[sub_id]

    def _transition(self, sub_id: str, op: str, allowed: tuple) -> None:
        self._check_open()
        sub = self._subs.get(sub_id)
        if sub is None:
            raise ConfigError(f"unknown subscription {sub_id!r}")
        if sub.state == STATE_CANCELLED:
            raise ConfigError(f"{sub_id} is cancelled (terminal)")
        if sub.state not in allowed:
            raise ConfigError(
                f"cannot {op} {sub_id} in state {sub.state!r}")
        self._append({"op": op, "sub_id": sub_id})

    def pause(self, sub_id: str) -> None:
        self._transition(sub_id, _OP_PAUSE, (STATE_ACTIVE,))

    def resume(self, sub_id: str) -> None:
        self._transition(sub_id, _OP_RESUME, (STATE_PAUSED,))

    def cancel(self, sub_id: str) -> None:
        self._transition(sub_id, _OP_CANCEL, (STATE_ACTIVE, STATE_PAUSED))

    # ------------------------------------------------------------ inspection
    def get(self, sub_id: str) -> Optional[Subscription]:
        return self._subs.get(sub_id)

    def all(self) -> List[Subscription]:
        return [self._subs[s] for s in sorted(self._subs)]

    def active(self) -> List[Subscription]:
        return [s for s in self.all() if s.active]

    def __len__(self) -> int:
        return len(self._subs)
