"""The overload-safe online query service.

One request's life, in order:

1. **admission** — token bucket then bounded priority queue
   (:mod:`repro.serve.admission`); overload is shed at the front door,
   deterministically, before it costs anything;
2. **deadline propagation** — every request carries a latency budget
   from arrival; before any backend work starts the planner's exact
   cost estimate is checked against the remaining budget, so a request
   with 200 ms left never starts a 500 ms traversal;
3. **degradation** — on deadline pressure, an open circuit breaker, or
   an injected backend fault, the service walks the ladder in
   :mod:`repro.serve.degrade`: stale cache answer (flagged
   ``stale=True``) → precomputed summary → honest ``deadline_exceeded``;
4. **execution** — cache-missed company/investor lookups read their DFS
   part file with hedged replica reads; costs are simulated seconds on
   the shared :class:`~repro.util.clock.Clock`, so every scenario —
   including brownouts from a :class:`~repro.net.faults.FaultSchedule`
   — replays bit-for-bit.

A per-kind :class:`~repro.crawl.breaker.CircuitBreaker` (the crawl
tier's breaker, reused) stops the service from paying fault-detection
cost on every request while a backend browns out; the
:class:`~repro.serve.health.HealthMonitor` classifies the resulting
posture (healthy/degraded/shedding) into ``ServeMetrics``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.crawl.breaker import CircuitBreaker
from repro.dfs.filesystem import MiniDfs
from repro.net.faults import (FAULT_BROWNOUT, FAULT_SLOW, FAULT_STORM,
                              FaultSchedule)
from repro.serve.admission import ADMIT, AdmissionController
from repro.serve.dataset import QUERY_KINDS, ServeDataset
from repro.serve.degrade import ResultCache
from repro.serve.health import (EVENT_DEGRADED, EVENT_OK, EVENT_SHED,
                                HealthMonitor)
from repro.serve.metrics import (ANSWERED_STATUSES, STATUS_CACHED,
                                 STATUS_DEADLINE, STATUS_FRESH,
                                 STATUS_SHED_QUEUE, STATUS_STALE,
                                 STATUS_SUMMARY, ServeMetrics)
from repro.util.clock import Clock, SimClock
from repro.util.errors import ConfigError


@dataclass
class ServeConfig:
    """Operational knobs of the query tier (CLI: ``repro serve[-bench]``)."""

    #: sustained admitted request rate; excess arrivals shed at the door
    qps_limit: float = 50.0
    #: token-bucket burst allowance (None = qps_limit / 4)
    burst: Optional[float] = None
    #: bounded queue depth — the hard cap on waiting requests
    queue_depth: int = 16
    #: simulated worker slots executing queries
    workers: int = 2
    #: latency budget of a request that does not bring its own
    default_deadline_s: float = 0.25
    #: result-cache TTLs: answers younger than fresh are served outright,
    #: answers younger than stale back the degradation ladder
    fresh_ttl_s: float = 1.0
    stale_ttl_s: float = 30.0
    cache_entries: int = 4096
    #: hedge a replicated DFS read after this long without an answer
    hedge_after_s: float = 0.03
    # ---- simulated cost model (seconds) ----
    base_cost_s: float = 0.002       # fixed per-backend-query overhead
    unit_cost_s: float = 2e-6        # per record/edge touched
    cache_read_cost_s: float = 0.0005
    summary_cost_s: float = 0.0005
    fault_detect_cost_s: float = 0.002
    # ---- per-kind circuit breakers (crawl breaker, reused) ----
    breaker_failure_threshold: int = 3
    breaker_cooldown_s: float = 0.5

    def __post_init__(self):
        if self.qps_limit <= 0:
            raise ConfigError(f"qps_limit must be > 0, got {self.qps_limit}")
        if self.queue_depth < 1:
            raise ConfigError("queue_depth must be >= 1")
        if self.workers < 1:
            raise ConfigError("workers must be >= 1")
        if self.default_deadline_s <= 0:
            raise ConfigError("default_deadline_s must be > 0")
        if self.stale_ttl_s < self.fresh_ttl_s:
            raise ConfigError("stale_ttl_s must be >= fresh_ttl_s")


@dataclass
class ServeRequest:
    """One query: what to answer, how important, and by when."""

    kind: str
    key: int
    priority: str = "interactive"
    #: absolute arrival time on the service clock (set by submit/loadgen)
    arrival_s: float = 0.0
    #: latency budget relative to arrival (None = service default)
    deadline_s: Optional[float] = None
    #: traversal depth for neighborhood queries
    depth: int = 1
    #: owning tenant (fair-share isolation in the sharded tier)
    tenant: str = "default"

    def __post_init__(self):
        if self.kind not in QUERY_KINDS:
            raise ConfigError(f"unknown query kind {self.kind!r}; "
                              f"expected one of {QUERY_KINDS}")


@dataclass
class ServeResult:
    """Terminal outcome of one request."""

    request: ServeRequest
    status: str
    value: Any = None
    #: True when the answer is a degraded fallback (stale or summary)
    stale: bool = False
    latency_s: float = 0.0   # finish − arrival (0 for front-door sheds)
    service_s: float = 0.0   # simulated execution cost charged
    started_s: float = 0.0
    #: coverage accounting for sharded answers: set on every scatter-
    #: gather result; ``partial=True`` means some shards were lost and
    #: the value covers only ``shards_answered / shards_total``
    coverage: Optional[Dict[str, Any]] = None

    @property
    def answered(self) -> bool:
        return self.status in ANSWERED_STATUSES

    @property
    def partial(self) -> bool:
        return bool(self.coverage) and self.coverage.get("partial", False)


class QueryService:
    """Online lookups over a :class:`ServeDataset`, overload-safe."""

    def __init__(self, dataset: ServeDataset, dfs: MiniDfs,
                 clock: Optional[Clock] = None,
                 config: Optional[ServeConfig] = None,
                 faults: Optional[FaultSchedule] = None):
        self.dataset = dataset
        self.dfs = dfs
        self.clock = clock or SimClock()
        self.config = config or ServeConfig()
        self.faults = faults or FaultSchedule.none()
        self.metrics = ServeMetrics()
        self.admission = AdmissionController(self.config.qps_limit,
                                             self.config.queue_depth,
                                             burst=self.config.burst)
        self.cache = ResultCache(self.config.fresh_ttl_s,
                                 self.config.stale_ttl_s,
                                 self.config.cache_entries)
        self.health = HealthMonitor()
        self.health.attach_metrics(self.metrics)
        self.breakers = {
            kind: CircuitBreaker(
                self.clock, name=f"serve-{kind}",
                failure_threshold=self.config.breaker_failure_threshold,
                cooldown_s=self.config.breaker_cooldown_s)
            for kind in QUERY_KINDS}
        self._request_index = 0

    # ------------------------------------------------------------- admission
    def submit(self, request: ServeRequest, now: Optional[float] = None,
               ) -> Tuple[Optional[ServeResult], Optional[ServeResult]]:
        """Offer one request to the front door.

        ``now`` is the arrival time; it defaults to ``clock.now()`` but
        the open-loop replay passes the scheduled arrival explicitly
        (a worker may still be finishing past it — admission decisions
        must use arrival time, not worker time).

        Returns ``(own, evicted)``: ``own`` is a terminal shed result if
        the request was rejected (None = admitted and queued), and
        ``evicted`` is the terminal result of any lower-priority queued
        request this admission displaced.
        """
        if now is None:
            now = self.clock.now()
        request.arrival_s = now
        self.metrics.record_offered(request.priority)
        decision = self.admission.offer(request, now)
        if decision.status != ADMIT:
            self.metrics.record_shed(request.priority, decision.status)
            self.health.record(EVENT_SHED, now)
            return ServeResult(request=request,
                               status=decision.status), None
        self.metrics.record_admitted(request.priority)
        evicted_result = None
        if decision.evicted is not None:
            victim = decision.evicted
            self.metrics.record_evicted(victim.priority)
            self.health.record(EVENT_SHED, now)
            evicted_result = ServeResult(
                request=victim, status=STATUS_SHED_QUEUE,
                latency_s=round(now - victim.arrival_s, 9))
        return None, evicted_result

    def handle(self, request: ServeRequest) -> ServeResult:
        """Synchronous path: admission, then drain the queue in-line.

        The interactive CLI and unit tests use this; the open-loop
        benchmark drives :meth:`submit`/:meth:`execute` itself through
        the worker simulation in :mod:`repro.serve.loadgen`.
        """
        own, _ = self.submit(request)
        if own is not None:
            return own
        result = None
        while True:
            queued = self.admission.pop()
            if queued is None:
                break
            finished = self.execute(queued, self.clock.now())
            if queued is request:
                result = finished
        assert result is not None  # the request was queued above
        return result

    # ------------------------------------------------------------- execution
    def execute(self, request: ServeRequest, start_s: float) -> ServeResult:
        """Run one admitted request starting at ``start_s``."""
        cfg = self.config
        self._advance_to(start_s)
        deadline_abs = request.arrival_s + (
            request.deadline_s if request.deadline_s is not None
            else cfg.default_deadline_s)
        remaining = deadline_abs - start_s
        cache_key = (request.kind, request.key, request.depth)

        # 1. fresh cache answer
        if remaining >= cfg.cache_read_cost_s:
            answer = self.cache.lookup_fresh(cache_key, start_s)
            if answer is not None:
                return self._finish(request, start_s, STATUS_CACHED,
                                    answer.value, False,
                                    cfg.cache_read_cost_s)

        # 2. deadline gate: never start work the budget cannot cover
        units = self.dataset.units(request.kind, request.key, request.depth)
        estimate = (cfg.base_cost_s + units * cfg.unit_cost_s
                    + self._dfs_latency_bound(request))
        margin = (cfg.fault_detect_cost_s + cfg.cache_read_cost_s
                  + cfg.summary_cost_s)
        if remaining < estimate + margin:
            return self._degraded(request, cache_key, start_s,
                                  deadline_abs)

        # 3. circuit breaker: don't probe a browned-out backend per request
        breaker = self.breakers[request.kind]
        if not breaker.try_acquire():
            self.metrics.record_breaker_short_circuit(request.priority)
            return self._degraded(request, cache_key, start_s,
                                  deadline_abs)

        # 4. injected request-path faults
        index = self._request_index
        self._request_index += 1
        spec = self.faults.serve_fault_at(index)
        if spec is not None and spec.kind in (FAULT_BROWNOUT, FAULT_STORM):
            breaker.record_failure()
            self.metrics.record_backend_fault(request.priority)
            return self._degraded(request, cache_key, start_s,
                                  deadline_abs,
                                  extra_cost=cfg.fault_detect_cost_s)
        pad = (spec.duration if spec is not None
               and spec.kind == FAULT_SLOW else 0.0)
        if pad > 0.0 and (start_s + estimate + pad
                          + cfg.cache_read_cost_s + cfg.summary_cost_s
                          > deadline_abs):
            # the latency spike would bust the deadline: abandon the
            # slow call (timeout semantics) and serve a degraded answer
            breaker.record_failure()
            self.metrics.record_backend_fault(request.priority)
            return self._degraded(request, cache_key, start_s,
                                  deadline_abs,
                                  extra_cost=cfg.fault_detect_cost_s)

        # 5. the real backend query
        answer = self.dataset.run(request.kind, request.key, self.dfs,
                                  depth=request.depth,
                                  hedge_after_s=cfg.hedge_after_s)
        cost = cfg.base_cost_s + answer.units * cfg.unit_cost_s + pad
        if answer.hedged is not None:
            cost += answer.hedged.elapsed_s
            self.metrics.record_hedges(request.priority,
                                       answer.hedged.hedges_launched,
                                       answer.hedged.hedges_won,
                                       answer.hedged.wasted_reads)
        breaker.record_success()
        self.cache.store(cache_key, answer.value, start_s + cost)
        return self._finish(request, start_s, STATUS_FRESH, answer.value,
                            False, cost)

    # ----------------------------------------------------------- degradation
    def _degraded(self, request: ServeRequest, cache_key,
                  start_s: float, deadline_abs: float,
                  extra_cost: float = 0.0) -> ServeResult:
        """Walk the ladder: stale cache → summary → deadline_exceeded."""
        cfg = self.config
        remaining = deadline_abs - start_s - extra_cost
        if remaining >= cfg.cache_read_cost_s:
            answer = self.cache.lookup_stale(cache_key, start_s)
            if answer is not None:
                return self._finish(request, start_s, STATUS_STALE,
                                    answer.value, True,
                                    extra_cost + cfg.cache_read_cost_s)
        if remaining >= cfg.summary_cost_s:
            summary = self.dataset.summary_answer(request.kind, request.key)
            return self._finish(request, start_s, STATUS_SUMMARY, summary,
                                True, extra_cost + cfg.summary_cost_s)
        return self._finish(request, start_s, STATUS_DEADLINE, None, False,
                            extra_cost)

    # -------------------------------------------------------------- plumbing
    def _finish(self, request: ServeRequest, start_s: float, status: str,
                value, stale: bool, cost: float) -> ServeResult:
        finish_s = start_s + cost
        self._advance_to(finish_s)
        latency = finish_s - request.arrival_s
        self.metrics.record_result(request.priority, status, latency)
        event = (EVENT_OK if status in (STATUS_FRESH, STATUS_CACHED)
                 else EVENT_DEGRADED)
        self.health.record(event, finish_s)
        return ServeResult(request=request, status=status, value=value,
                           stale=stale, latency_s=round(latency, 9),
                           service_s=round(cost, 9), started_s=start_s)

    def _dfs_latency_bound(self, request: ServeRequest) -> float:
        """Upper bound on the hedged-read time of a query's DFS part.

        The primary replica's latency bounds the hedged read from above
        (a launched hedge only ever *lowers* the block time), so the
        deadline gate can rely on it without reading anything.
        """
        part = self.dataset.dfs_part_for(request.kind, request.key)
        if part is None:
            return 0.0
        try:
            status = self.dfs.stat(part)
        except Exception:
            return 0.0
        bound = 0.0
        for block in status.blocks:
            for node_id in block.locations:
                node = self.dfs.datanodes[node_id]
                if node.has(block.block_id):
                    bound += node.latency_s
                    break
        return bound

    def _advance_to(self, when: float) -> None:
        delta = when - self.clock.now()
        if delta > 0:
            self.clock.sleep(delta)
