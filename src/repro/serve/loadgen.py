"""Deterministic open-loop load generation for the query tier.

Open-loop means arrivals come from a schedule, not from completions: a
slow service does not slow the generator down, which is exactly how
overload happens in production (users keep clicking). The schedule is a
pure function of a seed — Poisson-ish exponential inter-arrival gaps,
Zipf-skewed key popularity, a weighted kind/priority mix — so replaying
the same profile twice produces identical arrivals, identical admission
decisions and identical metrics.

``replay`` drives a :class:`~repro.serve.service.QueryService` through a
simulated worker pool: arrivals are offered to admission in time order
while ``workers`` slots execute queued requests as they free up, all in
simulated seconds on the service clock.
"""

from __future__ import annotations

import heapq
import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.serve.dataset import (KIND_COMMUNITY, KIND_COMPANY,
                                 KIND_ENGAGEMENT, KIND_INVESTOR,
                                 KIND_NEIGHBORHOOD, ServeDataset)
from repro.serve.service import QueryService, ServeRequest, ServeResult
from repro.util.errors import ConfigError
from repro.util.rng import RngStream
from repro.util.stats import weighted_choice_index


@dataclass(frozen=True)
class LoadProfile:
    """One seeded arrival schedule: rate, duration, and the mixes."""

    qps: float
    duration_s: float
    seed: int = 0
    #: (kind, weight) — the query mix
    kind_mix: Tuple = ((KIND_COMPANY, 30), (KIND_INVESTOR, 25),
                       (KIND_NEIGHBORHOOD, 15), (KIND_COMMUNITY, 15),
                       (KIND_ENGAGEMENT, 15))
    #: (priority class, weight)
    class_mix: Tuple = (("interactive", 70), ("analytics", 20),
                        ("bulk", 10))
    #: per-class latency budgets (seconds)
    deadlines: Tuple = (("interactive", 0.25), ("analytics", 0.5),
                        ("bulk", 1.0))
    #: key-popularity skew (1.0 = mild, higher = hotter hot keys)
    zipf_alpha: float = 1.1
    #: fraction of neighborhood queries that ask for two hops
    deep_neighborhood_fraction: float = 0.3
    #: number of tenants (1 = single-tenant: no tenant draws at all, so
    #: pre-existing single-tenant schedules replay unchanged)
    tenants: int = 1
    #: tenant-popularity skew — Zipf over tenant ids, so tenant t0 is
    #: the hottest (the bench makes it the abusive one)
    tenant_zipf_alpha: float = 1.2

    def __post_init__(self):
        if self.qps <= 0:
            raise ConfigError(f"qps must be > 0, got {self.qps}")
        if self.duration_s <= 0:
            raise ConfigError("duration_s must be > 0")
        if self.tenants < 1:
            raise ConfigError(f"tenants must be >= 1, got {self.tenants}")


def generate_schedule(profile: LoadProfile,
                      dataset: ServeDataset) -> List[ServeRequest]:
    """The full arrival list of one run, sorted by arrival time."""
    rng = RngStream(profile.seed, "serve-loadgen")
    kinds = [k for k, _ in profile.kind_mix]
    kind_weights = [float(w) for _, w in profile.kind_mix]
    classes = [c for c, _ in profile.class_mix]
    class_weights = [float(w) for _, w in profile.class_mix]
    deadline_of = dict(profile.deadlines)
    key_pools: Dict[str, List[int]] = {
        kind: dataset.keys_for(kind) for kind in kinds}

    # multi-tenant runs give each tenant its own seeded *perturbation*
    # of the class mix (tenants differ, reproducibly) and draw the
    # tenant per request from a Zipf over tenant ids; single-tenant
    # runs skip both draws so historical schedules replay unchanged
    tenant_class_weights: List[List[float]] = []
    if profile.tenants > 1:
        for i in range(profile.tenants):
            mix_rng = RngStream(profile.seed, f"tenant-mix:{i}")
            tenant_class_weights.append(
                [w * mix_rng.uniform(0.5, 1.5) for w in class_weights])

    schedule: List[ServeRequest] = []
    now = 0.0
    while True:
        gap = -math.log(1.0 - rng.uniform(0.0, 0.999999)) / profile.qps
        now += gap
        if now >= profile.duration_s:
            break
        tenant = "default"
        weights = class_weights
        if profile.tenants > 1:
            t = rng.zipf_bounded(profile.tenant_zipf_alpha,
                                 profile.tenants) - 1
            tenant = f"t{t}"
            weights = tenant_class_weights[t]
        kind = kinds[weighted_choice_index(kind_weights, rng.uniform())]
        pool = key_pools[kind]
        if pool:
            rank = rng.zipf_bounded(profile.zipf_alpha, len(pool))
            key = pool[rank - 1]
        else:
            key = 0  # empty dataset: every query is a miss, still valid
        priority = classes[weighted_choice_index(weights, rng.uniform())]
        depth = 1
        if (kind == KIND_NEIGHBORHOOD
                and rng.bernoulli(profile.deep_neighborhood_fraction)):
            depth = 2
        schedule.append(ServeRequest(
            kind=kind, key=key, priority=priority, arrival_s=round(now, 9),
            deadline_s=deadline_of.get(priority), depth=depth,
            tenant=tenant))
    return schedule


@dataclass
class BenchReport:
    """What one replay run measured (JSON-able, seed-stable)."""

    offered: int
    admitted: int
    shed: int
    answered: int
    stale_served: int
    deadline_exceeded: int
    goodput_qps: float
    p50_latency_s: float
    p99_latency_s: float
    per_class_p99_s: Dict[str, float]
    max_queue_len: int
    hedges_launched: int
    hedges_won: int
    health_state: str
    health_transitions: int
    duration_s: float
    metrics: Dict = field(default_factory=dict)
    #: sharded-tier extensions (zero/empty on the single-node tier)
    partial_results: int = 0
    hedge_wasted_reads: int = 0
    scaling_decisions: int = 0
    per_tenant: Dict = field(default_factory=dict)
    #: every terminal ServeResult of the replay, in completion order —
    #: deliberately excluded from to_json (not seed-stable summary data,
    #: but the sharding bench needs per-result coverage accounting)
    results: List[ServeResult] = field(default_factory=list, repr=False)

    @property
    def answered_fraction(self) -> float:
        """Answered share of finally-admitted requests."""
        return self.answered / self.admitted if self.admitted else 1.0

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    def to_json(self, indent: Optional[int] = 2) -> str:
        payload = {
            "offered": self.offered,
            "admitted": self.admitted,
            "shed": self.shed,
            "answered": self.answered,
            "answered_fraction": round(self.answered_fraction, 6),
            "shed_fraction": round(self.shed_fraction, 6),
            "stale_served": self.stale_served,
            "deadline_exceeded": self.deadline_exceeded,
            "goodput_qps": round(self.goodput_qps, 3),
            "p50_latency_s": round(self.p50_latency_s, 9),
            "p99_latency_s": round(self.p99_latency_s, 9),
            "per_class_p99_s": {k: round(v, 9) for k, v
                                in sorted(self.per_class_p99_s.items())},
            "max_queue_len": self.max_queue_len,
            "hedges_launched": self.hedges_launched,
            "hedges_won": self.hedges_won,
            "health_state": self.health_state,
            "health_transitions": self.health_transitions,
            "duration_s": self.duration_s,
            "metrics": self.metrics,
            "partial_results": self.partial_results,
            "hedge_wasted_reads": self.hedge_wasted_reads,
            "scaling_decisions": self.scaling_decisions,
            "per_tenant": {k: self.per_tenant[k]
                           for k in sorted(self.per_tenant)},
        }
        return json.dumps(payload, indent=indent, sort_keys=True)


def replay(service: QueryService,
           schedule: List[ServeRequest]) -> BenchReport:
    """Drive the service through one arrival schedule, open-loop."""
    workers = [0.0] * service.config.workers
    heapq.heapify(workers)
    results: List[ServeResult] = []

    def drain(until: float) -> None:
        while service.admission.queue_len > 0 and workers[0] <= until:
            free = heapq.heappop(workers)
            request = service.admission.pop()
            start = max(free, request.arrival_s)
            result = service.execute(request, start)
            results.append(result)
            heapq.heappush(workers, start + result.service_s)

    for request in schedule:
        drain(request.arrival_s)
        own, evicted = service.submit(request, now=request.arrival_s)
        if own is not None:
            results.append(own)
        if evicted is not None:
            results.append(evicted)
        drain(request.arrival_s)
    drain(math.inf)

    metrics = service.metrics
    duration = schedule[-1].arrival_s if schedule else 0.0
    deadline_exceeded = sum(c.deadline_exceeded
                            for c in metrics.per_class.values())
    return BenchReport(
        offered=metrics.offered,
        admitted=metrics.admitted,
        shed=metrics.shed,
        answered=metrics.answered,
        stale_served=metrics.stale_served,
        deadline_exceeded=deadline_exceeded,
        goodput_qps=(metrics.answered / duration) if duration else 0.0,
        p50_latency_s=metrics.p50(),
        p99_latency_s=metrics.p99(),
        per_class_p99_s={cls: metrics.p99(cls)
                         for cls in metrics.per_class},
        max_queue_len=service.admission.max_queue_len,
        hedges_launched=sum(c.hedges_launched
                            for c in metrics.per_class.values()),
        hedges_won=metrics.hedges_won,
        health_state=service.health.state,
        health_transitions=len(metrics.health_transitions),
        duration_s=round(duration, 6),
        metrics=metrics.snapshot(),
        partial_results=metrics.partial_results,
        hedge_wasted_reads=metrics.hedge_wasted_reads,
        scaling_decisions=len(metrics.scaling_decisions),
        per_tenant={t: c.as_dict()
                    for t, c in metrics.per_tenant.items()},
        results=results,
    )


def run_bench(service: QueryService, dataset: ServeDataset,
              profile: LoadProfile) -> BenchReport:
    """Generate a schedule and replay it — the whole open-loop bench."""
    return replay(service, generate_schedule(profile, dataset))
