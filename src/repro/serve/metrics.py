"""Counters and latency accounting for the online query tier.

Everything here is plain deterministic bookkeeping: the service and the
load generator feed in events keyed by priority class, and two runs of
the same seeded scenario must produce byte-identical snapshots — that
property is asserted by the overload tests, so keep floats rounded and
dict orders stable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: request priority classes, highest first (admission evicts from the
#: back of this list when the queue is full)
PRIORITY_CLASSES = ("interactive", "analytics", "bulk")

#: terminal statuses of a ServeResult
STATUS_FRESH = "fresh"            # full backend answer
STATUS_CACHED = "cached"          # fresh-TTL cache hit
STATUS_STALE = "stale"            # stale-while-revalidate fallback
STATUS_SUMMARY = "summary"        # cheap precomputed summary fallback
STATUS_PARTIAL = "partial"        # sharded answer that lost some shards
STATUS_DEADLINE = "deadline_exceeded"
STATUS_SHED_RATE = "shed_rate"    # rejected by the token bucket
STATUS_SHED_QUEUE = "shed_queue"  # rejected/evicted by the bounded queue

#: statuses that count as "the caller got an answer"
ANSWERED_STATUSES = (STATUS_FRESH, STATUS_CACHED, STATUS_STALE,
                     STATUS_SUMMARY, STATUS_PARTIAL)

#: terminal statuses of one shard call within a scatter-gather fan-out
SHARD_OK = "ok"
SHARD_DEAD = "dead"                  # no live replica answered
SHARD_PARTITIONED = "partitioned"    # unreachable for the fault window
SHARD_DEADLINE = "deadline"          # abandoned at its per-shard budget


@dataclass
class ClassCounters:
    """Per-priority-class event counters."""

    offered: int = 0
    admitted: int = 0
    shed_rate: int = 0
    shed_queue: int = 0
    deadline_exceeded: int = 0
    fresh: int = 0
    cached: int = 0
    stale_served: int = 0
    summary_served: int = 0
    partial_served: int = 0
    backend_faults: int = 0
    breaker_short_circuits: int = 0
    hedges_launched: int = 0
    hedges_won: int = 0
    hedge_wasted_reads: int = 0

    @property
    def answered(self) -> int:
        return self.fresh + self.cached + self.stale_served + \
            self.summary_served + self.partial_served

    def as_dict(self) -> Dict[str, int]:
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "shed_rate": self.shed_rate,
            "shed_queue": self.shed_queue,
            "deadline_exceeded": self.deadline_exceeded,
            "fresh": self.fresh,
            "cached": self.cached,
            "stale_served": self.stale_served,
            "summary_served": self.summary_served,
            "partial_served": self.partial_served,
            "answered": self.answered,
            "backend_faults": self.backend_faults,
            "breaker_short_circuits": self.breaker_short_circuits,
            "hedges_launched": self.hedges_launched,
            "hedges_won": self.hedges_won,
            "hedge_wasted_reads": self.hedge_wasted_reads,
        }


@dataclass
class TenantCounters:
    """Per-tenant event counters (fair-share isolation accounting)."""

    offered: int = 0
    admitted: int = 0
    shed_rate: int = 0
    shed_queue: int = 0
    answered: int = 0
    #: degraded-ladder answers, counted inside ``answered`` too — a
    #: tenant's SLO report needs to show *what kind* of answer fair
    #: share bought them, not just that one arrived
    stale_served: int = 0
    summary_served: int = 0
    deadline_exceeded: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "shed_rate": self.shed_rate,
            "shed_queue": self.shed_queue,
            "answered": self.answered,
            "stale_served": self.stale_served,
            "summary_served": self.summary_served,
            "deadline_exceeded": self.deadline_exceeded,
        }


@dataclass
class ShardCounters:
    """Per-shard call outcomes within scatter-gather fan-outs."""

    calls: int = 0
    ok: int = 0
    failed_dead: int = 0
    failed_partitioned: int = 0
    failed_deadline: int = 0
    failovers: int = 0
    hedges_launched: int = 0
    hedges_won: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "calls": self.calls,
            "ok": self.ok,
            "failed_dead": self.failed_dead,
            "failed_partitioned": self.failed_partitioned,
            "failed_deadline": self.failed_deadline,
            "failovers": self.failovers,
            "hedges_launched": self.hedges_launched,
            "hedges_won": self.hedges_won,
        }


def percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile over an already-sorted list (0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(q * len(sorted_values) + 0.5) - 1))
    return sorted_values[rank]


class ServeMetrics:
    """Aggregated view of one service instance's lifetime.

    Latencies are recorded only for *admitted* requests that reached a
    terminal status; the overload contract is expressed over them
    ("p99 of admitted requests stays under the deadline").
    """

    def __init__(self):
        self.per_class: Dict[str, ClassCounters] = {
            cls: ClassCounters() for cls in PRIORITY_CLASSES}
        self._latencies: Dict[str, List[float]] = {
            cls: [] for cls in PRIORITY_CLASSES}
        #: (sim_time, from_state, to_state) transitions of the health FSM
        self.health_transitions: List[Tuple[float, str, str]] = []
        #: fair-share accounting, keyed by tenant id (empty when the
        #: service runs single-tenant — snapshots stay byte-compatible)
        self.per_tenant: Dict[str, TenantCounters] = {}
        #: scatter-gather accounting, keyed by shard id (sharded tier only)
        self.per_shard: Dict[int, ShardCounters] = {}
        #: every autoscaler decision, in order:
        #: (sim_time, shard_id, action, replicas_after, reason)
        self.scaling_decisions: List[Tuple] = []

    def counters(self, priority: str) -> ClassCounters:
        counters = self.per_class.get(priority)
        if counters is None:
            raise KeyError(f"unknown priority class {priority!r}; "
                           f"expected one of {PRIORITY_CLASSES}")
        return counters

    # ----------------------------------------------------------- recording
    def record_offered(self, priority: str) -> None:
        self.counters(priority).offered += 1

    def record_admitted(self, priority: str) -> None:
        self.counters(priority).admitted += 1

    def record_evicted(self, priority: str) -> None:
        """A queued (already admitted) request displaced by a
        higher-priority arrival: it is re-classified as shed, so the
        "answered / admitted" contract is measured over requests that
        actually stayed admitted."""
        counters = self.counters(priority)
        counters.admitted -= 1
        counters.shed_queue += 1

    def record_shed(self, priority: str, status: str) -> None:
        counters = self.counters(priority)
        if status == STATUS_SHED_RATE:
            counters.shed_rate += 1
        elif status == STATUS_SHED_QUEUE:
            counters.shed_queue += 1
        else:
            raise ValueError(f"not a shed status: {status!r}")

    def record_result(self, priority: str, status: str,
                      latency_s: float) -> None:
        counters = self.counters(priority)
        if status == STATUS_FRESH:
            counters.fresh += 1
        elif status == STATUS_CACHED:
            counters.cached += 1
        elif status == STATUS_STALE:
            counters.stale_served += 1
        elif status == STATUS_SUMMARY:
            counters.summary_served += 1
        elif status == STATUS_PARTIAL:
            counters.partial_served += 1
        elif status == STATUS_DEADLINE:
            counters.deadline_exceeded += 1
        else:
            raise ValueError(f"not a terminal status: {status!r}")
        self._latencies[priority].append(round(latency_s, 9))

    def record_backend_fault(self, priority: str) -> None:
        self.counters(priority).backend_faults += 1

    def record_breaker_short_circuit(self, priority: str) -> None:
        self.counters(priority).breaker_short_circuits += 1

    def record_hedges(self, priority: str, launched: int, won: int,
                      wasted: int = 0) -> None:
        counters = self.counters(priority)
        counters.hedges_launched += launched
        counters.hedges_won += won
        counters.hedge_wasted_reads += wasted

    def record_health_transition(self, sim_time: float, old: str,
                                 new: str) -> None:
        self.health_transitions.append((round(sim_time, 9), old, new))

    # -------------------------------------------------- tenants and shards
    def tenant_counters(self, tenant: str) -> TenantCounters:
        counters = self.per_tenant.get(tenant)
        if counters is None:
            counters = self.per_tenant[tenant] = TenantCounters()
        return counters

    def record_tenant_offered(self, tenant: str) -> None:
        self.tenant_counters(tenant).offered += 1

    def record_tenant_admitted(self, tenant: str) -> None:
        self.tenant_counters(tenant).admitted += 1

    def record_tenant_evicted(self, tenant: str) -> None:
        counters = self.tenant_counters(tenant)
        counters.admitted -= 1
        counters.shed_queue += 1

    def record_tenant_shed(self, tenant: str, status: str) -> None:
        counters = self.tenant_counters(tenant)
        if status == STATUS_SHED_RATE:
            counters.shed_rate += 1
        elif status == STATUS_SHED_QUEUE:
            counters.shed_queue += 1
        else:
            raise ValueError(f"not a shed status: {status!r}")

    def record_tenant_result(self, tenant: str, status: str) -> None:
        counters = self.tenant_counters(tenant)
        if status in ANSWERED_STATUSES:
            counters.answered += 1
            if status == STATUS_STALE:
                counters.stale_served += 1
            elif status == STATUS_SUMMARY:
                counters.summary_served += 1
        elif status == STATUS_DEADLINE:
            counters.deadline_exceeded += 1
        else:
            raise ValueError(f"not a terminal status: {status!r}")

    def shard_counters(self, shard_id: int) -> ShardCounters:
        counters = self.per_shard.get(shard_id)
        if counters is None:
            counters = self.per_shard[shard_id] = ShardCounters()
        return counters

    def record_shard_call(self, shard_id: int, status: str,
                          failovers: int = 0, hedges_launched: int = 0,
                          hedges_won: int = 0) -> None:
        counters = self.shard_counters(shard_id)
        counters.calls += 1
        if status == SHARD_OK:
            counters.ok += 1
        elif status == SHARD_DEAD:
            counters.failed_dead += 1
        elif status == SHARD_PARTITIONED:
            counters.failed_partitioned += 1
        elif status == SHARD_DEADLINE:
            counters.failed_deadline += 1
        else:
            raise ValueError(f"not a shard-call status: {status!r}")
        counters.failovers += failovers
        counters.hedges_launched += hedges_launched
        counters.hedges_won += hedges_won

    def record_scaling(self, sim_time: float, shard_id: int, action: str,
                       replicas_after: int, reason: str) -> None:
        self.scaling_decisions.append(
            (round(sim_time, 9), shard_id, action, replicas_after, reason))

    # ----------------------------------------------------------- inspection
    @property
    def offered(self) -> int:
        return sum(c.offered for c in self.per_class.values())

    @property
    def admitted(self) -> int:
        return sum(c.admitted for c in self.per_class.values())

    @property
    def shed(self) -> int:
        return sum(c.shed_rate + c.shed_queue
                   for c in self.per_class.values())

    @property
    def answered(self) -> int:
        return sum(c.answered for c in self.per_class.values())

    @property
    def stale_served(self) -> int:
        return sum(c.stale_served for c in self.per_class.values())

    @property
    def hedges_won(self) -> int:
        return sum(c.hedges_won for c in self.per_class.values())

    @property
    def hedge_wasted_reads(self) -> int:
        return sum(c.hedge_wasted_reads for c in self.per_class.values())

    @property
    def partial_results(self) -> int:
        return sum(c.partial_served for c in self.per_class.values())

    def latencies(self, priority: str = None) -> List[float]:
        if priority is not None:
            return sorted(self._latencies[priority])
        merged: List[float] = []
        for values in self._latencies.values():
            merged.extend(values)
        return sorted(merged)

    def p99(self, priority: str = None) -> float:
        return percentile(self.latencies(priority), 0.99)

    def p50(self, priority: str = None) -> float:
        return percentile(self.latencies(priority), 0.50)

    # ------------------------------------------------------------ snapshot
    def snapshot(self) -> Dict:
        """A stable, JSON-able view; identical across same-seed runs."""
        return {
            "per_class": {cls: self.per_class[cls].as_dict()
                          for cls in PRIORITY_CLASSES},
            "totals": {
                "offered": self.offered,
                "admitted": self.admitted,
                "shed": self.shed,
                "answered": self.answered,
                "stale_served": self.stale_served,
                "hedges_won": self.hedges_won,
                "hedge_wasted_reads": self.hedge_wasted_reads,
                "partial_results": self.partial_results,
            },
            "latency_s": {
                "p50": round(self.p50(), 9),
                "p99": round(self.p99(), 9),
            },
            "health_transitions": [list(t) for t in self.health_transitions],
            "per_tenant": {t: self.per_tenant[t].as_dict()
                           for t in sorted(self.per_tenant)},
            "shards": {str(s): self.per_shard[s].as_dict()
                       for s in sorted(self.per_shard)},
            "scaling": [list(d) for d in self.scaling_decisions],
        }

    def to_json(self, indent: int = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)
