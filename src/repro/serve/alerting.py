"""Incremental standing-query evaluation on the derived commit path.

Every committed ``derived`` ingest unit lands one bounded delta of
investment and follow edges (the ``[watermark, head]`` range its intent
pinned — see :mod:`repro.crawl.incremental`). The evaluator matches
**only those delta records** against a compiled predicate index, so the
cost of a pass is ``O(delta × lookups)``, never a rescan of the corpus
or of the subscription population:

* the index is partitioned by the serve tier's
  :func:`~repro.serve.sharding.shard_of`, the same placement function
  that shards the query indexes — a record consults exactly the
  partition that owns its key, so evaluation fans out with the data;
* matching is a hash lookup per record per predicate family (company,
  community label, watched user), not an iteration over subscriptions;
* notification ids are a pure function of (subscription, derived unit,
  entity), so re-evaluating a unit after a crash — the scheduler replays
  every committed unit through :meth:`on_derived_commit` — re-emits
  byte-identical ids that the outbox deduplicates into no-ops.

:func:`rescan_oracle` is the deliberately naive offline checker: a full
scan of every derived delta against every active subscription, no
index, no watermark. The A11 chaos bench holds the incremental path to
exactly the oracle's notification set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.serve.dataset import ServeDataset
from repro.serve.sharding import shard_of
from repro.serve.subscriptions import (KIND_COMMUNITY_INVESTOR,
                                       KIND_COMPANY_FUNDING,
                                       KIND_NEIGHBORHOOD_FOLLOW,
                                       Subscription, SubscriptionRegistry)


@dataclass
class Notification:
    """One matched standing-query event, deterministically identified."""

    id: str
    sub_id: str
    tenant: str
    subscriber_id: str
    kind: str
    key: int
    unit: str
    entity: str
    payload: Dict = field(default_factory=dict)

    def as_dict(self) -> Dict:
        return {"id": self.id, "sub_id": self.sub_id,
                "tenant": self.tenant,
                "subscriber_id": self.subscriber_id, "kind": self.kind,
                "key": self.key, "unit": self.unit, "entity": self.entity,
                "payload": self.payload}

    @classmethod
    def from_dict(cls, doc: Dict) -> "Notification":
        return cls(id=doc["id"], sub_id=doc["sub_id"],
                   tenant=doc["tenant"],
                   subscriber_id=doc["subscriber_id"], kind=doc["kind"],
                   key=int(doc["key"]), unit=doc["unit"],
                   entity=doc["entity"], payload=dict(doc["payload"]))


def notification_id(sub_id: str, unit: str, entity: str) -> str:
    """Deterministic id keyed by (subscription, unit seq, entity)."""
    return f"ntf-{sub_id}-{unit}-{entity}"


def _neighborhood(dataset: ServeDataset, uid: int) -> Set[int]:
    """The user keyspace a ``neighborhood_follow`` subscription watches:
    the subscriber's own id plus every user they already follow."""
    watch = {int(uid)}
    for dst_type, dst_id in dataset.follows_out.get(int(uid), ()):
        if dst_type == "user":
            watch.add(int(dst_id))
    return watch


@dataclass
class AlertStats:
    """Lifetime accounting of one evaluator instance."""

    units_evaluated: int = 0
    records_scanned: int = 0        # delta records matched (never corpus)
    index_lookups: int = 0
    notifications: int = 0
    suppressed_inactive: int = 0    # matches on paused/cancelled subs
    index_rebuilds: int = 0


class PredicateIndex:
    """Sharded hash index over the active subscriptions.

    Three predicate families, each partitioned by ``shard_of`` over the
    key the delta record will probe with — company id for funding
    events, community label for community watches, followed-user id for
    neighborhood watches.
    """

    def __init__(self, num_shards: int):
        self.num_shards = num_shards
        self.by_company: List[Dict[int, List[str]]] = [
            {} for _ in range(num_shards)]
        self.by_community: List[Dict[int, List[str]]] = [
            {} for _ in range(num_shards)]
        self.by_user: List[Dict[int, List[str]]] = [
            {} for _ in range(num_shards)]
        #: lookups served per partition — evidence that evaluation fans
        #: out with the data instead of scanning one global structure
        self.lookups_per_shard: List[int] = [0] * num_shards

    @classmethod
    def build(cls, subs: List[Subscription], dataset: ServeDataset,
              num_shards: int) -> "PredicateIndex":
        index = cls(num_shards)
        for sub in subs:
            if sub.kind == KIND_COMPANY_FUNDING:
                shard = shard_of(sub.key, num_shards)
                index.by_company[shard].setdefault(
                    sub.key, []).append(sub.sub_id)
            elif sub.kind == KIND_COMMUNITY_INVESTOR:
                shard = shard_of(sub.key, num_shards)
                index.by_community[shard].setdefault(
                    sub.key, []).append(sub.sub_id)
            else:  # neighborhood_follow: expand the watched keyspace
                for uid in sorted(_neighborhood(dataset, sub.key)):
                    shard = shard_of(uid, num_shards)
                    index.by_user[shard].setdefault(
                        uid, []).append(sub.sub_id)
        return index

    def _probe(self, table: List[Dict[int, List[str]]],
               key: int) -> List[str]:
        shard = shard_of(key, self.num_shards)
        self.lookups_per_shard[shard] += 1
        return table[shard].get(key, [])

    def funding_subs(self, company_id: int) -> List[str]:
        return self._probe(self.by_company, company_id)

    def community_subs(self, label: int) -> List[str]:
        return self._probe(self.by_community, label)

    def follow_subs(self, dst_user: int) -> List[str]:
        return self._probe(self.by_user, dst_user)

    def __len__(self) -> int:
        return (sum(len(v) for d in self.by_company for v in d.values())
                + sum(len(v) for d in self.by_community
                      for v in d.values())
                + sum(len(v) for d in self.by_user for v in d.values()))


class AlertEvaluator:
    """Hooks the ContinuousScheduler's derived-unit commit path.

    The scheduler calls :meth:`on_derived_commit` both on a fresh commit
    and during ledger replay after a crash; both paths re-read the
    unit's own delta files (pinned by the unit id in the derived
    datasets' manifests) and emit the same notification ids, which the
    outbox absorbs idempotently.
    """

    def __init__(self, registry: SubscriptionRegistry,
                 dataset: ServeDataset, num_shards: int = 4,
                 outbox=None):
        self.registry = registry
        self.dataset = dataset
        self.num_shards = num_shards
        self.outbox = outbox
        self.stats = AlertStats()
        self._index: Optional[PredicateIndex] = None
        self._index_version = -1
        #: every notification emitted, in emission order (includes
        #: re-emissions the outbox suppressed)
        self.emitted: List[Notification] = []

    # ----------------------------------------------------------------- index
    def index(self) -> PredicateIndex:
        """The compiled predicate index, rebuilt when the registry moved."""
        if self._index is None or \
                self._index_version != self.registry.version:
            self._index = PredicateIndex.build(
                self.registry.active(), self.dataset, self.num_shards)
            self._index_version = self.registry.version
            self.stats.index_rebuilds += 1
        return self._index

    # ------------------------------------------------------------- evaluate
    def _unit_delta(self, dataset, unit_id: str) -> List[Dict]:
        """The records of exactly one applied unit's delta file (empty
        when the unit never landed or a compaction folded it away — by
        then its notifications are already durable in the outbox)."""
        seq = dataset.applied_units().get(unit_id)
        if seq is None:
            return []
        for delta_seq, path in dataset.delta_files_since(seq - 1):
            if delta_seq == seq:
                return dataset._read_lines(path)
        return []

    def _emit(self, sub_id: str, unit: str, entity: str,
              payload: Dict, out: List[Notification]) -> None:
        sub = self.registry.get(sub_id)
        if sub is None or not sub.active:
            self.stats.suppressed_inactive += 1
            return
        out.append(Notification(
            id=notification_id(sub_id, unit, entity),
            sub_id=sub_id, tenant=sub.tenant,
            subscriber_id=sub.subscriber_id, kind=sub.kind, key=sub.key,
            unit=unit, entity=entity, payload=payload))

    def evaluate_unit(self, unit: str, maintainer) -> List[Notification]:
        """Match one derived unit's delta against the predicate index."""
        index = self.index()
        out: List[Notification] = []
        invest = self._unit_delta(maintainer.investment_edges,
                                  f"{unit}:investments")
        follows = self._unit_delta(maintainer.follow_edges,
                                   f"{unit}:follows")
        self.stats.records_scanned += len(invest) + len(follows)
        for record in invest:
            investor = int(record["investor_id"])
            company = int(record["company_id"])
            entity = f"inv:{investor}:{company}"
            payload = {"investor_id": investor, "company_id": company}
            self.stats.index_lookups += 1
            for sub_id in index.funding_subs(company):
                self._emit(sub_id, unit, entity, payload, out)
            label = self.dataset.community_of.get(investor)
            if label is not None:
                self.stats.index_lookups += 1
                for sub_id in index.community_subs(int(label)):
                    self._emit(sub_id, unit, entity, payload, out)
        for record in follows:
            if record["dst_type"] != "user":
                continue
            src = int(record["src_user"])
            dst = int(record["dst_id"])
            entity = f"fol:{src}:{dst}"
            payload = {"src_user": src, "dst_id": dst}
            self.stats.index_lookups += 1
            for sub_id in index.follow_subs(dst):
                self._emit(sub_id, unit, entity, payload, out)
        return out

    def on_derived_commit(self, unit: str, payload: Dict,
                          maintainer) -> List[Notification]:
        """Scheduler hook: one derived unit just committed (or is being
        replayed from the ledger). Idempotent end to end."""
        self.stats.units_evaluated += 1
        notifications = self.evaluate_unit(unit, maintainer)
        self.stats.notifications += len(notifications)
        self.emitted.extend(notifications)
        if self.outbox is not None:
            for notification in notifications:
                self.outbox.enqueue(notification)
        return notifications


# --------------------------------------------------------------- oracle
def rescan_oracle(registry: SubscriptionRegistry, dataset: ServeDataset,
                  maintainer, subs: Optional[List[Subscription]] = None,
                  ) -> Set[str]:
    """Expected notification ids by brute force: every live derived
    delta × every active subscription, no index, no watermarks.

    This is the independent ground truth the chaos bench verifies the
    incremental path against — it must stay structurally naive.
    """
    subs = registry.active() if subs is None else subs
    expected: Set[str] = set()
    neighborhoods = {s.sub_id: _neighborhood(dataset, s.key)
                     for s in subs if s.kind == KIND_NEIGHBORHOOD_FOLLOW}

    def units_of(ds, suffix: str) -> List[Tuple[str, str]]:
        manifest_units = []
        for unit_id, seq in ds.applied_units().items():
            if not unit_id.endswith(suffix):
                continue
            for delta_seq, path in ds.delta_files_since(seq - 1):
                if delta_seq == seq:
                    manifest_units.append(
                        (unit_id[:-len(suffix)], path))
        return manifest_units

    for unit, path in units_of(maintainer.investment_edges,
                               ":investments"):
        for record in maintainer.investment_edges._read_lines(path):
            investor = int(record["investor_id"])
            company = int(record["company_id"])
            entity = f"inv:{investor}:{company}"
            for sub in subs:
                hit = (sub.kind == KIND_COMPANY_FUNDING
                       and sub.key == company) or \
                      (sub.kind == KIND_COMMUNITY_INVESTOR
                       and dataset.community_of.get(investor) == sub.key)
                if hit:
                    expected.add(
                        notification_id(sub.sub_id, unit, entity))
    for unit, path in units_of(maintainer.follow_edges, ":follows"):
        for record in maintainer.follow_edges._read_lines(path):
            if record["dst_type"] != "user":
                continue
            src = int(record["src_user"])
            dst = int(record["dst_id"])
            entity = f"fol:{src}:{dst}"
            for sub in subs:
                if sub.kind == KIND_NEIGHBORHOOD_FOLLOW and \
                        dst in neighborhoods[sub.sub_id]:
                    expected.add(
                        notification_id(sub.sub_id, unit, entity))
    return expected
