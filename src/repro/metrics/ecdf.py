"""Empirical CDF and PDF estimators for Figures 3, 4 and 5."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


class EmpiricalCDF:
    """The empirical distribution function of a sample.

    ``F_n(x)`` = fraction of sample points ≤ x, evaluated in O(log n).
    """

    def __init__(self, values: Sequence[float]):
        arr = np.asarray(list(values), dtype=np.float64)
        if arr.size == 0:
            raise ValueError("EmpiricalCDF needs at least one value")
        self._sorted = np.sort(arr)

    @property
    def n(self) -> int:
        return int(self._sorted.size)

    def __call__(self, x: float) -> float:
        return float(np.searchsorted(self._sorted, x, side="right")) / self.n

    def evaluate(self, xs: Sequence[float]) -> np.ndarray:
        return (np.searchsorted(self._sorted, np.asarray(xs), side="right")
                / self.n)

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        return float(np.quantile(self._sorted, q))

    @property
    def mean(self) -> float:
        return float(self._sorted.mean())

    @property
    def median(self) -> float:
        return float(np.median(self._sorted))

    @property
    def max(self) -> float:
        return float(self._sorted[-1])

    def series(self) -> Tuple[np.ndarray, np.ndarray]:
        """(x, F(x)) step points for plotting — one point per unique value."""
        xs, counts = np.unique(self._sorted, return_counts=True)
        return xs, np.cumsum(counts) / self.n

    def sup_distance(self, other: "EmpiricalCDF") -> float:
        """Kolmogorov–Smirnov statistic ``sup_x |F(x) - G(x)|``."""
        grid = np.union1d(self._sorted, other._sorted)
        return float(np.max(np.abs(self.evaluate(grid)
                                   - other.evaluate(grid))))


def estimate_pdf(values: Sequence[float], num_points: int = 100,
                 bandwidth: float = None) -> Tuple[np.ndarray, np.ndarray]:
    """Gaussian-KDE density estimate, as Figure 5's smooth PDF curve.

    Returns (grid, density). Falls back to a histogram-style estimate
    when the sample is degenerate (all values identical).
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("estimate_pdf needs at least one value")
    lo, hi = float(arr.min()), float(arr.max())
    if hi - lo < 1e-12:
        grid = np.linspace(lo - 1.0, hi + 1.0, num_points)
        density = np.zeros(num_points)
        density[num_points // 2] = 1.0
        return grid, density
    from scipy.stats import gaussian_kde
    kde = gaussian_kde(arr, bw_method=bandwidth)
    pad = 0.1 * (hi - lo)
    grid = np.linspace(lo - pad, hi + pad, num_points)
    return grid, kde(grid)
