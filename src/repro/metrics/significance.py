"""Significance machinery for the engagement analyses.

The paper reports raw percentages; a reviewer's first question is
whether the Figure 6 differences are significant. These helpers supply
the standard answers:

* :func:`chi_square_2x2` — independence test for a 2×2 contingency
  table (with Yates continuity correction, the small-cell default);
* :func:`odds_ratio` — effect size for the same table;
* :func:`wilson_interval` — a binomial proportion confidence interval
  that behaves at the tiny success counts of the no-social row;
* :func:`bootstrap_mean_ci` — percentile bootstrap for the community
  strength metrics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy.stats import chi2

from repro.util.rng import RngStream


@dataclass
class Chi2Result:
    """Chi-square independence test on a 2×2 table."""

    statistic: float
    p_value: float
    dof: int = 1


def chi_square_2x2(a: int, b: int, c: int, d: int,
                   yates: bool = True) -> Chi2Result:
    """Test independence of the table [[a, b], [c, d]].

    Rows are groups (e.g. has-Facebook / no-Facebook), columns outcomes
    (raised / did not raise).
    """
    for value in (a, b, c, d):
        if value < 0:
            raise ValueError("contingency cells must be non-negative")
    n = a + b + c + d
    if n == 0:
        raise ValueError("empty contingency table")
    row1, row2 = a + b, c + d
    col1, col2 = a + c, b + d
    if 0 in (row1, row2, col1, col2):
        return Chi2Result(statistic=0.0, p_value=1.0)
    expected = [row1 * col1 / n, row1 * col2 / n,
                row2 * col1 / n, row2 * col2 / n]
    observed = [a, b, c, d]
    correction = 0.5 if yates else 0.0
    statistic = sum(
        (max(0.0, abs(o - e) - correction)) ** 2 / e
        for o, e in zip(observed, expected))
    return Chi2Result(statistic=float(statistic),
                      p_value=float(chi2.sf(statistic, df=1)))


def odds_ratio(a: int, b: int, c: int, d: int) -> float:
    """Odds ratio of [[a, b], [c, d]] with the Haldane 0.5 correction."""
    a_, b_, c_, d_ = (x + 0.5 for x in (a, b, c, d))
    return (a_ * d_) / (b_ * c_)


def wilson_interval(successes: int, total: int,
                    confidence: float = 0.95) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if total <= 0:
        raise ValueError("total must be positive")
    if not 0 <= successes <= total:
        raise ValueError("successes out of range")
    from scipy.stats import norm
    z = float(norm.ppf(0.5 + confidence / 2.0))
    p = successes / total
    denom = 1.0 + z * z / total
    center = (p + z * z / (2 * total)) / denom
    margin = (z / denom) * math.sqrt(
        p * (1 - p) / total + z * z / (4 * total * total))
    low = max(0.0, center - margin)
    high = min(1.0, center + margin)
    # Guard against floating-point dust at the boundaries: the interval
    # must always contain the point estimate.
    if successes == 0:
        low = 0.0
    if successes == total:
        high = 1.0
    return min(low, p), max(high, p)


def bootstrap_mean_ci(values: Sequence[float], confidence: float = 0.95,
                      num_resamples: int = 2000,
                      seed: int = 0) -> Tuple[float, float]:
    """Percentile-bootstrap CI for the mean of ``values``."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    rng = RngStream(seed, "bootstrap")
    indices = rng.np.integers(0, arr.size, size=(num_resamples, arr.size))
    means = arr[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (float(np.quantile(means, alpha)),
            float(np.quantile(means, 1.0 - alpha)))
