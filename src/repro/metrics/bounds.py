"""Dvoretzky–Kiefer–Wolfowitz / Glivenko–Cantelli confidence bounds.

§5.3 of the paper invokes the Glivenko–Cantelli theorem to claim that
with 800,000 sampled pairs, ``||F_n − F||∞ ≤ 0.0196`` with probability
at least 99%. The sharp quantitative form of that statement is the DKW
inequality::

    P(sup_x |F_n(x) − F(x)| > ε) ≤ 2 exp(−2 n ε²)

These helpers convert between (n, confidence) and ε. Note the paper's
ε = 0.0196 is far *looser* than DKW requires at n = 800,000 (which gives
ε ≈ 0.0018), so their claim holds a fortiori; EXPERIMENTS.md discusses
the gap.
"""

from __future__ import annotations

import math


def dkw_epsilon(n: int, confidence: float = 0.99) -> float:
    """The ε with ``P(||F_n − F||∞ ≤ ε) ≥ confidence`` at sample size n."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    delta = 1.0 - confidence
    return math.sqrt(math.log(2.0 / delta) / (2.0 * n))


def dkw_sample_size(epsilon: float, confidence: float = 0.99) -> int:
    """The smallest n guaranteeing ``||F_n − F||∞ ≤ epsilon``."""
    if epsilon <= 0:
        raise ValueError(f"epsilon must be > 0, got {epsilon}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    delta = 1.0 - confidence
    return math.ceil(math.log(2.0 / delta) / (2.0 * epsilon ** 2))
