"""The paper's community-strength metrics and distribution estimators.

§5.3 defines two novel metrics, both implemented here exactly as the
paper's toy examples (Figure 8) compute them:

* **shared investment size** — for investors 1 and 2 with portfolios C1
  and C2, the overlap ``|C1 ∩ C2|``; a community's strength is the mean
  over all member pairs.
* **shared-investor percentage** — the fraction of a community's
  companies co-invested by at least K of its members.

Plus the estimation machinery Figure 4/5 need: empirical CDFs, pair
sampling, DKW/Glivenko–Cantelli confidence bounds, and a histogram/KDE
PDF estimate.
"""

from repro.metrics.shared import (
    average_shared_investment_size,
    pairwise_shared_sizes,
    sampled_shared_sizes,
    shared_investment_size,
    shared_investor_percentage,
    community_strength,
    CommunityStrength,
)
from repro.metrics.ecdf import EmpiricalCDF, estimate_pdf
from repro.metrics.bounds import dkw_epsilon, dkw_sample_size
from repro.metrics.significance import (
    Chi2Result,
    bootstrap_mean_ci,
    chi_square_2x2,
    odds_ratio,
    wilson_interval,
)

__all__ = [
    "average_shared_investment_size",
    "pairwise_shared_sizes",
    "sampled_shared_sizes",
    "shared_investment_size",
    "shared_investor_percentage",
    "community_strength",
    "CommunityStrength",
    "EmpiricalCDF",
    "estimate_pdf",
    "dkw_epsilon",
    "dkw_sample_size",
    "Chi2Result",
    "bootstrap_mean_ci",
    "chi_square_2x2",
    "odds_ratio",
    "wilson_interval",
]
