"""The two §5.3 community-strength metrics.

Verified against the paper's toy examples: Figure 8a scores
(2+2+1)/3 = 1.67 and 100% at K=2; Figure 8b scores (1+0+0)/3 = 0.33
and 25% at K=2.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Set

from repro.util.rng import RngStream

Portfolio = Mapping[int, Set[int]]  # investor id → set of company ids


def shared_investment_size(portfolio_a: Set[int],
                           portfolio_b: Set[int]) -> int:
    """``|C1 ∩ C2|`` for one pair of investors."""
    return len(portfolio_a & portfolio_b)


def pairwise_shared_sizes(members: Sequence[int],
                          portfolios: Portfolio) -> List[int]:
    """Shared investment size for every pair of community members."""
    sizes = []
    for a, b in itertools.combinations(members, 2):
        sizes.append(shared_investment_size(portfolios.get(a, set()),
                                            portfolios.get(b, set())))
    return sizes


def average_shared_investment_size(members: Sequence[int],
                                   portfolios: Portfolio) -> float:
    """The community-strength score: mean shared size over member pairs."""
    sizes = pairwise_shared_sizes(members, portfolios)
    if not sizes:
        return 0.0
    return sum(sizes) / len(sizes)


def sampled_shared_sizes(investors: Sequence[int], portfolios: Portfolio,
                         num_pairs: int, rng: RngStream) -> List[int]:
    """Shared sizes for ``num_pairs`` i.i.d. uniformly sampled pairs.

    This is the paper's Figure 4 global baseline: 800,000 i.i.d. sample
    pairs across the whole bipartite graph.
    """
    if len(investors) < 2:
        return []
    sizes = []
    n = len(investors)
    for _ in range(num_pairs):
        i = rng.py.randrange(n)
        j = rng.py.randrange(n - 1)
        if j >= i:
            j += 1
        sizes.append(shared_investment_size(
            portfolios.get(investors[i], set()),
            portfolios.get(investors[j], set())))
    return sizes


def shared_investor_percentage(members: Sequence[int],
                               portfolios: Portfolio,
                               k: int = 2) -> float:
    """Percentage of the community's companies with ≥ ``k`` member investors.

    The denominator is every company invested in by *any* member (the
    paper: "as a percentage over all companies invested by the
    community"); returns a value in [0, 100].
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    counts: Dict[int, int] = {}
    for member in members:
        for company in portfolios.get(member, set()):
            counts[company] = counts.get(company, 0) + 1
    if not counts:
        return 0.0
    shared = sum(1 for c in counts.values() if c >= k)
    return 100.0 * shared / len(counts)


@dataclass
class CommunityStrength:
    """Both §5.3 metrics for one community."""

    community_id: int
    size: int
    avg_shared_size: float
    max_shared_size: int
    shared_investor_pct: float


def community_strength(community_id: int, members: Sequence[int],
                       portfolios: Portfolio,
                       k: int = 2) -> CommunityStrength:
    """Evaluate one community on both metrics."""
    sizes = pairwise_shared_sizes(members, portfolios)
    return CommunityStrength(
        community_id=community_id,
        size=len(members),
        avg_shared_size=(sum(sizes) / len(sizes)) if sizes else 0.0,
        max_shared_size=max(sizes) if sizes else 0,
        shared_investor_pct=shared_investor_percentage(members, portfolios, k),
    )
