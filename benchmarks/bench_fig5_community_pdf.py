"""E6 / Figure 5 — PDF of per-community shared-investor percentages.

Paper: across the 96 communities, the average percentage of companies
with ≥2 community investors is 23.1%, vs 5.8% for randomized
communities — the herd-mentality gap this reproduction must preserve.
"""

from benchmarks.conftest import paper_row
from repro.viz.ascii import ascii_histogram


def test_fig5_shared_investor_pdf(benchmark, bench_study):
    study = bench_study

    grid_density = benchmark.pedantic(
        lambda: study.pdf_curve(num_points=100), rounds=3, iterations=1)
    grid, density = grid_density

    print("\nFigure 5 — PDF of K=2 shared-investor percentage")
    print(ascii_histogram(study.shared_pcts, bins=10,
                          label="% companies with ≥2 shared investors"))
    print(paper_row("communities evaluated", "96 (full scale)",
                    f"{len(study.shared_pcts)}"))
    print(paper_row("mean shared-investor %", "23.1%",
                    f"{study.mean_shared_pct:.1f}%"))
    print(paper_row("randomized control %", "5.8%",
                    f"{study.randomized_mean_shared_pct:.1f}%"))

    assert len(grid) == len(density) == 100
    assert (density >= 0).all()
    # The herd gap: detected communities >> random control.
    assert study.mean_shared_pct > 1.5 * study.randomized_mean_shared_pct
    # Several communities exceed 20%, as in the paper's histogram.
    assert sum(1 for pct in study.shared_pcts if pct >= 15.0) >= 2
