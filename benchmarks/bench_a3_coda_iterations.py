"""A3 ablation — CoDA sweep budget vs community quality.

DESIGN.md fixes CoDA's gradient-sweep budget; this ablation measures
what the iterations buy: log-likelihood and the strength of the
detected communities at 5 / 20 / 40 sweeps. Likelihood must be
monotone non-decreasing in the budget, and the strongest community's
avg shared size should stabilize rather than keep drifting.
"""

import pytest

from benchmarks.conftest import BENCH_SEED, paper_row
from repro.community.coda import CoDA
from repro.metrics.shared import community_strength


@pytest.mark.parametrize("iters", [5, 20, 40])
def test_a3_coda_iteration_budget(benchmark, bench_platform, bench_graph,
                                  iters):
    filtered = bench_graph.filter_investors(4)
    num = bench_platform.world.config.num_communities

    result = benchmark.pedantic(
        lambda: CoDA(num_communities=num, max_iters=iters,
                     seed=BENCH_SEED).fit(filtered),
        rounds=3, iterations=1)

    portfolios = bench_graph.portfolios()
    strengths = [community_strength(cid, sorted(m), portfolios)
                 for cid, m in result.investor_communities.items()]
    top = max((s.avg_shared_size for s in strengths), default=0.0)
    print(paper_row(f"iters={iters}: ll / communities / top-shared", "—",
                    f"{result.log_likelihood:.0f} / "
                    f"{result.num_communities} / {top:.2f}"))
    assert result.num_communities > 0


def test_a3_likelihood_monotone_in_budget(benchmark, bench_platform,
                                          bench_graph):
    filtered = bench_graph.filter_investors(4)
    num = bench_platform.world.config.num_communities

    def sweep():
        return [CoDA(num_communities=num, max_iters=budget,
                     seed=BENCH_SEED).fit(filtered).log_likelihood
                for budget in (2, 10, 40)]

    lls = benchmark.pedantic(sweep, rounds=3, iterations=1)
    assert lls[0] <= lls[1] + 1e-6
    assert lls[1] <= lls[2] + 1e-6
