"""E9 / Figure 8 — the paper's toy metric examples, exactly.

Figure 8a: avg shared size (2+2+1)/3 = 1.67, K=2 percentage 100%.
Figure 8b: avg shared size (1+0+0)/3 = 0.33, K=2 percentage 25%.
These are exact identities; the benchmark times the metric kernels on a
larger synthetic community as well.
"""

import pytest

from benchmarks.conftest import paper_row
from repro.metrics.shared import (average_shared_investment_size,
                                  shared_investor_percentage)
from repro.util.rng import RngStream

FIG_8A = {1: {"a", "b"}, 2: {"a", "b", "c"}, 3: {"b", "c"}}
FIG_8B = {1: {"a", "b"}, 2: {"b", "c"}, 3: {"d"}}


def test_fig8_toy_metrics(benchmark):
    rng = RngStream(8)
    big_portfolios = {
        uid: set(rng.sample(range(300), rng.randint(1, 40)))
        for uid in range(150)}
    members = sorted(big_portfolios)

    benchmark(lambda: (
        average_shared_investment_size(members, big_portfolios),
        shared_investor_percentage(members, big_portfolios)))

    avg_a = average_shared_investment_size([1, 2, 3], FIG_8A)
    pct_a = shared_investor_percentage([1, 2, 3], FIG_8A, k=2)
    avg_b = average_shared_investment_size([1, 2, 3], FIG_8B)
    pct_b = shared_investor_percentage([1, 2, 3], FIG_8B, k=2)

    print("\nFigure 8 — toy communities")
    print(paper_row("8a avg shared / pct", "1.67 / 100%",
                    f"{avg_a:.2f} / {pct_a:.0f}%"))
    print(paper_row("8b avg shared / pct", "0.33 / 25%",
                    f"{avg_b:.2f} / {pct_b:.0f}%"))

    assert avg_a == pytest.approx(5 / 3)
    assert pct_a == 100.0
    assert avg_b == pytest.approx(1 / 3)
    assert pct_b == 25.0
