"""A9 ablation — adaptive query planning from observed runtime stats.

The tentpole claims, each pinned here and in the standalone
``BENCH_planner.json`` writer:

* **skewed join**: with the static broadcast threshold off, the naive
  plan hash-exchanges both join sides; the adaptive plan observes the
  dimension side's size and broadcasts it — ≥2× fewer shuffled bytes
  (in practice zero) with byte-identical sorted output on all three
  backends;
* **skew split**: a hot ``group_by_key`` bucket is split across reduce
  tasks and merged post-hoc, raw-repr identical to the naive single
  task;
* **coalesce**: undersized post-shuffle partitions merge toward the
  byte target — strictly fewer reduce tasks, identical output, declared
  partition count preserved;
* **multi-join**: a two-dimension star join broadcasts both small
  sides, shuffling nothing;
* **scan pushdown**: a filter-heavy scan evaluates its predicate inside
  the DFS read — ``scan_bytes_skipped > 0`` and exact output identity.

Standalone::

    PYTHONPATH=src python benchmarks/bench_a9_planner.py \
        --smoke --json benchmarks/out/BENCH_planner.json

Workload functions are module-level so the process backend ships them.
"""

import argparse
import json
import operator
import os
import time

import pytest

from repro.dfs.filesystem import MiniDfs
from repro.dfs.jsonlines import write_json_dataset
from repro.engine.context import SparkLiteContext

ROWS = 40_000
PARTITIONS = 8
BACKENDS = ("serial", "thread", "process")
#: the headline gate: naive must shuffle at least this multiple of the
#: adaptive plan's bytes on the skewed-join workload
SHUFFLE_GATE_X = 2.0

_DIM_KEYS = 32
_SCAN_DFS = MiniDfs()
_SCAN_DIR = "/bench/planner"
_SCAN_ROWS = 0


def _ensure_scan_dataset(rows: int) -> None:
    global _SCAN_ROWS
    if _SCAN_ROWS == rows:
        return
    records = [{"id": i, "k": i % 50, "score": i * 7 % 997,
                "pad": "x" * 60} for i in range(rows)]
    write_json_dataset(_SCAN_DFS, _SCAN_DIR, records,
                       partitions=PARTITIONS)
    _SCAN_ROWS = rows


# ---------------------------------------------------------------- workloads
def _fact_pair(x: int):
    # zipfian-ish: most rows hit a handful of dimension keys
    return (x % 3 if x % 4 else x % _DIM_KEYS, x)


def _dim_pair(k: int):
    return (k, f"dim-{k}-" + "meta" * 3)


def _dim2_pair(k: int):
    return (k, (-k, f"region-{k % 5}"))


def _hot_pair(x: int):
    return ("hot", x) if x % 10 < 7 else (f"k{x % 10}", x)


def _rekey_first(kv):
    return (kv[0], 1)


def _keep_rare(record):
    return record["score"] < 40  # ~4% of rows survive


def _project_small(record):
    return {"id": record["id"], "k": record["k"]}


def skewed_join(sc, rows):
    facts = sc.parallelize(range(rows), PARTITIONS).map(_fact_pair)
    dims = sc.parallelize(range(_DIM_KEYS), 2).map(_dim_pair)
    return sorted(facts.join(dims, num_partitions=PARTITIONS).collect())


def multi_join(sc, rows):
    facts = sc.parallelize(range(rows), PARTITIONS).map(_fact_pair)
    dims = sc.parallelize(range(_DIM_KEYS), 2).map(_dim_pair)
    regions = sc.parallelize(range(_DIM_KEYS), 2).map(_dim2_pair)
    return sorted(facts.join(dims, num_partitions=PARTITIONS)
                  .map(_rejoin_key).join(regions).collect())


def _rejoin_key(kv):
    return kv


def skew_split_group(sc, rows):
    return (sc.parallelize(range(rows), PARTITIONS)
            .map(_hot_pair).group_by_key(num_partitions=4)
            .map(_len_group).collect())


def _len_group(kv):
    return (kv[0], len(kv[1]), sum(kv[1]))


def coalesce_reduce(sc, rows):
    return (sc.parallelize(range(rows), PARTITIONS)
            .map(_mod_pair)
            .reduce_by_key(operator.add, num_partitions=64)
            .collect())


def _mod_pair(x: int):
    return (x % 40, x)


def filter_scan(sc, _rows):
    return (sc.json_dataset(_SCAN_DFS, _SCAN_DIR)
            .filter(_keep_rare).map(_project_small).collect())


def _run(job, rows, backend, adaptive, target=1 << 20, **kwargs):
    """One configuration → (result, metrics dict, wall seconds)."""
    with SparkLiteContext(parallelism=4, backend=backend,
                          engine_adaptive=adaptive,
                          target_partition_bytes=target,
                          **kwargs) as sc:
        start = time.perf_counter()
        result = job(sc, rows)
        wall = time.perf_counter() - start
        metrics = sc.last_job_metrics.as_dict()
    return result, metrics, wall


# ------------------------------------------------------------------ pytest
@pytest.mark.parametrize("backend", BACKENDS)
def test_a9_skewed_join_gate(benchmark, backend):
    """The acceptance gate: ≥2× fewer shuffled bytes, identical rows,
    on every backend."""
    def both():
        naive = _run(skewed_join, 6_000, backend, adaptive=False)
        adap = _run(skewed_join, 6_000, backend, adaptive=True)
        return naive, adap
    (naive, adap) = benchmark.pedantic(both, rounds=1, iterations=1)
    n_result, n_metrics, _ = naive
    a_result, a_metrics, _ = adap
    assert repr(a_result) == repr(n_result)
    assert a_metrics["broadcast_joins"] >= 1
    assert a_metrics["broadcast_bytes"] > 0
    assert n_metrics["shuffle_bytes"] >= \
        SHUFFLE_GATE_X * max(1, a_metrics["shuffle_bytes"])


def test_a9_skew_split_identity():
    naive = _run(skew_split_group, 8_000, "serial", adaptive=False)
    adap = _run(skew_split_group, 8_000, "serial", adaptive=True,
                target=2048)
    assert repr(adap[0]) == repr(naive[0])
    assert adap[1]["skew_splits"] >= 1
    assert adap[1]["skew_split_tasks"] > adap[1]["skew_splits"]


def test_a9_coalesce_runs_fewer_reduce_tasks():
    naive = _run(coalesce_reduce, 8_000, "serial", adaptive=False)
    adap = _run(coalesce_reduce, 8_000, "serial", adaptive=True)
    assert repr(adap[0]) == repr(naive[0])
    assert adap[1]["adaptive_partitions_merged"] > 0
    # task_attempts counts tasks actually launched; declared partition
    # counts are unchanged (the tail pads with empties)
    assert adap[1]["task_attempts"] < naive[1]["task_attempts"]


def test_a9_multi_join_broadcasts_both_dims():
    naive = _run(multi_join, 6_000, "serial", adaptive=False)
    adap = _run(multi_join, 6_000, "serial", adaptive=True)
    assert repr(adap[0]) == repr(naive[0])
    assert adap[1]["broadcast_joins"] == 2
    assert adap[1]["shuffle_bytes"] < naive[1]["shuffle_bytes"]


def test_a9_scan_pushdown_gate():
    _ensure_scan_dataset(8_000)
    naive = _run(filter_scan, 8_000, "serial", adaptive=False)
    adap = _run(filter_scan, 8_000, "serial", adaptive=True)
    assert repr(adap[0]) == repr(naive[0])
    assert adap[1]["scan_bytes_skipped"] > 0
    assert adap[1]["scan_fields_pruned"] > 0


# --------------------------------------------------------------- standalone
def _bench_payload(rows: int) -> dict:
    _ensure_scan_dataset(rows)
    gates = []
    arms = {}

    # skewed join across all three backends
    join_rows = {}
    for backend in BACKENDS:
        n_res, n_m, n_s = _run(skewed_join, rows, backend, adaptive=False)
        a_res, a_m, a_s = _run(skewed_join, rows, backend, adaptive=True)
        identical = repr(a_res) == repr(n_res)
        ratio = n_m["shuffle_bytes"] / max(1, a_m["shuffle_bytes"])
        join_rows[backend] = {
            "identical": identical,
            "naive_shuffle_bytes": n_m["shuffle_bytes"],
            "adaptive_shuffle_bytes": a_m["shuffle_bytes"],
            "shuffle_ratio": round(ratio, 2),
            "broadcast_bytes": a_m["broadcast_bytes"],
            "wall_s_naive": round(n_s, 4),
            "wall_s_adaptive": round(a_s, 4),
        }
        gates.append(("skewed_join_identity_" + backend, identical))
        gates.append(("skewed_join_bytes_" + backend,
                      ratio >= SHUFFLE_GATE_X))
    arms["skewed_join"] = join_rows

    n_res, n_m, n_s = _run(skew_split_group, rows, "serial",
                           adaptive=False)
    a_res, a_m, a_s = _run(skew_split_group, rows, "serial",
                           adaptive=True, target=4096)
    arms["skew_split_group"] = {
        "identical": repr(a_res) == repr(n_res),
        "skew_splits": a_m["skew_splits"],
        "skew_split_tasks": a_m["skew_split_tasks"],
        "wall_s_naive": round(n_s, 4),
        "wall_s_adaptive": round(a_s, 4),
    }
    gates.append(("skew_split_identity", arms["skew_split_group"]["identical"]))
    gates.append(("skew_split_fired", a_m["skew_splits"] >= 1))

    n_res, n_m, n_s = _run(coalesce_reduce, rows, "serial",
                           adaptive=False)
    a_res, a_m, a_s = _run(coalesce_reduce, rows, "serial", adaptive=True)
    arms["coalesce_reduce"] = {
        "identical": repr(a_res) == repr(n_res),
        "partitions_merged": a_m["adaptive_partitions_merged"],
        "tasks_naive": n_m["task_attempts"],
        "tasks_adaptive": a_m["task_attempts"],
        "wall_s_naive": round(n_s, 4),
        "wall_s_adaptive": round(a_s, 4),
    }
    gates.append(("coalesce_identity", arms["coalesce_reduce"]["identical"]))
    gates.append(("coalesce_fired",
                  a_m["adaptive_partitions_merged"] > 0))
    gates.append(("coalesce_fewer_tasks",
                  a_m["task_attempts"] < n_m["task_attempts"]))

    n_res, n_m, n_s = _run(multi_join, rows, "serial", adaptive=False)
    a_res, a_m, a_s = _run(multi_join, rows, "serial", adaptive=True)
    arms["multi_join"] = {
        "identical": repr(a_res) == repr(n_res),
        "broadcast_joins": a_m["broadcast_joins"],
        "naive_shuffle_bytes": n_m["shuffle_bytes"],
        "adaptive_shuffle_bytes": a_m["shuffle_bytes"],
        "wall_s_naive": round(n_s, 4),
        "wall_s_adaptive": round(a_s, 4),
    }
    gates.append(("multi_join_identity", arms["multi_join"]["identical"]))

    n_res, n_m, n_s = _run(filter_scan, rows, "serial", adaptive=False)
    a_res, a_m, a_s = _run(filter_scan, rows, "serial", adaptive=True)
    arms["filter_scan"] = {
        "identical": repr(a_res) == repr(n_res),
        "scan_bytes_skipped": a_m["scan_bytes_skipped"],
        "scan_fields_pruned": a_m["scan_fields_pruned"],
        "rows_kept": len(a_res),
        "wall_s_naive": round(n_s, 4),
        "wall_s_adaptive": round(a_s, 4),
    }
    gates.append(("scan_identity", arms["filter_scan"]["identical"]))
    gates.append(("scan_skipped_bytes", a_m["scan_bytes_skipped"] > 0))

    return {
        "benchmark": "adaptive-planner",
        "rows": rows,
        "shuffle_gate_x": SHUFFLE_GATE_X,
        "gates": {name: bool(ok) for name, ok in gates},
        "arms": arms,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure adaptive planning: skewed join broadcast, "
                    "skew split, coalescing, multi-join, scan pushdown; "
                    "write BENCH_planner.json.")
    parser.add_argument("--rows", type=int, default=ROWS)
    parser.add_argument("--smoke", action="store_true",
                        help="CI scale: few rows")
    parser.add_argument("--json", metavar="FILE",
                        help="write the measurements as JSON")
    args = parser.parse_args(argv)
    if args.smoke:
        args.rows = min(args.rows, 8_000)
    if args.rows < 1:
        parser.error("--rows must be >= 1")

    payload = _bench_payload(args.rows)
    for backend, row in payload["arms"]["skewed_join"].items():
        print(f"skewed_join[{backend:>7}]: naive "
              f"{row['naive_shuffle_bytes']}B -> adaptive "
              f"{row['adaptive_shuffle_bytes']}B "
              f"({row['shuffle_ratio']}x), identical={row['identical']}")
    split = payload["arms"]["skew_split_group"]
    print(f"skew_split: {split['skew_splits']} splits over "
          f"{split['skew_split_tasks']} tasks, "
          f"identical={split['identical']}")
    merged = payload["arms"]["coalesce_reduce"]
    print(f"coalesce: {merged['partitions_merged']} partitions merged, "
          f"{merged['tasks_naive']} -> {merged['tasks_adaptive']} tasks")
    scan = payload["arms"]["filter_scan"]
    print(f"scan pushdown: {scan['scan_bytes_skipped']}B skipped, "
          f"{scan['scan_fields_pruned']} fields pruned, "
          f"identical={scan['identical']}")

    failed = sorted(name for name, ok in payload["gates"].items()
                    if not ok)
    if args.json:
        os.makedirs(os.path.dirname(args.json) or ".", exist_ok=True)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    if failed:
        print(f"PLANNER REGRESSION: gates failed: {', '.join(failed)}")
        return 1
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
