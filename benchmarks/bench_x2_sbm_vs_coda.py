"""X2 / §7 — stochastic block model inference vs CoDA vs baselines.

The paper proposes SBM inference as future work. Scored against the
*behavioural* planted truth — each investor's primary syndicate, which
is a disjoint partition — the hard-assignment SBM is actually the
best-matched model, while CoDA recovers overlapping affiliation
structure (useful for the §5.3 strength metrics) at some F1 cost. Both
must clearly beat random grouping; label propagation tends to collapse
on the dense projection and is reported for reference.
"""

import numpy as np

from benchmarks.conftest import BENCH_SEED, paper_row
from repro.community.coda import CoDA
from repro.community.labelprop import label_propagation
from repro.community.random_baseline import random_communities
from repro.community.sbm import BipartiteSBM
from repro.community.scoring import best_match_f1, cover_f1
from repro.util.rng import RngStream


def test_x2_sbm_vs_coda(benchmark, bench_platform, bench_graph):
    world = bench_platform.world
    filtered = bench_graph.filter_investors(4)
    eligible = set(filtered.investors)
    # Behavioural truth: investors grouped by the community whose pool
    # they actually herd with — restricted to *strong* communities,
    # because a herd strength near zero leaves no recoverable trace in
    # the investment graph (those investors pick companies globally).
    strong_ids = {c.community_id for c in world.planted_communities
                  if c.herd_strength > 0.3}
    truth = [set(members) & eligible
             for cid, members in world.primary_communities().items()
             if cid in strong_ids]
    truth = [t for t in truth if len(t) >= 3]
    num = world.config.num_communities

    coda_result = CoDA(num_communities=num, max_iters=40,
                       seed=BENCH_SEED).fit(filtered)
    sbm_result = benchmark.pedantic(
        lambda: BipartiteSBM(num_groups=num, seed=BENCH_SEED).fit(filtered),
        rounds=3, iterations=1)
    lp_result = label_propagation(filtered, seed=BENCH_SEED)
    rng = RngStream(BENCH_SEED, "x2")
    random_cover = random_communities(
        filtered.investors,
        [len(m) for m in coda_result.investor_communities.values()], rng)

    covers = {
        "CoDA (overlapping, directed)":
            list(coda_result.investor_communities.values()),
        "Bipartite SBM (hard)":
            list(sbm_result.investor_communities().values()),
        "Label propagation": list(lp_result.values()),
        "Random communities": list(random_cover.values()),
    }
    # Recall direction: for each true strong syndicate, the best F1 any
    # detected community achieves — the "did we find the herds?"
    # question. The symmetric cover-F1 additionally penalizes detectors
    # for every extra community, which conflates coverage with count.
    recall = {name: best_match_f1(truth, detected)
              for name, detected in covers.items()}
    symmetric = {name: cover_f1(detected, truth)
                 for name, detected in covers.items()}

    print("\n§7 — community inference vs planted truth")
    for name in covers:
        print(paper_row(name, "—",
                        f"recall-F1={recall[name]:.3f}  "
                        f"cover-F1={symmetric[name]:.3f}"))

    # The disjoint behavioural truth favors the hard-partition model —
    # SBM reconstructs syndicate rosters far better than chance, and
    # better than the overlapping-cover detectors on both directions.
    # CoDA's strength is *purity*, not roster recall (see X4: its
    # communities are ~9× purer than chance w.r.t. disclosed
    # syndicates), so only weak-ordering claims are asserted for it.
    assert recall["Bipartite SBM (hard)"] \
        > 1.5 * recall["Random communities"]
    assert symmetric["Bipartite SBM (hard)"] \
        >= symmetric["CoDA (overlapping, directed)"]
    assert recall["CoDA (overlapping, directed)"] \
        >= recall["Label propagation"]
